"""Tests for the main Section 3 threshold scheme."""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.keys import PartialSignature, ThresholdParams
from repro.core.scheme import (
    LJYThresholdScheme, reconstruct_master_key,
)
from repro.errors import CombineError, ParameterError


class TestSigningFlow:
    def test_full_flow(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        message = b"hello"
        partials = [toy_scheme.share_sign(shares[i], message)
                    for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, message, partials)
        assert toy_scheme.verify(pk, message, signature)

    def test_any_threshold_subset_gives_same_signature(
            self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        message = b"determinism"
        signatures = set()
        for subset in itertools.combinations(range(1, 6), 3):
            partials = [toy_scheme.share_sign(shares[i], message)
                        for i in subset]
            signature = toy_scheme.combine(pk, vks, message, partials)
            signatures.add(signature.to_bytes())
        assert len(signatures) == 1

    def test_matches_master_key_signature(self, toy_scheme, toy_keys,
                                          toy_group):
        pk, shares, vks = toy_keys
        master = reconstruct_master_key(
            list(shares.values()), toy_group.order, toy_scheme.params.t)
        message = b"master"
        direct = toy_scheme.sign_with_master(master, message)
        partials = [toy_scheme.share_sign(shares[i], message)
                    for i in (2, 4, 5)]
        combined = toy_scheme.combine(pk, vks, message, partials)
        assert direct.to_bytes() == combined.to_bytes()

    def test_share_verify_accepts_honest(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        for i in range(1, 6):
            partial = toy_scheme.share_sign(shares[i], b"m")
            assert toy_scheme.share_verify(pk, vks[i], b"m", partial)

    def test_share_verify_rejects_wrong_message(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m1")
        assert not toy_scheme.share_verify(pk, vks[1], b"m2", partial)

    def test_share_verify_rejects_index_mismatch(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        assert not toy_scheme.share_verify(pk, vks[2], b"m", partial)

    def test_share_verify_rejects_mauled(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        mauled = PartialSignature(
            index=1, z=partial.z * toy_scheme.group.g1_generator(),
            r=partial.r)
        assert not toy_scheme.share_verify(pk, vks[1], b"m", mauled)

    def test_verify_rejects_wrong_message(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, b"m", partials)
        assert not toy_scheme.verify(pk, b"other", signature)

    def test_verify_rejects_wrong_key(self, toy_scheme, toy_keys, rng):
        pk, shares, vks = toy_keys
        pk2, _, _ = toy_scheme.dealer_keygen(rng=rng)
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, b"m", partials)
        assert not toy_scheme.verify(pk2, b"m", signature)

    def test_signature_is_512_bits(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, b"m", partials)
        assert signature.size_bits == 512

    @given(message=st.binary(min_size=0, max_size=64))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_arbitrary_messages(self, toy_scheme, toy_keys, message):
        # Fixtures are read-only key material; reuse across examples is fine.
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], message)
                    for i in (1, 3, 5)]
        signature = toy_scheme.combine(pk, vks, message, partials)
        assert toy_scheme.verify(pk, message, signature)


class TestRobustness:
    def test_combine_filters_garbage_shares(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        g = toy_scheme.group.g1_generator()
        garbage = [PartialSignature(index=i, z=g ** i, r=g ** (i + 1))
                   for i in (1, 2)]
        honest = [toy_scheme.share_sign(shares[i], b"m") for i in (3, 4, 5)]
        signature = toy_scheme.combine(pk, vks, b"m", garbage + honest)
        assert toy_scheme.verify(pk, b"m", signature)

    def test_combine_fails_below_threshold(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2)]
        with pytest.raises(CombineError):
            toy_scheme.combine(pk, vks, b"m", partials)

    def test_combine_fails_on_all_garbage(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        g = toy_scheme.group.g1_generator()
        garbage = [PartialSignature(index=i, z=g, r=g) for i in (1, 2, 3)]
        with pytest.raises(CombineError):
            toy_scheme.combine(pk, vks, b"m", garbage)

    def test_duplicate_indices_deduplicated(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        with pytest.raises(CombineError):
            toy_scheme.combine(pk, vks, b"m", [partial, partial, partial])

    def test_unverified_combine_garbage_in_garbage_out(
            self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        g = toy_scheme.group.g1_generator()
        garbage = [PartialSignature(index=i, z=g ** i, r=g)
                   for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, b"m", garbage,
                                       verify_shares=False)
        assert not toy_scheme.verify(pk, b"m", signature)

    def test_forged_duplicate_does_not_shadow_honest_partial(
            self, toy_scheme, toy_keys):
        # A garbage partial for index 3 arrives BEFORE the honest one;
        # robust combine must still use the honest index-3 contribution.
        pk, shares, vks = toy_keys
        g = toy_scheme.group.g1_generator()
        forged = PartialSignature(index=3, z=g ** 5, r=g ** 9)
        honest = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, b"m", [forged] + honest)
        assert toy_scheme.verify(pk, b"m", signature)

    def test_unknown_index_skipped(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        rogue = PartialSignature(
            index=99, z=toy_scheme.group.g1_generator(),
            r=toy_scheme.group.g1_generator())
        honest = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = toy_scheme.combine(pk, vks, b"m", [rogue] + honest)
        assert toy_scheme.verify(pk, b"m", signature)


class TestKeygenShapes:
    def test_share_storage_is_constant(self, toy_group, rng):
        sizes = []
        for n in (3, 9, 21):
            params = ThresholdParams.generate(toy_group, t=1, n=n)
            scheme = LJYThresholdScheme(params)
            _pk, shares, _vks = scheme.dealer_keygen(rng=rng)
            sizes.append(shares[1].storage_bytes())
        assert len(set(sizes)) == 1   # O(1) in n

    def test_reconstruct_requires_threshold(self, toy_scheme, toy_keys,
                                            toy_group):
        _pk, shares, _vks = toy_keys
        with pytest.raises(ParameterError):
            reconstruct_master_key(
                list(shares.values())[:2], toy_group.order, 2)

    def test_bad_thresholds_rejected(self, toy_group):
        with pytest.raises(ParameterError):
            ThresholdParams.generate(toy_group, t=5, n=5)

    def test_verification_keys_derivable_by_anyone(self, toy_scheme,
                                                   toy_keys):
        _pk, shares, vks = toy_keys
        for i in range(1, 6):
            assert toy_scheme.verification_key_for(shares[i]).v_1 == \
                vks[i].v_1


class TestBatchShareVerify:
    def test_accepts_honest_batch(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        assert toy_scheme.batch_share_verify(pk, vks, b"m", partials)

    def test_rejects_batch_with_one_forgery(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2)]
        g = toy_scheme.group.g1_generator()
        partials.append(PartialSignature(index=3, z=g, r=g))
        assert not toy_scheme.batch_share_verify(pk, vks, b"m", partials)

    def test_rejects_unknown_index(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        rogue = PartialSignature(index=99, z=partial.z, r=partial.r)
        assert not toy_scheme.batch_share_verify(
            pk, vks, b"m", [partial, rogue])

    def test_empty_batch_passes(self, toy_scheme, toy_keys):
        pk, _shares, vks = toy_keys
        assert toy_scheme.batch_share_verify(pk, vks, b"m", [])

    def test_single_partial_delegates_to_share_verify(
            self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        good = toy_scheme.share_sign(shares[1], b"m")
        bad = PartialSignature(
            index=1, z=good.z * toy_scheme.group.g1_generator(), r=good.r)
        assert toy_scheme.batch_share_verify(pk, vks, b"m", [good])
        assert not toy_scheme.batch_share_verify(pk, vks, b"m", [bad])

    def test_combine_falls_back_when_leading_batch_fails(
            self, toy_scheme, toy_keys):
        # Corrupt shares sit among the first t+1 candidates, so the batch
        # check fails and the per-share fallback must still succeed.
        pk, shares, vks = toy_keys
        g = toy_scheme.group.g1_generator()
        garbage = [PartialSignature(index=i, z=g ** i, r=g) for i in (1, 2)]
        honest = [toy_scheme.share_sign(shares[i], b"m") for i in (3, 4, 5)]
        signature = toy_scheme.combine(pk, vks, b"m", garbage + honest)
        assert toy_scheme.verify(pk, b"m", signature)

    def test_combine_deterministic_despite_batching_coins(
            self, toy_scheme, toy_keys):
        import random as random_module
        pk, shares, vks = toy_keys
        partials = [toy_scheme.share_sign(shares[i], b"m") for i in (1, 4, 5)]
        first = toy_scheme.combine(pk, vks, b"m", partials,
                                   rng=random_module.Random(1))
        second = toy_scheme.combine(pk, vks, b"m", partials,
                                    rng=random_module.Random(2))
        assert first.to_bytes() == second.to_bytes()


class TestCrossMessageBatchShareVerify:
    """The window-level Share-Verify: partial signatures for *different*
    messages checked under one multi-pairing, with bisection down to the
    forged shares."""

    def _window(self, toy_scheme, toy_keys, signers_per_message):
        pk, shares, vks = toy_keys
        items = []
        for position, (message_index, signer) in enumerate(
                signers_per_message):
            message = b"window msg %d" % message_index
            items.append(
                (message, toy_scheme.share_sign(shares[signer], message)))
        return pk, vks, items

    def test_honest_window_accepted(self, toy_scheme, toy_keys, rng):
        pk, vks, items = self._window(
            toy_scheme, toy_keys,
            [(m, s) for m in range(4) for s in (1, 2, 3)])
        assert toy_scheme.batch_share_verify_window(pk, vks, items,
                                                    rng=rng)
        assert toy_scheme.locate_invalid_partials(
            pk, vks, items, rng=rng) == []

    def test_forged_share_rejected_and_localized(self, toy_scheme,
                                                 toy_keys, rng):
        pk, vks, items = self._window(
            toy_scheme, toy_keys,
            [(m, s) for m in range(4) for s in (1, 2, 3)])
        g = toy_scheme.group.g1_generator()
        message, good = items[7]
        items[7] = (message, PartialSignature(
            index=good.index, z=good.z * g, r=good.r))
        assert not toy_scheme.batch_share_verify_window(pk, vks, items,
                                                        rng=rng)
        assert toy_scheme.locate_invalid_partials(
            pk, vks, items, rng=rng) == [7]

    def test_multiple_forgeries_all_localized(self, toy_scheme,
                                              toy_keys, rng):
        pk, vks, items = self._window(
            toy_scheme, toy_keys,
            [(m, s) for m in range(6) for s in (1, 2, 3)])
        g = toy_scheme.group.g1_generator()
        for position in (2, 9, 16):
            message, good = items[position]
            items[position] = (message, PartialSignature(
                index=good.index, z=g, r=g))
        assert toy_scheme.locate_invalid_partials(
            pk, vks, items, rng=rng) == [2, 9, 16]

    def test_unknown_signer_index_fails_closed(self, toy_scheme,
                                               toy_keys, rng):
        pk, vks, items = self._window(toy_scheme, toy_keys,
                                      [(0, 1), (0, 2)])
        message, good = items[1]
        items[1] = (message, PartialSignature(
            index=99, z=good.z, r=good.r))
        assert not toy_scheme.batch_share_verify_window(pk, vks, items,
                                                        rng=rng)
        assert toy_scheme.locate_invalid_partials(
            pk, vks, items, rng=rng) == [1]

    def test_cross_message_swap_detected(self, toy_scheme, toy_keys, rng):
        """A share that is valid for message A must not pass when filed
        under message B in the same window."""
        pk, shares, vks = toy_keys
        share_a = toy_scheme.share_sign(shares[1], b"message A")
        share_b = toy_scheme.share_sign(shares[2], b"message B")
        swapped = [(b"message B", share_a), (b"message A", share_b)]
        assert not toy_scheme.batch_share_verify_window(
            pk, vks, swapped, rng=rng)
        assert toy_scheme.locate_invalid_partials(
            pk, vks, swapped, rng=rng) == [0, 1]

    def test_empty_and_singleton_windows(self, toy_scheme, toy_keys, rng):
        pk, shares, vks = toy_keys
        assert toy_scheme.batch_share_verify_window(pk, vks, [], rng=rng)
        assert toy_scheme.locate_invalid_partials(pk, vks, [],
                                                  rng=rng) == []
        good = [(b"solo", toy_scheme.share_sign(shares[1], b"solo"))]
        assert toy_scheme.batch_share_verify_window(pk, vks, good,
                                                    rng=rng)
        g = toy_scheme.group.g1_generator()
        bad = [(b"solo", PartialSignature(index=1, z=g, r=g))]
        assert not toy_scheme.batch_share_verify_window(pk, vks, bad,
                                                        rng=rng)
        assert toy_scheme.locate_invalid_partials(pk, vks, bad,
                                                  rng=rng) == [0]

    def test_duplicate_message_and_signer_pairs_accepted(
            self, toy_scheme, toy_keys, rng):
        """The same (message, signer) pair may appear twice in one
        worker-side window — two shards racing the same document — and
        both honest copies must pass."""
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"raced")
        items = [(b"raced", partial), (b"raced", partial)]
        assert toy_scheme.batch_share_verify_window(pk, vks, items,
                                                    rng=rng)


class TestCrossMessageBatchVerify:
    """Adversarial tests for the server-side batch_verify/locate_invalid
    API: forged signatures must be rejected AND localized."""

    def _batch(self, toy_scheme, toy_keys, count, rng):
        pk, shares, _vks = toy_keys
        master = reconstruct_master_key(
            list(shares.values()), toy_scheme.group.order, toy_scheme.params.t)
        messages = [b"batch message %d" % i for i in range(count)]
        signatures = [
            toy_scheme.sign_with_master(master, message)
            for message in messages
        ]
        return pk, messages, signatures

    def test_valid_batch_accepted(self, toy_scheme, toy_keys, rng):
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 64, rng)
        assert toy_scheme.batch_verify(pk, messages, signatures, rng=rng)
        assert toy_scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == []

    def test_one_forgery_in_64_rejected_and_localized(
            self, toy_scheme, toy_keys, rng):
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 64, rng)
        forged_at = 41
        bad = signatures[forged_at]
        signatures[forged_at] = type(bad)(z=bad.z * bad.z, r=bad.r)
        assert not toy_scheme.batch_verify(pk, messages, signatures, rng=rng)
        assert toy_scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == [forged_at]

    def test_multiple_forgeries_all_localized(
            self, toy_scheme, toy_keys, rng):
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 32, rng)
        for index in (0, 13, 31):
            bad = signatures[index]
            signatures[index] = type(bad)(z=bad.z, r=bad.r * bad.z)
        assert toy_scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == [0, 13, 31]

    def test_swapped_signatures_detected(self, toy_scheme, toy_keys, rng):
        # Valid signatures attached to the wrong messages must fail.
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 8, rng)
        signatures[2], signatures[5] = signatures[5], signatures[2]
        assert not toy_scheme.batch_verify(pk, messages, signatures, rng=rng)
        assert toy_scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == [2, 5]

    def test_empty_and_singleton_batches(self, toy_scheme, toy_keys, rng):
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 1, rng)
        assert toy_scheme.batch_verify(pk, [], [], rng=rng)
        assert toy_scheme.locate_invalid(pk, [], [], rng=rng) == []
        assert toy_scheme.batch_verify(pk, messages, signatures, rng=rng)
        bad = type(signatures[0])(z=signatures[0].r, r=signatures[0].z)
        assert toy_scheme.locate_invalid(
            pk, messages, [bad], rng=rng) == [0]

    def test_length_mismatch_raises(self, toy_scheme, toy_keys, rng):
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 2, rng)
        with pytest.raises(ParameterError):
            toy_scheme.batch_verify(pk, messages, signatures[:1], rng=rng)
        with pytest.raises(ParameterError):
            toy_scheme.locate_invalid(pk, messages[:1], signatures, rng=rng)

    def test_all_invalid_batch(self, toy_scheme, toy_keys, rng):
        # Worst case for the bisection: every half fails all the way
        # down, so the result must enumerate the entire batch.
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 8, rng)
        forged = [
            type(signature)(z=signature.z * signature.z, r=signature.r)
            for signature in signatures
        ]
        assert not toy_scheme.batch_verify(pk, messages, forged, rng=rng)
        assert toy_scheme.locate_invalid(
            pk, messages, forged, rng=rng) == list(range(8))
        assert toy_scheme.verify_window(
            pk, messages, forged, rng=rng) == [False] * 8

    def test_duplicate_messages_in_one_window(
            self, toy_scheme, toy_keys, rng):
        # A service batch window routinely carries the same message
        # twice (two clients requesting the same document).  Duplicates
        # must verify independently, and a forgery on one copy must not
        # condemn the other.
        pk, messages, signatures = self._batch(toy_scheme, toy_keys, 4, rng)
        messages = messages + [messages[1], messages[2]]
        signatures = signatures + [signatures[1], signatures[2]]
        assert toy_scheme.batch_verify(pk, messages, signatures, rng=rng)
        assert toy_scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == []
        bad = signatures[4]
        signatures[4] = type(bad)(z=bad.z * bad.z, r=bad.r)
        assert not toy_scheme.batch_verify(pk, messages, signatures, rng=rng)
        assert toy_scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == [4]
        # The untouched duplicate of the same message still verifies.
        assert toy_scheme.verify_window(pk, messages, signatures,
                                        rng=rng) == \
            [True, True, True, True, False, True]

    @pytest.mark.bn254
    def test_forgery_localized_on_real_curve(self, bn254_group, rng):
        params = ThresholdParams.generate(bn254_group, t=1, n=3)
        scheme = LJYThresholdScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        messages = [b"bn254 batch %d" % i for i in range(8)]
        signatures = []
        for message in messages:
            partials = [scheme.share_sign(shares[i], message) for i in (1, 2)]
            signatures.append(
                scheme.combine(pk, vks, message, partials, rng=rng))
        assert scheme.batch_verify(pk, messages, signatures, rng=rng)
        bad = signatures[5]
        signatures[5] = type(bad)(z=bad.z * bad.z, r=bad.r)
        assert not scheme.batch_verify(pk, messages, signatures, rng=rng)
        assert scheme.locate_invalid(
            pk, messages, signatures, rng=rng) == [5]


class TestHashMemoization:
    class _CountingGroup:
        """Wrap a backend and count hash_to_g1_vector invocations."""

        def __init__(self, inner):
            self._inner = inner
            self.calls = 0

        def hash_to_g1_vector(self, data, dimension, domain="H"):
            self.calls += 1
            return self._inner.hash_to_g1_vector(data, dimension, domain)

        def __getattr__(self, name):
            return getattr(self._inner, name)

    def _params(self, toy_group):
        counting = self._CountingGroup(toy_group)
        return ThresholdParams.generate(counting, t=1, n=3), counting

    def test_repeat_messages_hit_cache(self, toy_group):
        params, counting = self._params(toy_group)
        first = params.hash_message(b"msg")
        again = params.hash_message(b"msg")
        assert counting.calls == 1
        assert first == again
        params.hash_message(b"other")
        assert counting.calls == 2

    def test_cache_is_bounded(self, toy_group):
        from repro.core.keys import _HASH_CACHE_LIMIT
        params, counting = self._params(toy_group)
        for i in range(_HASH_CACHE_LIMIT + 50):
            params.hash_message(b"m%d" % i)
        assert len(params._hash_cache) <= _HASH_CACHE_LIMIT
        # The oldest entry was evicted and re-hashing it costs a call.
        calls = counting.calls
        params.hash_message(b"m0")
        assert counting.calls == calls + 1


@pytest.mark.bn254
class TestOnRealCurve:
    def test_full_flow_bn254(self, bn254_group, rng):
        params = ThresholdParams.generate(bn254_group, t=1, n=3)
        scheme = LJYThresholdScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        message = b"real curve message"
        partials = [scheme.share_sign(shares[i], message) for i in (1, 3)]
        for partial in partials:
            assert scheme.share_verify(pk, vks[partial.index], message,
                                       partial)
        signature = scheme.combine(pk, vks, message, partials)
        assert scheme.verify(pk, message, signature)
        assert not scheme.verify(pk, b"forgery", signature)
        assert signature.size_bits == 512

    def test_robust_combine_with_forgery_bn254(self, bn254_group, rng):
        params = ThresholdParams.generate(bn254_group, t=1, n=3)
        scheme = LJYThresholdScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        message = b"batch fallback"
        g = bn254_group.g1_generator()
        garbage = PartialSignature(index=1, z=g, r=g ** 2)
        honest = [scheme.share_sign(shares[i], message) for i in (2, 3)]
        signature = scheme.combine(pk, vks, message, [garbage] + honest)
        assert scheme.verify(pk, message, signature)
