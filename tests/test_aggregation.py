"""Tests for the aggregation-enabled scheme (Appendix G)."""

import pytest

from repro.core.aggregation import (
    AggPublicKey, AggThresholdParams, LJYAggregateScheme,
    dkg_result_to_agg_keys, run_agg_dkg,
)
from repro.errors import CombineError, ParameterError


@pytest.fixture(scope="module")
def agg_setup():
    import random
    from repro.groups import get_group
    group = get_group("toy")
    params = AggThresholdParams.generate(group, t=2, n=5)
    scheme = LJYAggregateScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=random.Random(17))
    return scheme, pk, shares, vks


def threshold_sign(scheme, pk, shares, vks, message):
    partials = [scheme.share_sign(pk, shares[i], message) for i in (1, 2, 3)]
    return scheme.combine(pk, vks, message, partials)


class TestThresholdPart:
    def test_full_flow(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        signature = threshold_sign(scheme, pk, shares, vks, b"m")
        assert scheme.verify(pk, b"m", signature)

    def test_key_sanity_check(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        assert pk.sanity_check()
        # A mauled key must fail the check.
        bad = AggPublicKey(
            params=pk.params, g_1=pk.g_1, g_2=pk.g_2,
            z=pk.z * scheme.group.g1_generator(), r=pk.r)
        assert not bad.sanity_check()

    def test_share_verify(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        partial = scheme.share_sign(pk, shares[1], b"m")
        assert scheme.share_verify(pk, vks[1], b"m", partial)
        assert not scheme.share_verify(pk, vks[2], b"m", partial)

    def test_key_prefixed_hash(self, agg_setup, rng):
        """The same message under different keys hashes differently, which
        is what blocks the cross-key replay in the BGLS setting."""
        scheme, pk, shares, vks = agg_setup
        pk2, _, _ = scheme.dealer_keygen(rng=rng)
        h1 = scheme.params.hash_for_key(pk, b"m")
        h2 = scheme.params.hash_for_key(pk2, b"m")
        assert h1[0] != h2[0]


class TestAggregation:
    def test_aggregate_roundtrip(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        messages = [b"cert-a", b"cert-b", b"cert-c"]
        items = [
            (pk, threshold_sign(scheme, pk, shares, vks, m), m)
            for m in messages
        ]
        aggregate = scheme.aggregate(items)
        assert scheme.aggregate_verify([(pk, m) for m in messages],
                                       aggregate)

    def test_aggregate_across_keys(self, agg_setup, rng):
        scheme, pk, shares, vks = agg_setup
        pk2, shares2, vks2 = scheme.dealer_keygen(rng=rng)
        sig1 = threshold_sign(scheme, pk, shares, vks, b"m1")
        sig2 = threshold_sign(scheme, pk2, shares2, vks2, b"m2")
        aggregate = scheme.aggregate([(pk, sig1, b"m1"), (pk2, sig2, b"m2")])
        assert scheme.aggregate_verify([(pk, b"m1"), (pk2, b"m2")],
                                       aggregate)
        # Swapped messages must fail.
        assert not scheme.aggregate_verify([(pk, b"m2"), (pk2, b"m1")],
                                           aggregate)

    def test_same_signer_multiple_messages(self, agg_setup):
        # Bellare et al. style: aggregates may repeat a signer.
        scheme, pk, shares, vks = agg_setup
        sig1 = threshold_sign(scheme, pk, shares, vks, b"m1")
        sig2 = threshold_sign(scheme, pk, shares, vks, b"m2")
        aggregate = scheme.aggregate([(pk, sig1, b"m1"), (pk, sig2, b"m2")])
        assert scheme.aggregate_verify([(pk, b"m1"), (pk, b"m2")],
                                       aggregate)

    def test_aggregate_rejects_invalid_signature(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        good = threshold_sign(scheme, pk, shares, vks, b"m1")
        with pytest.raises(CombineError):
            scheme.aggregate([(pk, good, b"wrong-message")])

    def test_aggregate_empty_rejected(self, agg_setup):
        scheme, *_ = agg_setup
        with pytest.raises(ParameterError):
            scheme.aggregate([])

    def test_aggregate_verify_checks_key_sanity(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        signature = threshold_sign(scheme, pk, shares, vks, b"m")
        rogue = AggPublicKey(
            params=pk.params, g_1=pk.g_1, g_2=pk.g_2,
            z=pk.z * scheme.group.g1_generator(), r=pk.r)
        assert not scheme.aggregate_verify([(rogue, b"m")], signature)

    def test_aggregate_verify_empty_rejected(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        signature = threshold_sign(scheme, pk, shares, vks, b"m")
        assert not scheme.aggregate_verify([], signature)

    def test_aggregate_size_constant(self, agg_setup):
        scheme, pk, shares, vks = agg_setup
        messages = [f"cert-{i}".encode() for i in range(6)]
        items = [
            (pk, threshold_sign(scheme, pk, shares, vks, m), m)
            for m in messages
        ]
        aggregate = scheme.aggregate(items)
        single = items[0][1]
        assert len(aggregate.to_bytes()) == len(single.to_bytes())


class TestAggDKG:
    def test_dkg_produces_sane_keys(self, rng):
        from repro.groups import get_group
        group = get_group("toy")
        params = AggThresholdParams.generate(group, t=1, n=4)
        scheme = LJYAggregateScheme(params)
        results, network = run_agg_dkg(params, rng=rng)
        pk, _, vks = dkg_result_to_agg_keys(params, results[1])
        assert pk.sanity_check()
        assert network.metrics.communication_rounds == 1
        partials = []
        for i in (2, 4):
            _, share, _ = dkg_result_to_agg_keys(params, results[i])
            partials.append(scheme.share_sign(pk, share, b"dkg"))
        signature = scheme.combine(pk, vks, b"dkg", partials)
        assert scheme.verify(pk, b"dkg", signature)

    def test_dkg_keys_aggregate_with_dealer_keys(self, agg_setup, rng):
        scheme, dealer_pk, shares, vks = agg_setup
        params = scheme.params
        results, _ = run_agg_dkg(params, rng=rng)
        dkg_pk, _, dkg_vks = dkg_result_to_agg_keys(params, results[1])
        dkg_partials = []
        for i in (1, 3, 5):
            _, share, _ = dkg_result_to_agg_keys(params, results[i])
            dkg_partials.append(scheme.share_sign(dkg_pk, share, b"m2"))
        dkg_sig = scheme.combine(dkg_pk, dkg_vks, b"m2", dkg_partials)
        dealer_sig = threshold_sign(scheme, dealer_pk, shares, vks, b"m1")
        aggregate = scheme.aggregate(
            [(dealer_pk, dealer_sig, b"m1"), (dkg_pk, dkg_sig, b"m2")])
        assert scheme.aggregate_verify(
            [(dealer_pk, b"m1"), (dkg_pk, b"m2")], aggregate)


class TestAggDKGAdversarial:
    def test_bad_extra_broadcast_disqualifies(self, rng):
        """A dealer publishing an inconsistent (Z_0, R_0) is excluded
        from Q even though its Pedersen shares verify (Appendix G,
        step 3 extra rule)."""
        from repro.core.aggregation import AggDKGPlayer
        from repro.groups import get_group
        from repro.net.adversary import ScriptedAdversary
        from repro.net.simulator import broadcast as bcast

        group = get_group("toy")
        params = AggThresholdParams.generate(group, t=1, n=4)

        class _Player(AggDKGPlayer):
            agg_params = params

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                minion = _Player(1, group, params.g_z, params.g_r, 1, 4,
                                 rng=rng)
                adversary.minion = minion
                out = []
                for message in minion.on_round(0, []):
                    if message.kind == "commitments":
                        payload = dict(message.payload)
                        z_0, r_0 = payload["extra"]
                        payload["extra"] = (z_0 * group.g1_generator(), r_0)
                        out.append(bcast(1, "commitments", payload))
                    else:
                        out.append(message)
                return out
            inbox = [m for m in deliveries
                     if m.is_broadcast or m.recipient == 1]
            adversary.minion.record_round(inbox)
            return adversary.minion.on_round(round_no, inbox)

        results, _ = run_agg_dkg(
            params, adversary=ScriptedAdversary(script), rng=rng)
        for result in results.values():
            assert 1 not in result.qualified
        # The surviving players still assemble a sane aggregate key.
        pk, _, _ = dkg_result_to_agg_keys(params, results[2])
        assert pk.sanity_check()

    def test_missing_extra_broadcast_disqualifies(self, rng):
        """Omitting the (Z_0, R_0) broadcast is also disqualifying."""
        from repro.core.aggregation import AggDKGPlayer
        from repro.groups import get_group
        from repro.net.adversary import ScriptedAdversary
        from repro.net.simulator import broadcast as bcast

        group = get_group("toy")
        params = AggThresholdParams.generate(group, t=1, n=4)

        class _Player(AggDKGPlayer):
            agg_params = params

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(2)
                minion = _Player(2, group, params.g_z, params.g_r, 1, 4,
                                 rng=rng)
                out = []
                for message in minion.on_round(0, []):
                    if message.kind == "commitments":
                        payload = dict(message.payload)
                        payload["extra"] = None
                        out.append(bcast(2, "commitments", payload))
                    else:
                        out.append(message)
                return out
            return []

        results, _ = run_agg_dkg(
            params, adversary=ScriptedAdversary(script), rng=rng)
        for result in results.values():
            assert 2 not in result.qualified
