"""Tests for the paper's Dist-Keygen (Pedersen DKG with complaints)."""

import pytest

from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.dkg.pedersen_dkg import (
    PedersenDKGPlayer, dkg_result_to_keys, run_pedersen_dkg,
)
from repro.errors import ParameterError
from repro.math.lagrange import interpolate_at
from repro.net.adversary import ScriptedAdversary
from repro.net.simulator import broadcast, private
from repro.sharing.pedersen_vss import PedersenVSS


@pytest.fixture
def setup(toy_group):
    g_z = toy_group.derive_g2("dkg-test:g_z")
    g_r = toy_group.derive_g2("dkg-test:g_r")
    return toy_group, g_z, g_r


class TestHonestRun:
    def test_one_communication_round(self, setup, rng):
        group, g_z, g_r = setup
        _results, network = run_pedersen_dkg(group, g_z, g_r, 2, 5, rng=rng)
        assert network.metrics.communication_rounds == 1

    def test_all_players_qualified(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(group, g_z, g_r, 2, 5, rng=rng)
        for result in results.values():
            assert result.qualified == [1, 2, 3, 4, 5]

    def test_public_key_consensus(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(group, g_z, g_r, 2, 5, rng=rng)
        reference = results[1].public_components
        for result in results.values():
            assert result.public_components == reference

    def test_shares_interpolate_to_public_key(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(group, g_z, g_r, 2, 5, rng=rng)
        for k in range(2):
            a_shares = {i: results[i].share_pairs[k][0] for i in (1, 3, 5)}
            b_shares = {i: results[i].share_pairs[k][1] for i in (1, 3, 5)}
            a_0 = interpolate_at(a_shares, group.order)
            b_0 = interpolate_at(b_shares, group.order)
            assert (g_z ** a_0) * (g_r ** b_0) == \
                results[1].public_components[k]

    def test_verification_keys_match_shares(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(group, g_z, g_r, 2, 5, rng=rng)
        for i, result in results.items():
            for k in range(2):
                a, b = result.share_pairs[k]
                assert results[1].verification_keys[i][k] == \
                    (g_z ** a) * (g_r ** b)

    def test_num_pairs_one(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(group, g_z, g_r, 2, 5, num_pairs=1,
                                      rng=rng)
        assert len(results[1].share_pairs) == 1
        assert len(results[1].public_components) == 1

    def test_additive_pairs_sum_to_secret(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(group, g_z, g_r, 1, 3, rng=rng)
        for k in range(2):
            a_0 = sum(r.additive_pairs[k][0] for r in results.values())
            b_0 = sum(r.additive_pairs[k][1] for r in results.values())
            assert (g_z ** a_0) * (g_r ** b_0) == \
                results[1].public_components[k]

    def test_n_below_2t_plus_1_rejected(self, setup, rng):
        group, g_z, g_r = setup
        with pytest.raises(ParameterError):
            run_pedersen_dkg(group, g_z, g_r, 2, 4, rng=rng)


class TestFaultyDealers:
    def test_bad_share_triggers_complaint_and_response(self, setup, rng):
        """A dealer sending one bad share must respond and stays qualified."""
        group, g_z, g_r = setup

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                minion = PedersenDKGPlayer(1, group, g_z, g_r, 2, 5, rng=rng)
                adversary.minion = minion
                messages = minion.on_round(0, [])
                # Corrupt the share sent to player 2.
                out = []
                for m in messages:
                    if m.kind == "shares" and m.recipient == 2:
                        bad = [(a + 1, b) for a, b in m.payload]
                        out.append(private(1, 2, "shares", bad))
                    else:
                        out.append(m)
                return out
            # Respond honestly to complaints afterwards.
            inbox = [m for m in deliveries
                     if m.is_broadcast or m.recipient == 1]
            adversary.minion.record_round(inbox)
            return adversary.minion.on_round(round_no, inbox)

        results, network = run_pedersen_dkg(
            group, g_z, g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        # Dealer 1 responded with correct shares: stays qualified.
        for result in results.values():
            assert 1 in result.qualified
        # Complaint and response rounds carried traffic.
        assert network.metrics.communication_rounds == 3

    def test_unresponsive_bad_dealer_disqualified(self, setup, rng):
        group, g_z, g_r = setup

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                minion = PedersenDKGPlayer(1, group, g_z, g_r, 2, 5, rng=rng)
                messages = minion.on_round(0, [])
                out = []
                for m in messages:
                    if m.kind == "shares":
                        bad = [(a + 1, b + 2) for a, b in m.payload]
                        out.append(private(1, m.recipient, "shares", bad))
                    else:
                        out.append(m)
                return out
            return []   # never responds to complaints

        results, _ = run_pedersen_dkg(
            group, g_z, g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        for result in results.values():
            assert 1 not in result.qualified
            assert result.qualified == [2, 3, 4, 5]

    def test_silent_dealer_disqualified(self, setup, rng):
        group, g_z, g_r = setup

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(3)    # sends nothing at all
            return []

        results, _ = run_pedersen_dkg(
            group, g_z, g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        for result in results.values():
            assert result.qualified == [1, 2, 4, 5]

    def test_scheme_works_after_disqualification(self, setup, rng):
        group, g_z, g_r = setup

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(5)
            return []

        results, _ = run_pedersen_dkg(
            group, g_z, g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        params = ThresholdParams(group=group, t=2, n=5, g_z=g_z, g_r=g_r)
        scheme = LJYThresholdScheme(params)
        keys = {i: dkg_result_to_keys(scheme, results[i]) for i in results}
        pk = keys[1][0]
        vks = keys[1][2]
        message = b"post-disqualification"
        partials = [scheme.share_sign(keys[i][1], message)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, message, partials)
        assert scheme.verify(pk, message, signature)


class TestFixedSecrets:
    def test_zero_sharing_yields_identity_pk(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_pedersen_dkg(
            group, g_z, g_r, 2, 5, fixed_secrets=[(0, 0), (0, 0)],
            require_zero_constant=True, rng=rng)
        for component in results[1].public_components:
            assert component.is_identity()

    def test_nonzero_dealer_excluded_in_refresh_mode(self, setup, rng):
        group, g_z, g_r = setup

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(2)
                # Shares a NON-zero pair in refresh mode.
                minion = PedersenDKGPlayer(2, group, g_z, g_r, 2, 5, rng=rng)
                return minion.on_round(0, [])
            return []

        results, _ = run_pedersen_dkg(
            group, g_z, g_r, 2, 5, fixed_secrets=[(0, 0), (0, 0)],
            require_zero_constant=True,
            adversary=ScriptedAdversary(script), rng=rng)
        for result in results.values():
            assert 2 not in result.qualified
