"""Tests for the DLIN-based variant (Appendix F)."""

import pytest

from repro.core.dlin_scheme import (
    DLINParams, DLINPartialSignature, LJYDLINScheme, run_dlin_dkg,
)
from repro.errors import CombineError


@pytest.fixture(scope="module")
def dlin_setup():
    import random
    from repro.groups import get_group
    group = get_group("toy")
    params = DLINParams.generate(group, t=2, n=5)
    scheme = LJYDLINScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=random.Random(23))
    return scheme, pk, shares, vks


class TestSigningFlow:
    def test_full_flow(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        partials = [scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, b"m", partials)
        assert scheme.verify(pk, b"m", signature)

    def test_share_verify_both_equations(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        partial = scheme.share_sign(shares[2], b"m")
        assert scheme.share_verify(pk, vks[2], b"m", partial)
        # Tamper with u only — the first equation alone would still pass,
        # so this checks the second equation is enforced.
        mauled = DLINPartialSignature(
            index=2, z=partial.z, r=partial.r,
            u=partial.u * scheme.group.g1_generator())
        assert not scheme.share_verify(pk, vks[2], b"m", mauled)

    def test_tampered_r_rejected(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        partial = scheme.share_sign(shares[2], b"m")
        mauled = DLINPartialSignature(
            index=2, z=partial.z,
            r=partial.r * scheme.group.g1_generator(), u=partial.u)
        assert not scheme.share_verify(pk, vks[2], b"m", mauled)

    def test_deterministic_combination(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        sig1 = scheme.combine(pk, vks, b"m", [
            scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
        sig2 = scheme.combine(pk, vks, b"m", [
            scheme.share_sign(shares[i], b"m") for i in (3, 4, 5)])
        assert sig1.to_bytes() == sig2.to_bytes()

    def test_wrong_message_rejected(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        partials = [scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, b"m", partials)
        assert not scheme.verify(pk, b"other", signature)

    def test_signature_768_bits(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        partials = [scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)]
        assert scheme.combine(pk, vks, b"m", partials).size_bits == 768

    def test_below_threshold_fails(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        with pytest.raises(CombineError):
            scheme.combine(pk, vks, b"m", [
                scheme.share_sign(shares[1], b"m")])

    def test_robust_combine(self, dlin_setup):
        scheme, pk, shares, vks = dlin_setup
        g = scheme.group.g1_generator()
        garbage = DLINPartialSignature(index=1, z=g, r=g, u=g)
        honest = [scheme.share_sign(shares[i], b"m") for i in (2, 3, 4)]
        signature = scheme.combine(pk, vks, b"m", [garbage] + honest)
        assert scheme.verify(pk, b"m", signature)


class TestDLINDKG:
    def test_dkg_one_round_and_consistent(self, toy_group, rng):
        params = DLINParams.generate(toy_group, t=1, n=4)
        scheme = LJYDLINScheme(params)
        results, network = run_dlin_dkg(params, rng=rng)
        assert network.metrics.communication_rounds == 1
        pk, _share, vks, qualified = results[1]
        assert qualified == [1, 2, 3, 4]
        partials = [scheme.share_sign(results[i][1], b"dkg") for i in (2, 4)]
        for partial in partials:
            assert scheme.share_verify(pk, vks[partial.index], b"dkg",
                                       partial)
        signature = scheme.combine(pk, vks, b"dkg", partials)
        assert scheme.verify(pk, b"dkg", signature)

    def test_dkg_faulty_dealer_disqualified(self, toy_group, rng):
        from repro.core.dlin_scheme import DLINDKGPlayer
        from repro.net.adversary import ScriptedAdversary
        from repro.net.simulator import private

        params = DLINParams.generate(toy_group, t=1, n=4)

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                minion = DLINDKGPlayer(1, params, rng=rng)
                out = []
                for m in minion.on_round(0, []):
                    if m.kind == "shares":
                        bad = [(a + 1, b, c) for a, b, c in m.payload]
                        out.append(private(1, m.recipient, "shares", bad))
                    else:
                        out.append(m)
                return out
            return []

        results, _ = run_dlin_dkg(
            params, adversary=ScriptedAdversary(script), rng=rng)
        for result in results.values():
            assert 1 not in result[3]


@pytest.mark.bn254
class TestOnRealCurve:
    def test_full_flow_bn254(self, bn254_group, rng):
        params = DLINParams.generate(bn254_group, t=1, n=3)
        scheme = LJYDLINScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        partials = [scheme.share_sign(shares[i], b"real") for i in (1, 2)]
        signature = scheme.combine(pk, vks, b"real", partials)
        assert scheme.verify(pk, b"real", signature)
        assert signature.size_bits == 768
