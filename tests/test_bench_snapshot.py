"""Smoke test for the perf-trajectory snapshot tool.

Runs one round of the T2 micro-benchmarks through
``tools/bench_snapshot.py`` and checks the snapshot structure plus loose
speedup floors (well under the measured 2.5x/4.8x so timing noise cannot
flake the suite, but tight enough to catch a fast path silently falling
back to the naive implementation).
"""

import json
import pathlib
import sys

import pytest

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"

pytestmark = pytest.mark.bn254


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    out_dir = tmp_path_factory.mktemp("bench")
    # Best-of-3 timing: a single sample can absorb a scheduler or GC
    # pause and flake the speedup floors below on loaded machines.
    bench_snapshot.main([
        "--rounds", "3",
        "--output", str(out_dir / "BENCH_t2_ops.json"),
        "--table", str(out_dir / "t2_ops.txt"),
    ])
    return json.loads((out_dir / "BENCH_t2_ops.json").read_text())


#: Ops present since the seed (these alone carry seed_reference_ms).
SEED_OPS = ["share_sign", "share_verify", "combine_optimistic",
            "combine_robust", "verify"]
#: Ops added by the extension-tower/batch-verification PR.
NEW_OPS = ["batch_verify_msg", "gt_exp", "final_exp"]
#: Service ops added by the serving-layer PR (fast = batch window of
#: meta.batch_k, naive = the same pipeline in single-request mode).
SVC_OPS = ["svc_sign_p50", "svc_verify_req", "svc_throughput"]


def test_snapshot_records_all_operations(snapshot):
    for section in ("fast_ms", "naive_ms", "speedup"):
        assert set(snapshot[section]) == set(SEED_OPS + NEW_OPS + SVC_OPS)
    assert set(snapshot["seed_reference_ms"]) == set(SEED_OPS)
    assert snapshot["meta"]["backend"] == "bn254"
    assert snapshot["meta"]["batch_k"] >= 2
    assert snapshot["meta"]["svc_total"] >= snapshot["meta"]["batch_k"]


def test_fast_paths_beat_naive(snapshot):
    # Loose floors: measured speedups are 3.6x (verify), 3.2x
    # (share-verify) and ~5.8x (robust combine); anything near 1x means a
    # fast path silently fell back to a naive implementation.
    assert snapshot["speedup"]["verify"] >= 1.5
    assert snapshot["speedup"]["share_verify"] >= 1.5
    assert snapshot["speedup"]["combine_robust"] >= 2.0
    assert snapshot["speedup"]["final_exp"] >= 1.5


def test_batch_verify_amortizes_below_single_verify(snapshot):
    # The acceptance bar is <= 0.5x a single Verify; assert a looser 0.7x
    # so scheduler noise cannot flake the suite (measured: ~0.1x).
    assert snapshot["fast_ms"]["batch_verify_msg"] <= \
        0.7 * snapshot["fast_ms"]["verify"]


def test_service_window_amortizes_verify_traffic(snapshot):
    # The acceptance bar is <= 0.25x of single-request mode at a batch
    # window >= 16; assert a looser 0.5x so a loaded machine cannot
    # flake the suite (measured: ~0.1-0.2x).
    assert snapshot["meta"]["batch_k"] >= 16
    assert snapshot["fast_ms"]["svc_verify_req"] <= \
        0.5 * snapshot["naive_ms"]["svc_verify_req"]
    # Mixed sign+verify traffic must amortize too, if less dramatically
    # (signing cost is dominated by the t+1 Share-Signs either way).
    assert snapshot["fast_ms"]["svc_throughput"] <= \
        0.8 * snapshot["naive_ms"]["svc_throughput"]


def test_check_mode_against_committed_snapshot(snapshot, tmp_path):
    # --check must pass against a committed snapshot equal to the fresh
    # run, and fail against one with impossible speedups.
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps(snapshot))
    assert bench_snapshot.run_check(snapshot, committed) == 0
    inflated = {
        "speedup": {op: value * 100
                    for op, value in snapshot["speedup"].items()}
    }
    committed.write_text(json.dumps(inflated))
    assert bench_snapshot.run_check(snapshot, committed) == 1
    assert bench_snapshot.run_check(
        snapshot, tmp_path / "missing.json") == 1
