"""Smoke test for the perf-trajectory snapshot tool.

Runs one round of the T2 micro-benchmarks through
``tools/bench_snapshot.py`` and checks the snapshot structure plus loose
speedup floors (well under the measured 2.5x/4.8x so timing noise cannot
flake the suite, but tight enough to catch a fast path silently falling
back to the naive implementation).
"""

import json
import pathlib
import sys

import pytest

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"

pytestmark = pytest.mark.bn254


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    out_dir = tmp_path_factory.mktemp("bench")
    # Best-of-3 timing: a single sample can absorb a scheduler or GC
    # pause and flake the speedup floors below on loaded machines.
    bench_snapshot.main([
        "--rounds", "3",
        "--output", str(out_dir / "BENCH_t2_ops.json"),
        "--table", str(out_dir / "t2_ops.txt"),
    ])
    return json.loads((out_dir / "BENCH_t2_ops.json").read_text())


#: Ops present since the seed (these alone carry seed_reference_ms).
SEED_OPS = ["share_sign", "share_verify", "combine_optimistic",
            "combine_robust", "verify"]
#: Ops added by the extension-tower/batch-verification PR.
NEW_OPS = ["batch_verify_msg", "gt_exp", "final_exp"]
#: Service ops added by the serving-layer PR (fast = batch window of
#: meta.batch_k, naive = the same pipeline in single-request mode).
SVC_OPS = ["svc_sign_p50", "svc_verify_req", "svc_throughput"]
#: Process-parallel ops (fast = meta.mp_workers worker processes,
#: naive = the same batched pipeline on the event loop).
MP_OPS = ["svc_mp_verify_req", "svc_mp_throughput"]
#: TCP remote-worker ops (fast = meta.tcp_workers standalone worker
#: processes over loopback sockets, naive = the event-loop pipeline).
TCP_OPS = ["svc_tcp_verify_req", "svc_tcp_throughput"]
#: Wire-v2 pipelining ops (fast = shards shipping single requests at
#: meta.pipeline_depth with worker-side window accumulation, naive =
#: dispatcher-built windows at depth 1 over the same TCP workers).
PIPELINE_OPS = ["svc_pipeline_sign_req", "svc_pipeline_sign_p50"]
#: The combiner's window-level Share-Verify micro-op (fast = one
#: cross-message multi-pairing over a window of meta.batch_k shares,
#: naive = a seed-equivalent Share-Verify per share).
SHAREVERIFY_OPS = ["svc_robust_batch_shareverify"]
#: Durability op (fast = write-ahead log on with per-window fsync
#: batching, naive = the same sign-only pipeline with the WAL off).
WAL_OPS = ["svc_wal_throughput"]
#: Key-lifecycle op (fast = one live epoch transition fired mid-run
#: through the begin_epoch barrier, naive = no transition).
EPOCH_OPS = ["svc_epoch_pause"]
#: HTTP front-door ops (fast = the same sign-only workload entering
#: through the asyncio gateway over loopback HTTP, naive = direct
#: service.sign calls).
HTTP_OPS = ["svc_http_sign_p50", "svc_http_throughput"]


def test_snapshot_records_all_operations(snapshot):
    for section in ("fast_ms", "naive_ms", "speedup"):
        assert set(snapshot[section]) == \
            set(SEED_OPS + NEW_OPS + SVC_OPS + MP_OPS + TCP_OPS
                + PIPELINE_OPS + SHAREVERIFY_OPS + WAL_OPS + EPOCH_OPS
                + HTTP_OPS)
    assert set(snapshot["seed_reference_ms"]) == set(SEED_OPS)
    assert snapshot["meta"]["backend"] == "bn254"
    assert snapshot["meta"]["batch_k"] >= 2
    assert snapshot["meta"]["svc_total"] >= snapshot["meta"]["batch_k"]
    assert snapshot["meta"]["mp_workers"] >= 2
    assert snapshot["meta"]["tcp_workers"] >= 1
    assert snapshot["meta"]["pipeline_depth"] >= 2
    assert snapshot["meta"]["pipeline_depth"] in \
        snapshot["meta"]["pipeline_sweep_depths"]
    assert 1 in snapshot["meta"]["pipeline_sweep_depths"]
    assert snapshot["meta"]["cpu_count"] >= 1


def test_fast_paths_beat_naive(snapshot):
    # Loose floors: measured speedups are 3.6x (verify), 3.2x
    # (share-verify) and ~5.8x (robust combine); anything near 1x means a
    # fast path silently fell back to a naive implementation.
    assert snapshot["speedup"]["verify"] >= 1.5
    assert snapshot["speedup"]["share_verify"] >= 1.5
    assert snapshot["speedup"]["combine_robust"] >= 2.0
    assert snapshot["speedup"]["final_exp"] >= 1.5


def test_batch_verify_amortizes_below_single_verify(snapshot):
    # The acceptance bar is <= 0.5x a single Verify; assert a looser 0.7x
    # so scheduler noise cannot flake the suite (measured: ~0.1x).
    assert snapshot["fast_ms"]["batch_verify_msg"] <= \
        0.7 * snapshot["fast_ms"]["verify"]


def test_service_window_amortizes_verify_traffic(snapshot):
    # The acceptance bar is <= 0.25x of single-request mode at a batch
    # window >= 16; assert a looser 0.5x so a loaded machine cannot
    # flake the suite (measured: ~0.1-0.2x).
    assert snapshot["meta"]["batch_k"] >= 16
    assert snapshot["fast_ms"]["svc_verify_req"] <= \
        0.5 * snapshot["naive_ms"]["svc_verify_req"]
    # Mixed sign+verify traffic must amortize too, if less dramatically
    # (signing cost is dominated by the t+1 Share-Signs either way).
    assert snapshot["fast_ms"]["svc_throughput"] <= \
        0.8 * snapshot["naive_ms"]["svc_throughput"]


def test_mp_tier_serves_the_workload(snapshot):
    # The worker-tier measurement must exist and be sane.  Its *ratio*
    # against single-process mode is hardware-dependent — it approaches
    # min(mp_workers, cores) on multi-core machines and ~1x on a single
    # core, where process parallelism cannot add CPU time — so the
    # strict scaling assertion only applies when the cores exist.
    assert snapshot["fast_ms"]["svc_mp_throughput"] > 0
    assert snapshot["fast_ms"]["svc_mp_verify_req"] > 0
    cpu_count = snapshot["meta"]["cpu_count"]
    if cpu_count >= 4:
        assert snapshot["speedup"]["svc_mp_throughput"] >= 1.5
    else:
        # One core: the tier must at least not collapse (overhead-bound
        # floor — wire encoding + IPC on top of the same crypto).
        assert snapshot["speedup"]["svc_mp_throughput"] >= 0.5


def test_tcp_tier_serves_the_workload(snapshot):
    # Same hardware caveat as the mp tier, plus socket framing on top;
    # the floor only guards against the transport collapsing (e.g. a
    # reconnect storm or per-job re-dial).
    assert snapshot["fast_ms"]["svc_tcp_throughput"] > 0
    assert snapshot["fast_ms"]["svc_tcp_verify_req"] > 0
    if snapshot["meta"]["cpu_count"] >= 4:
        assert snapshot["speedup"]["svc_tcp_throughput"] >= 1.2
    else:
        assert snapshot["speedup"]["svc_tcp_throughput"] >= 0.4


def test_batch_shareverify_amortizes(snapshot):
    # The acceptance bar is >= 1.2x over the per-share loop at a window
    # of 16; measured is far higher (one multi-pairing of ~2 + 2t
    # prepared pairs vs 16 naive 4-pairing products), so 1.2x cannot
    # flake.  This op must NOT sit in the overhead-bound band.
    assert snapshot["meta"]["batch_k"] >= 16
    assert snapshot["speedup"]["svc_robust_batch_shareverify"] >= 1.2
    # Per-share window cost must undercut a single fast Share-Verify.
    assert snapshot["fast_ms"]["svc_robust_batch_shareverify"] <= \
        0.7 * snapshot["fast_ms"]["share_verify"]


def test_pipeline_tier_serves_the_workload(snapshot):
    # Overhead-bound on the loopback (same crypto, same cores on both
    # sides); the floor guards against the request-shipping path
    # collapsing, and the sweep must cover every advertised depth.
    assert snapshot["fast_ms"]["svc_pipeline_sign_req"] > 0
    assert snapshot["speedup"]["svc_pipeline_sign_req"] >= 0.4
    assert snapshot["speedup"]["svc_pipeline_sign_p50"] >= 0.4
    sweep = snapshot["pipeline_sweep_ms"]
    assert set(sweep) == {
        str(depth) for depth in
        snapshot["meta"]["pipeline_sweep_depths"]}
    for values in sweep.values():
        assert values["sign_req"] > 0 and values["sign_p50"] > 0


def test_wal_overhead_is_bounded(snapshot):
    # The WAL ratio is an *overhead* measurement: the same sign-only
    # pipeline with the log on vs off, so the expected value sits just
    # below 1.0x (append + one fsync per closed window).  The floor
    # guards against the batching collapsing — an fsync per request
    # would crater the ratio on real disks.
    assert snapshot["fast_ms"]["svc_wal_throughput"] > 0
    assert snapshot["speedup"]["svc_wal_throughput"] >= 0.4
    assert "window" in snapshot["meta"]["wal_sync"]


def test_epoch_pause_overhead_is_bounded(snapshot):
    # Same overhead shape as the WAL op: one begin_epoch barrier (drain
    # in-flight windows, swap shares, resume) amortized over the
    # workload cannot make signing faster, so the ratio sits just below
    # 1.0x.  The floor guards against the barrier collapsing — a
    # transition that drops queues and forces retries, or one that
    # holds the pause across the refresh DKG math.
    assert snapshot["fast_ms"]["svc_epoch_pause"] > 0
    assert snapshot["speedup"]["svc_epoch_pause"] >= 0.4


def test_http_gateway_overhead_is_bounded(snapshot):
    # Overhead bound, not a speedup: the front door (HTTP parsing,
    # JSON bodies, tenant admission, a loopback socket round trip per
    # request) cannot make signing faster, so the ratio sits just
    # below 1.0x — the BN254 window crypto dwarfs the per-request
    # transport cost.  The floor guards against the gateway becoming
    # the bottleneck (per-request reconnects, head-of-line blocking).
    assert snapshot["fast_ms"]["svc_http_sign_p50"] > 0
    assert snapshot["speedup"]["svc_http_sign_p50"] >= 0.4
    assert snapshot["speedup"]["svc_http_throughput"] >= 0.4


def test_check_mode_against_committed_snapshot(snapshot, tmp_path):
    # --check must pass against a committed snapshot equal to the fresh
    # run, and fail against one with impossible speedups.
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps(snapshot))
    assert bench_snapshot.run_check(snapshot, committed) == 0
    inflated = {
        "speedup": {op: value * 100
                    for op, value in snapshot["speedup"].items()}
    }
    committed.write_text(json.dumps(inflated))
    assert bench_snapshot.run_check(snapshot, committed) == 1
    assert bench_snapshot.run_check(
        snapshot, tmp_path / "missing.json") == 1


def test_check_failure_exit_code_from_cli(snapshot, tmp_path,
                                          monkeypatch, capsys):
    """The full --check CLI path must *return* 1 on a regression — CI
    turns that into the process exit code, so a failure path that
    returns 0 would silently green the pipeline."""
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    committed = tmp_path / "BENCH_t2_ops.json"
    committed.write_text(json.dumps({
        "speedup": {op: value * 100
                    for op, value in snapshot["speedup"].items()}
    }))
    # Reuse the module-scope snapshot instead of re-running the whole
    # benchmark battery through main().
    monkeypatch.setattr(bench_snapshot, "run_snapshot",
                        lambda rounds, include_naive=True: snapshot)
    assert bench_snapshot.main(
        ["--check", "--output", str(committed)]) == 1
    out = capsys.readouterr().out
    assert "worst regressing op" in out
    # The committed snapshot must never be overwritten by --check.
    assert "speedup" in json.loads(committed.read_text())
    assert len(json.loads(committed.read_text())) == 1


def test_check_widens_floor_for_overhead_bound_ops(snapshot, tmp_path,
                                                   monkeypatch):
    """Ops committed below OVERHEAD_REFERENCE (the near-1.0x worker-tier
    ratios) get the wide OVERHEAD_TOLERANCE band — scheduler jitter must
    not flake them — while a genuine collapse still fails."""
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    monkeypatch.delenv("BENCH_TOLERANCE", raising=False)
    # Synthetic committed values, so the test does not depend on what
    # the recording machine's core count made of the worker-tier ops:
    # one overhead-bound op (0.95x, below OVERHEAD_REFERENCE) and one
    # real speedup (4.0x, strict band).
    committed = tmp_path / "committed.json"
    committed.write_text(json.dumps(
        {"speedup": {"svc_tcp_throughput": 0.95, "verify": 4.0}}))
    assert 0.95 < bench_snapshot.OVERHEAD_REFERENCE
    # 25% below committed: inside the 40% overhead band for the
    # overhead-bound op (the strict 15% band would have failed it)...
    assert bench_snapshot.run_check(
        {"speedup": {"svc_tcp_throughput": 0.71, "verify": 4.0}},
        committed) == 0
    # ...but a 60% collapse must still fail...
    assert bench_snapshot.run_check(
        {"speedup": {"svc_tcp_throughput": 0.38, "verify": 4.0}},
        committed) == 1
    # ...and a real-speedup op keeps the strict band (25% below fails).
    assert bench_snapshot.run_check(
        {"speedup": {"svc_tcp_throughput": 0.95, "verify": 3.0}},
        committed) == 1


def test_check_tolerance_env_override(snapshot, tmp_path, monkeypatch):
    """BENCH_TOLERANCE (a percentage) widens the regression gate so a
    noisy shared runner can pass without a code edit."""
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    committed = tmp_path / "committed.json"
    # Inflate every committed speedup by 30%: fails at the default 15%
    # tolerance, passes once the gate is widened to 50%.
    committed.write_text(json.dumps({
        "speedup": {op: value * 1.3
                    for op, value in snapshot["speedup"].items()}
    }))
    monkeypatch.delenv("BENCH_TOLERANCE", raising=False)
    assert bench_snapshot.run_check(snapshot, committed) == 1
    monkeypatch.setenv("BENCH_TOLERANCE", "50")
    assert bench_snapshot.run_check(snapshot, committed) == 0
    monkeypatch.setenv("BENCH_TOLERANCE", "not a number")
    with pytest.raises(SystemExit):
        bench_snapshot.run_check(snapshot, committed)
    monkeypatch.setenv("BENCH_TOLERANCE", "-5")
    with pytest.raises(SystemExit):
        bench_snapshot.run_check(snapshot, committed)
