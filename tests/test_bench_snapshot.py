"""Smoke test for the perf-trajectory snapshot tool.

Runs one round of the T2 micro-benchmarks through
``tools/bench_snapshot.py`` and checks the snapshot structure plus loose
speedup floors (well under the measured 2.5x/4.8x so timing noise cannot
flake the suite, but tight enough to catch a fast path silently falling
back to the naive implementation).
"""

import json
import pathlib
import sys

import pytest

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"

pytestmark = pytest.mark.bn254


@pytest.fixture(scope="module")
def snapshot(tmp_path_factory):
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import bench_snapshot
    finally:
        sys.path.remove(str(TOOLS_DIR))
    out_dir = tmp_path_factory.mktemp("bench")
    # Best-of-3 timing: a single sample can absorb a scheduler or GC
    # pause and flake the speedup floors below on loaded machines.
    bench_snapshot.main([
        "--rounds", "3",
        "--output", str(out_dir / "BENCH_t2_ops.json"),
        "--table", str(out_dir / "t2_ops.txt"),
    ])
    return json.loads((out_dir / "BENCH_t2_ops.json").read_text())


OPS = ["share_sign", "share_verify", "combine_optimistic",
       "combine_robust", "verify"]


def test_snapshot_records_all_operations(snapshot):
    for section in ("fast_ms", "naive_ms", "speedup", "seed_reference_ms"):
        assert set(snapshot[section]) == set(OPS)
    assert snapshot["meta"]["backend"] == "bn254"


def test_fast_paths_beat_naive(snapshot):
    # Loose floors: measured speedups are 2.5x (verify/share-verify) and
    # ~4.8x (robust combine); anything near 1x means a fast path broke.
    assert snapshot["speedup"]["verify"] >= 1.5
    assert snapshot["speedup"]["share_verify"] >= 1.5
    assert snapshot["speedup"]["combine_robust"] >= 2.0
