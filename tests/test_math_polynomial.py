"""Tests for polynomials over Z_p and Lagrange interpolation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.math.lagrange import interpolate_at, lagrange_coefficients
from repro.math.polynomial import Polynomial

P = 2 ** 127 - 1   # Mersenne prime, plenty of room for indices

coeff_lists = st.lists(
    st.integers(min_value=0, max_value=P - 1), min_size=1, max_size=8)


class TestPolynomial:
    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            Polynomial([], P)

    def test_degree_counts_trailing_zeros(self):
        # Sharing polynomials keep their nominal degree.
        poly = Polynomial([1, 0, 0], P)
        assert poly.degree == 2

    def test_constant_term(self):
        assert Polynomial([42, 1], P).constant_term == 42

    def test_evaluation_horner(self):
        poly = Polynomial([1, 2, 3], P)    # 1 + 2x + 3x^2
        assert poly(0) == 1
        assert poly(1) == 6
        assert poly(2) == 1 + 4 + 12

    def test_random_fixed_constant(self, rng):
        poly = Polynomial.random(5, P, constant=7, rng=rng)
        assert poly(0) == 7
        assert poly.degree == 5

    def test_random_negative_degree_rejected(self):
        with pytest.raises(ParameterError):
            Polynomial.random(-1, P)

    def test_addition(self):
        a = Polynomial([1, 2], P)
        b = Polynomial([3, 4, 5], P)
        total = a + b
        assert total.coeffs == (4, 6, 5)

    def test_addition_modulus_mismatch(self):
        with pytest.raises(ParameterError):
            Polynomial([1], P) + Polynomial([1], 101)

    @given(coeffs=coeff_lists, x=st.integers(min_value=0, max_value=1000))
    def test_eval_matches_naive(self, coeffs, x):
        poly = Polynomial(coeffs, P)
        naive = sum(c * pow(x, k, P) for k, c in enumerate(coeffs)) % P
        assert poly(x) == naive

    @given(a=coeff_lists, b=coeff_lists,
           x=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_addition_is_pointwise(self, a, b, x):
        pa, pb = Polynomial(a, P), Polynomial(b, P)
        assert (pa + pb)(x) == (pa(x) + pb(x)) % P


class TestLagrange:
    def test_coefficients_sum_to_one_at_zero(self, rng):
        indices = [1, 4, 7, 9]
        coeffs = lagrange_coefficients(indices, P)
        # sum of basis polynomials is the constant 1
        assert sum(coeffs.values()) % P == 1

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ParameterError):
            lagrange_coefficients([1, 1, 2], P)

    def test_empty_shares_rejected(self):
        with pytest.raises(ParameterError):
            interpolate_at({}, P)

    @given(coeffs=st.lists(st.integers(min_value=0, max_value=P - 1),
                           min_size=3, max_size=6))
    @settings(max_examples=50)
    def test_interpolation_recovers_constant(self, coeffs):
        poly = Polynomial(coeffs, P)
        t = poly.degree
        shares = {i: poly(i) for i in range(1, t + 2)}
        assert interpolate_at(shares, P) == poly.constant_term

    @given(coeffs=st.lists(st.integers(min_value=0, max_value=P - 1),
                           min_size=2, max_size=5),
           x=st.integers(min_value=0, max_value=50))
    @settings(max_examples=50)
    def test_interpolation_at_arbitrary_point(self, coeffs, x):
        poly = Polynomial(coeffs, P)
        shares = {i + 100: poly(i + 100)
                  for i in range(poly.degree + 1)}
        assert interpolate_at(shares, P, x=x) == poly(x)

    def test_too_few_points_gives_wrong_answer(self, rng):
        poly = Polynomial.random(3, P, constant=123456, rng=rng)
        shares = {i: poly(i) for i in (1, 2, 3)}   # need 4
        # With overwhelming probability the interpolation misses.
        assert interpolate_at(shares, P) != poly.constant_term
