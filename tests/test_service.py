"""Tests for the async signing service (frontend, accumulator, shards,
load generator, fault injection) and the ServiceHandle facade.

Protocol logic runs on the toy backend; one end-to-end test (marked
``bn254``) exercises the real pairing.  No asyncio test plugin is
assumed: each test drives its own event loop via ``asyncio.run``.
"""

import asyncio
import random

import pytest

from repro.core.scheme import ServiceHandle
from repro.service import (
    BatchAccumulator, CorruptSignerFault, HashRing, LoadGenerator,
    ServiceConfig, ServiceClosedError, ServiceOverloadedError,
    SigningService, WorkerCrashFault, WorkerPool,
)


@pytest.fixture
def handle(toy_group):
    return ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(11))


def run(coroutine):
    return asyncio.run(coroutine)


# ---------------------------------------------------------------------------
# ServiceHandle facade
# ---------------------------------------------------------------------------

class TestServiceHandle:
    def test_sign_verify_roundtrip(self, handle):
        signature = handle.sign(b"facade message")
        assert handle.verify(b"facade message", signature)
        assert not handle.verify(b"other message", signature)

    def test_quorum_rotates_over_all_signers(self, handle):
        quorums = [handle.quorum(rotation=r) for r in range(5)]
        assert all(len(q) == handle.threshold + 1 for q in quorums)
        assert set().union(*quorums) == {1, 2, 3, 4, 5}
        assert quorums[0] != quorums[1]

    def test_sign_window_matches_single_signs(self, handle):
        messages = [b"window %d" % i for i in range(6)]
        signatures = handle.sign_window(messages, rng=random.Random(1))
        for message, signature in zip(messages, signatures):
            assert handle.verify(message, signature)
        assert handle.verify_window(messages, signatures) == [True] * 6

    def test_from_dkg_produces_working_handle(self, toy_group):
        dkg_handle, network = ServiceHandle.from_dkg(
            toy_group, 1, 4, rng=random.Random(2))
        assert network.metrics.communication_rounds == 1
        signature = dkg_handle.sign(b"dkg message")
        assert dkg_handle.verify(b"dkg message", signature)

    def test_wraps_aggregate_scheme(self, toy_group):
        from repro.core.aggregation import (
            AggThresholdParams, LJYAggregateScheme,
        )
        params = AggThresholdParams.generate(toy_group, t=1, n=3)
        scheme = LJYAggregateScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=random.Random(3))
        agg_handle = ServiceHandle(scheme, pk, shares, vks)
        signature = agg_handle.sign(b"agg message")
        assert agg_handle.verify(b"agg message", signature)
        robust = agg_handle.sign(b"agg message", robust=True)
        assert robust.to_bytes() == signature.to_bytes()
        # Window-sized paths are LJYThresholdScheme-only: typed error,
        # not an AttributeError from deep inside a shard worker.
        with pytest.raises(TypeError):
            agg_handle.sign_window([b"agg message"])
        with pytest.raises(TypeError):
            agg_handle.verify_window([b"agg message"], [signature])


# ---------------------------------------------------------------------------
# Window-sized scheme entry points
# ---------------------------------------------------------------------------

class TestWindowEntryPoints:
    def test_combine_window_all_honest_single_batch_check(self, handle):
        scheme = handle.scheme
        messages = [b"cw %d" % i for i in range(5)]
        windows = [
            (message, handle.partials_for(message)) for message in messages
        ]
        signatures, flagged = scheme.combine_window(
            handle.public_key, handle.verification_keys, windows,
            rng=random.Random(4))
        assert flagged == []
        for message, signature in zip(messages, signatures):
            assert handle.verify(message, signature)

    def test_combine_window_flags_poisoned_request_only(self, handle):
        scheme = handle.scheme
        messages = [b"pw %d" % i for i in range(4)]
        windows = []
        for position, message in enumerate(messages):
            partials = handle.partials_for(message, signers=(1, 2, 3, 4))
            if position == 2:
                bad = partials[0]
                partials[0] = type(bad)(
                    index=bad.index, z=bad.z * bad.z, r=bad.r)
            windows.append((message, partials))
        signatures, flagged = scheme.combine_window(
            handle.public_key, handle.verification_keys, windows,
            rng=random.Random(5))
        assert flagged == [2]
        # The poisoned request recovered through the robust per-share
        # path (4 partials, 3 valid >= t+1), the rest stayed optimistic.
        for message, signature in zip(messages, signatures):
            assert signature is not None
            assert handle.verify(message, signature)

    def test_combine_window_returns_none_when_quorum_exhausted(self, handle):
        scheme = handle.scheme
        message = b"exhausted"
        partials = handle.partials_for(message, signers=(1, 2, 3))
        bad = partials[1]
        partials[1] = type(bad)(index=bad.index, z=bad.z * bad.z, r=bad.r)
        signatures, flagged = scheme.combine_window(
            handle.public_key, handle.verification_keys,
            [(message, partials)], rng=random.Random(6))
        assert flagged == [0]
        assert signatures == [None]

    def test_combine_window_underprovisioned_request_isolated(self, handle):
        # A request with fewer than t+1 distinct partials must be
        # flagged (None), not abort the rest of the window.
        scheme = handle.scheme
        good_message, short_message = b"good req", b"short req"
        windows = [
            (good_message, handle.partials_for(good_message)),
            (short_message,
             handle.partials_for(short_message, signers=(1, 1, 2))),
        ]
        signatures, flagged = scheme.combine_window(
            handle.public_key, handle.verification_keys, windows,
            rng=random.Random(21))
        assert flagged == [1]
        assert signatures[1] is None
        assert handle.verify(good_message, signatures[0])

    def test_verify_window_verdicts(self, handle):
        messages = [b"vw %d" % i for i in range(6)]
        signatures = [handle.sign(message) for message in messages]
        bad = signatures[3]
        signatures[3] = type(bad)(z=bad.z * bad.z, r=bad.r)
        verdicts = handle.verify_window(messages, signatures,
                                        rng=random.Random(7))
        assert verdicts == [True, True, True, False, True, True]


# ---------------------------------------------------------------------------
# Batch accumulator
# ---------------------------------------------------------------------------

class TestBatchAccumulator:
    def test_closes_on_max_batch(self):
        async def scenario():
            queue = asyncio.Queue()
            accumulator = BatchAccumulator(queue, max_batch=3,
                                           max_wait_ms=10_000)
            for item in range(7):
                queue.put_nowait(item)
            first = await accumulator.next_window()
            second = await accumulator.next_window()
            return first, second

        first, second = run(scenario())
        assert first == [0, 1, 2]
        assert second == [3, 4, 5]

    def test_closes_on_deadline_with_partial_window(self):
        async def scenario():
            queue = asyncio.Queue()
            accumulator = BatchAccumulator(queue, max_batch=64,
                                           max_wait_ms=20)
            queue.put_nowait("only")
            return await accumulator.next_window()

        assert run(scenario()) == ["only"]

    def test_blocks_until_first_item(self):
        async def scenario():
            queue = asyncio.Queue()
            accumulator = BatchAccumulator(queue, max_batch=4,
                                           max_wait_ms=5)

            async def feeder():
                await asyncio.sleep(0.01)
                queue.put_nowait("late")

            feeder_task = asyncio.get_running_loop().create_task(feeder())
            window = await accumulator.next_window()
            await feeder_task
            return window

        assert run(scenario()) == ["late"]

    def test_rejects_bad_parameters(self):
        queue = asyncio.Queue()
        with pytest.raises(ValueError):
            BatchAccumulator(queue, max_batch=0, max_wait_ms=1)
        with pytest.raises(ValueError):
            BatchAccumulator(queue, max_batch=1, max_wait_ms=-1)


# ---------------------------------------------------------------------------
# Consistent hashing
# ---------------------------------------------------------------------------

class TestHashRing:
    def test_deterministic_and_total(self):
        ring = HashRing([0, 1, 2, 3])
        messages = [b"m%d" % i for i in range(200)]
        owners = [ring.shard_for(message) for message in messages]
        assert owners == [ring.shard_for(message) for message in messages]
        assert set(owners) == {0, 1, 2, 3}

    def test_resize_moves_only_a_fraction(self):
        small = HashRing([0, 1, 2, 3])
        grown = HashRing([0, 1, 2, 3, 4])
        messages = [b"key%d" % i for i in range(500)]
        moved = sum(
            1 for message in messages
            if small.shard_for(message) != grown.shard_for(message))
        # Consistent hashing: only ~1/5 of keys move to the new shard;
        # modulo hashing would remap ~4/5.  Allow generous slack.
        assert moved < len(messages) * 0.4
        for message in messages:
            if small.shard_for(message) != grown.shard_for(message):
                assert grown.shard_for(message) == 4

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            HashRing([])


# ---------------------------------------------------------------------------
# The service itself
# ---------------------------------------------------------------------------

class TestSigningService:
    def test_sign_and_verify_requests(self, handle):
        async def scenario():
            config = ServiceConfig(num_shards=2, max_batch=8,
                                   max_wait_ms=2.0, rng=random.Random(8))
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"svc %d" % i) for i in range(20)))
                verdicts = await asyncio.gather(*(
                    service.verify(result.message, result.signature)
                    for result in results))
            return service, results, verdicts

        service, results, verdicts = run(scenario())
        assert all(handle.verify(r.message, r.signature) for r in results)
        assert all(v.valid for v in verdicts)
        stats = service.snapshot_stats()
        assert stats.accepted == 40
        assert stats.completed == 40
        assert stats.rejected == 0
        # Batching happened: strictly fewer windows than requests.
        assert 0 < sum(s.windows for s in stats.shards.values()) < 40
        assert stats.ingress.messages == 40
        assert stats.egress.bytes_total > 0

    def test_batch_window_amortization_counts(self, handle):
        """A full window of k requests costs one batch check, not k."""
        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=16,
                                   max_wait_ms=50.0, rng=random.Random(9))
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"amortize %d" % i) for i in range(16)))
            return service, results

        service, results = run(scenario())
        stats = service.snapshot_stats()
        shard = stats.shards[0]
        assert shard.windows == 1
        assert shard.full_windows == 1
        assert shard.requests_per_window == 16
        assert all(result.batch_size == 16 for result in results)

    def test_load_shedding_typed_and_counted(self, handle):
        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=4,
                                   max_wait_ms=1.0, queue_depth=2,
                                   rng=random.Random(10))
            async with SigningService(handle, config) as service:
                outcomes = await asyncio.gather(
                    *(service.sign(b"shed %d" % i) for i in range(10)),
                    return_exceptions=True)
            return service, outcomes

        service, outcomes = run(scenario())
        rejected = [o for o in outcomes
                    if isinstance(o, ServiceOverloadedError)]
        completed = [o for o in outcomes
                     if not isinstance(o, Exception)]
        assert rejected and completed
        assert rejected[0].shard_id == 0
        stats = service.snapshot_stats()
        assert stats.rejected == len(rejected)
        assert stats.completed == len(completed)

    def test_closed_service_rejects(self, handle):
        async def scenario():
            service = SigningService(handle)
            with pytest.raises(ServiceClosedError):
                await service.sign(b"early")
            async with service:
                await service.sign(b"during")
            with pytest.raises(ServiceClosedError):
                await service.sign(b"late")

        run(scenario())

    def test_traffic_partitions_across_shards(self, handle):
        async def scenario():
            config = ServiceConfig(num_shards=4, max_batch=4,
                                   max_wait_ms=1.0, rng=random.Random(12))
            async with SigningService(handle, config) as service:
                await asyncio.gather(*(
                    service.sign(b"partition %d" % i) for i in range(64)))
            return service

        service = run(scenario())
        stats = service.snapshot_stats()
        busy_shards = [s for s in stats.shards.values() if s.requests]
        assert len(busy_shards) >= 3
        assert sum(s.requests for s in stats.shards.values()) == 64

    def test_forged_partial_localized_window_completes(self, handle):
        """The acceptance scenario: a shard injecting one forged partial
        into a full window is localized via locate_invalid and every
        request in the window still completes with a valid signature."""
        fault = CorruptSignerFault(signer_index=1, shard_id=0)

        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=50.0, fault_injector=fault,
                                   rng=random.Random(13))
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"fault %d" % i) for i in range(8)))
            return service, results

        service, results = run(scenario())
        assert fault.injected
        for result in results:
            assert handle.verify(result.message, result.signature)
        stats = service.snapshot_stats()
        shard = stats.shards[0]
        assert shard.faults_localized > 0
        assert shard.fallback_combines > 0
        assert stats.failed == 0

    def test_targeted_fault_leaves_neighbors_optimistic(self, handle):
        """A forgery against one message must not drag the rest of its
        window through the robust path."""
        target = b"targeted 3"
        fault = CorruptSignerFault(signer_index=2, messages={target})

        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=50.0, fault_injector=fault,
                                   rng=random.Random(14))
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"targeted %d" % i) for i in range(8)))
            return service, results

        service, results = run(scenario())
        by_message = {result.message: result for result in results}
        # Signer 2 is in shard 0's quorum (1, 2, 3), so the fault fired.
        assert fault.injected
        assert by_message[target].fallback
        untouched = [r for m, r in by_message.items() if m != target]
        assert all(not r.fallback for r in untouched)
        for result in results:
            assert handle.verify(result.message, result.signature)

    def test_cancelled_client_does_not_poison_window(self, handle):
        # One client timing out must not fail its window neighbors.
        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=50.0, rng=random.Random(22))
            async with SigningService(handle, config) as service:
                doomed = asyncio.get_running_loop().create_task(
                    service.sign(b"cancelled req"))
                survivors = [
                    asyncio.get_running_loop().create_task(
                        service.sign(b"survivor %d" % i))
                    for i in range(7)
                ]
                await asyncio.sleep(0)   # let all requests enqueue
                doomed.cancel()
                results = await asyncio.gather(*survivors)
                with pytest.raises(asyncio.CancelledError):
                    await doomed
            return results

        results = run(scenario())
        assert len(results) == 7
        for result in results:
            assert handle.verify(result.message, result.signature)

    def test_invalid_signature_reported_not_failed(self, handle):
        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=4,
                                   max_wait_ms=1.0, rng=random.Random(15))
            async with SigningService(handle, config) as service:
                good = await service.sign(b"good message")
                bad_signature = type(good.signature)(
                    z=good.signature.z * good.signature.z,
                    r=good.signature.r)
                mixed = await asyncio.gather(
                    service.verify(b"good message", good.signature),
                    service.verify(b"good message", bad_signature))
            return mixed

        ok, bad = run(scenario())
        assert ok.valid and not bad.valid


# ---------------------------------------------------------------------------
# The process-parallel worker tier
# ---------------------------------------------------------------------------

class TestWorkerPool:
    def test_sign_and_verify_through_worker_processes(self, handle):
        """workers=N serves the same contract as in-process mode: every
        signature produced in a worker process verifies in the parent,
        and the job/crash accounting is exposed in the stats."""
        async def scenario():
            config = ServiceConfig(num_shards=2, max_batch=4,
                                   max_wait_ms=10.0, workers=2)
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"mp svc %d" % i) for i in range(12)))
                verdicts = await asyncio.gather(*(
                    service.verify(result.message, result.signature)
                    for result in results))
            return service, results, verdicts

        service, results, verdicts = run(scenario())
        assert all(handle.verify(r.message, r.signature) for r in results)
        assert all(v.valid for v in verdicts)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers is not None
        assert stats.workers.workers == 2
        assert stats.workers.jobs > 0
        assert stats.workers.crashes == 0

    def test_worker_crash_recovered_by_resubmission(self, handle,
                                                    tmp_path):
        """Kill a worker process mid-window: the pool must detect the
        crash, rebuild the executor, resubmit the job, and every request
        in the window must still complete with a valid signature."""
        fault = WorkerCrashFault(tmp_path / "crashed.sentinel")

        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=50.0, workers=2,
                                   fault_injector=fault)
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"crash %d" % i) for i in range(8)))
            return service, results

        service, results = run(scenario())
        assert (tmp_path / "crashed.sentinel").exists()
        assert len(results) == 8
        for result in results:
            assert handle.verify(result.message, result.signature)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers.crashes >= 1
        assert stats.workers.resubmissions >= 1

    def test_corrupt_signer_localized_inside_worker(self, handle):
        """The CorruptSignerFault pattern survives the process boundary:
        the injector runs inside the worker, the forgery is localized
        there, and the fallback accounting flows back in the outcome."""
        fault = CorruptSignerFault(signer_index=1, shard_id=0)

        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=50.0, workers=1,
                                   fault_injector=fault)
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"mp fault %d" % i) for i in range(8)))
            return service, results

        service, results = run(scenario())
        for result in results:
            assert handle.verify(result.message, result.signature)
        stats = service.snapshot_stats()
        shard = stats.shards[0]
        # ``fault.injected`` lives in the worker process; the parent
        # sees the localization through the outcome counters instead.
        assert shard.faults_localized > 0
        assert shard.fallback_combines > 0
        assert stats.failed == 0

    def test_partial_sign_job_round_trips_process_boundary(self, handle):
        """A partial-signing job crosses the wire, and the decoded
        partials combine and verify in the parent — the split-combiner
        deployment shape."""
        from repro.serialization import PartialSignJob

        async def scenario():
            pool = WorkerPool(handle, workers=1)
            pool.start()
            try:
                outcome = await pool.run_job(PartialSignJob(
                    shard_id=0, message=b"remote partials",
                    signers=tuple(handle.quorum())))
            finally:
                pool.shutdown()
            return outcome

        outcome = run(scenario())
        assert [p.index for p in outcome.partials] == handle.quorum()
        signature = handle.scheme.combine(
            handle.public_key, handle.verification_keys,
            b"remote partials", list(outcome.partials))
        assert handle.verify(b"remote partials", signature)

    def test_pool_rejects_schemes_without_window_entry_points(
            self, toy_group):
        from repro.core.aggregation import (
            AggThresholdParams, LJYAggregateScheme,
        )
        params = AggThresholdParams.generate(toy_group, t=1, n=3)
        scheme = LJYAggregateScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=random.Random(23))
        agg_handle = ServiceHandle(scheme, pk, shares, vks)
        with pytest.raises(TypeError):
            WorkerPool(agg_handle, workers=1)

    def test_pool_rejects_bad_parameters(self, handle):
        with pytest.raises(ValueError):
            WorkerPool(handle, workers=0)
        with pytest.raises(ValueError):
            WorkerPool(handle, workers=1, max_retries=-1)

    def test_worker_pids_report_real_children(self, handle):
        import os

        from repro.service import WorkerCrashError

        async def scenario():
            pool = WorkerPool(handle, workers=2)
            with pytest.raises(WorkerCrashError):
                await pool.worker_pids()   # not started yet
            pool.start()
            try:
                pids = await pool.worker_pids()
            finally:
                pool.shutdown()
            with pytest.raises(WorkerCrashError):
                await pool.worker_pids()   # stopped again
            return pids

        pids = run(scenario())
        assert pids and os.getpid() not in pids


# ---------------------------------------------------------------------------
# Load generator
# ---------------------------------------------------------------------------

class TestLoadGenerator:
    def test_closed_loop_report(self, handle):
        async def scenario():
            config = ServiceConfig(num_shards=2, max_batch=8,
                                   max_wait_ms=2.0, rng=random.Random(16))
            async with SigningService(handle, config) as service:
                generator = LoadGenerator(
                    lambda i: service.sign(b"closed %d" % i))
                return await generator.run_closed(total=24, concurrency=8)

        report = run(scenario())
        assert report.sent == 24
        assert report.completed == 24
        assert report.rejected == 0
        assert report.throughput_rps > 0
        assert report.p50_ms <= report.p99_ms
        assert len(report.latencies_ms) == 24

    def test_open_loop_poisson_counts_shedding(self, handle):
        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=2,
                                   max_wait_ms=0.0, queue_depth=1,
                                   rng=random.Random(17))
            async with SigningService(handle, config) as service:
                generator = LoadGenerator(
                    lambda i: service.sign(b"open %d" % i),
                    rng=random.Random(18))
                return await generator.run_open(total=40, rate_rps=20_000)

        report = run(scenario())
        assert report.sent == 40
        assert report.completed + report.rejected + report.failed == 40
        assert report.completed > 0

    def test_invalid_verifies_counted(self, handle):
        signature = handle.sign(b"valid message")
        forged = type(signature)(z=signature.z * signature.z, r=signature.r)

        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=4,
                                   max_wait_ms=1.0, rng=random.Random(19))
            async with SigningService(handle, config) as service:
                generator = LoadGenerator(
                    lambda i: service.verify(
                        b"valid message",
                        forged if i % 2 else signature))
                return await generator.run_closed(total=8, concurrency=4)

        report = run(scenario())
        assert report.completed == 8
        assert report.invalid == 4

    def test_percentile_nearest_rank(self):
        from repro.service.loadgen import percentile
        samples = [float(v) for v in range(1, 101)]
        assert percentile(samples, 50) == 50.0
        assert percentile(samples, 99) == 99.0
        assert percentile([7.0], 50) == 7.0


# ---------------------------------------------------------------------------
# Real curve end to end
# ---------------------------------------------------------------------------

@pytest.mark.bn254
def test_service_end_to_end_on_bn254(bn254_group):
    handle = ServiceHandle.dealer(bn254_group, 1, 3, rng=random.Random(20))
    fault = CorruptSignerFault(signer_index=1, shard_id=0)

    async def scenario():
        config = ServiceConfig(num_shards=1, max_batch=4,
                               max_wait_ms=100.0, fault_injector=fault,
                               rng=random.Random(21))
        async with SigningService(handle, config) as service:
            results = await asyncio.gather(*(
                service.sign(b"bn254 svc %d" % i) for i in range(4)))
            verdicts = await asyncio.gather(*(
                service.verify(result.message, result.signature)
                for result in results))
        return results, verdicts

    results, verdicts = asyncio.run(scenario())
    assert fault.injected
    assert all(handle.verify(r.message, r.signature) for r in results)
    assert all(v.valid for v in verdicts)


@pytest.mark.bn254
def test_worker_tier_end_to_end_on_bn254(bn254_group):
    """Signatures produced by worker processes over the real pairing
    verify in the parent — the wire format carries real curve points."""
    handle = ServiceHandle.dealer(bn254_group, 1, 3, rng=random.Random(24))

    async def scenario():
        config = ServiceConfig(num_shards=2, max_batch=4,
                               max_wait_ms=50.0, workers=2)
        async with SigningService(handle, config) as service:
            results = await asyncio.gather(*(
                service.sign(b"bn254 mp %d" % i) for i in range(4)))
            verdicts = await asyncio.gather(*(
                service.verify(result.message, result.signature)
                for result in results))
        return service, results, verdicts

    service, results, verdicts = asyncio.run(scenario())
    assert all(handle.verify(r.message, r.signature) for r in results)
    assert all(v.valid for v in verdicts)
    stats = service.snapshot_stats()
    assert stats.workers.jobs > 0 and stats.workers.crashes == 0
