"""Tests for the three baseline schemes (BLS, Shoup RSA, ADN06 RSA)."""

import pytest

from repro.baselines.adn06 import ADN06ThresholdRSA
from repro.baselines.bls_threshold import BoldyrevaThresholdBLS
from repro.baselines.rsa_params import SAFE_PRIME_PAIRS
from repro.baselines.rsa_threshold import (
    ShoupPartialSignature, ShoupThresholdRSA, integer_lagrange_at_zero,
)
from repro.errors import CombineError, ParameterError


class TestSafePrimes:
    @pytest.mark.parametrize("bits", sorted(SAFE_PRIME_PAIRS))
    def test_pairs_are_safe_primes(self, bits):
        def miller_rabin(n):
            # deterministic-enough check with fixed bases
            if n % 2 == 0:
                return n == 2
            d, s = n - 1, 0
            while d % 2 == 0:
                d //= 2
                s += 1
            for a in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
                x = pow(a, d, n)
                if x in (1, n - 1):
                    continue
                for _ in range(s - 1):
                    x = x * x % n
                    if x == n - 1:
                        break
                else:
                    return False
            return True

        p, q = SAFE_PRIME_PAIRS[bits]
        assert p != q
        for prime in (p, q):
            assert miller_rabin(prime)
            assert miller_rabin((prime - 1) // 2)

    @pytest.mark.parametrize("bits", sorted(SAFE_PRIME_PAIRS))
    def test_modulus_size(self, bits):
        p, q = SAFE_PRIME_PAIRS[bits]
        assert abs((p * q).bit_length() - bits) <= 1


class TestIntegerLagrange:
    def test_matches_rational_interpolation(self):
        import math
        delta = math.factorial(5)
        coeffs = integer_lagrange_at_zero([1, 3, 4], delta)
        # f(x) = 7 + 2x + x^2; Delta * f(0) = sum lambda_i f(i)
        f = lambda x: 7 + 2 * x + x * x
        total = sum(coeffs[i] * f(i) for i in (1, 3, 4))
        assert total == delta * 7


@pytest.fixture(scope="module")
def shoup():
    import random
    scheme = ShoupThresholdRSA(t=2, n=5, modulus_bits=512)
    pk, shares = scheme.dealer_keygen(rng=random.Random(31))
    return scheme, pk, shares


class TestShoup:
    def test_full_flow(self, shoup, rng):
        scheme, pk, shares = shoup
        partials = [scheme.share_sign(pk, i, shares[i], b"m", rng=rng)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, b"m", partials)
        assert scheme.verify(pk, b"m", signature)

    def test_any_subset_same_signature(self, shoup, rng):
        scheme, pk, shares = shoup
        sigs = set()
        for subset in ((1, 2, 3), (2, 4, 5), (1, 3, 5)):
            partials = [scheme.share_sign(pk, i, shares[i], b"m", rng=rng)
                        for i in subset]
            sigs.add(scheme.combine(pk, b"m", partials).y)
        assert len(sigs) == 1     # RSA signatures are unique

    def test_share_proofs_verify(self, shoup, rng):
        scheme, pk, shares = shoup
        partial = scheme.share_sign(pk, 2, shares[2], b"m", rng=rng)
        assert scheme.share_verify(pk, b"m", partial)

    def test_bogus_partial_rejected(self, shoup, rng):
        scheme, pk, shares = shoup
        partial = scheme.share_sign(pk, 2, shares[2], b"m", rng=rng)
        forged = ShoupPartialSignature(
            index=2, x_i=partial.x_i * 2 % pk.n_modulus,
            proof=partial.proof)
        assert not scheme.share_verify(pk, b"m", forged)

    def test_combine_filters_bogus(self, shoup, rng):
        scheme, pk, shares = shoup
        good = [scheme.share_sign(pk, i, shares[i], b"m", rng=rng)
                for i in (1, 2, 3)]
        bad = ShoupPartialSignature(index=4, x_i=12345, proof=(1, 1))
        signature = scheme.combine(pk, b"m", [bad] + good)
        assert scheme.verify(pk, b"m", signature)

    def test_below_threshold_fails(self, shoup, rng):
        scheme, pk, shares = shoup
        partials = [scheme.share_sign(pk, i, shares[i], b"m", rng=rng)
                    for i in (1, 2)]
        with pytest.raises(CombineError):
            scheme.combine(pk, b"m", partials)

    def test_wrong_message_rejected(self, shoup, rng):
        scheme, pk, shares = shoup
        partials = [scheme.share_sign(pk, i, shares[i], b"m", rng=rng)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, b"m", partials)
        assert not scheme.verify(pk, b"other", signature)

    def test_signature_size_matches_modulus(self, shoup, rng):
        scheme, pk, shares = shoup
        partials = [scheme.share_sign(pk, i, shares[i], b"m", rng=rng)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, b"m", partials)
        assert signature.size_bits == 512

    def test_exponent_exceeds_n(self):
        scheme = ShoupThresholdRSA(t=1, n=10, modulus_bits=512)
        assert scheme.e > 10

    def test_unknown_modulus_size_rejected(self):
        with pytest.raises(ParameterError):
            ShoupThresholdRSA(t=1, n=3, modulus_bits=999)


@pytest.fixture(scope="module")
def adn():
    import random
    scheme = ADN06ThresholdRSA(t=2, n=5, modulus_bits=512)
    pk, states = scheme.dealer_keygen(rng=random.Random(37))
    return scheme, pk, states


class TestADN06:
    def test_optimistic_single_round(self, adn):
        scheme, pk, states = adn
        signature = scheme.sign(pk, states, b"m")
        assert signature.rounds == 1
        assert scheme.verify(pk, b"m", signature)

    def test_repair_round_on_failure(self, adn):
        scheme, pk, states = adn
        signature = scheme.sign(pk, states, b"m", live_players={1, 2, 3, 5})
        assert signature.rounds == 2
        assert scheme.verify(pk, b"m", signature)

    def test_multiple_failures(self, adn):
        scheme, pk, states = adn
        signature = scheme.sign(pk, states, b"m", live_players={1, 3, 5})
        assert signature.rounds == 2
        assert scheme.verify(pk, b"m", signature)

    def test_below_threshold_survivors_fail(self, adn):
        scheme, pk, states = adn
        with pytest.raises(CombineError):
            scheme.sign(pk, states, b"m", live_players={1, 2})

    def test_storage_grows_linearly(self, rng):
        values = {}
        for n in (3, 5, 9):
            scheme = ADN06ThresholdRSA(t=1, n=n, modulus_bits=512)
            _pk, states = scheme.dealer_keygen(rng=rng)
            values[n] = states[1].storage_values()
        assert values[3] == 4 and values[5] == 6 and values[9] == 10

    def test_signature_matches_shoup_size_claim(self, adn):
        scheme, pk, states = adn
        signature = scheme.sign(pk, states, b"m")
        assert signature.size_bits == 512     # scales with modulus


@pytest.fixture(scope="module")
def bls():
    import random
    from repro.groups import get_group
    group = get_group("toy")
    scheme = BoldyrevaThresholdBLS(group, t=2, n=5)
    pk, shares, vks = scheme.dealer_keygen(rng=random.Random(41))
    return scheme, pk, shares, vks


class TestBoldyrevaBLS:
    def test_full_flow(self, bls):
        scheme, pk, shares, vks = bls
        partials = [scheme.share_sign(i, shares[i], b"m") for i in (1, 2, 3)]
        signature = scheme.combine(vks, b"m", partials)
        assert scheme.verify(pk, b"m", signature)

    def test_share_verify(self, bls):
        scheme, pk, shares, vks = bls
        partial = scheme.share_sign(1, shares[1], b"m")
        assert scheme.share_verify(vks[1], b"m", partial)
        assert not scheme.share_verify(vks[2], b"m", partial)

    def test_robust_combine(self, bls):
        scheme, pk, shares, vks = bls
        from repro.baselines.bls_threshold import BLSPartialSignature
        garbage = BLSPartialSignature(
            index=1, sigma=scheme.group.g1_generator())
        honest = [scheme.share_sign(i, shares[i], b"m") for i in (2, 3, 4)]
        signature = scheme.combine(vks, b"m", [garbage] + honest)
        assert scheme.verify(pk, b"m", signature)

    def test_below_threshold_fails(self, bls):
        scheme, pk, shares, vks = bls
        with pytest.raises(CombineError):
            scheme.combine(vks, b"m", [scheme.share_sign(1, shares[1], b"m")])

    def test_wrong_message_rejected(self, bls):
        scheme, pk, shares, vks = bls
        partials = [scheme.share_sign(i, shares[i], b"m") for i in (1, 2, 3)]
        signature = scheme.combine(vks, b"m", partials)
        assert not scheme.verify(pk, b"other", signature)

    def test_signature_is_one_group_element(self, bls):
        scheme, pk, shares, vks = bls
        partials = [scheme.share_sign(i, shares[i], b"m") for i in (1, 2, 3)]
        signature = scheme.combine(vks, b"m", partials)
        assert signature.size_bits == 256
