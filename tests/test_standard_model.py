"""Tests for the Section 4 standard-model threshold scheme."""

import itertools

import pytest

from repro.core.standard_model import (
    LJYStandardModelScheme, SMParams, SMPartialSignature,
)
from repro.errors import CombineError


@pytest.fixture(scope="module")
def sm_setup():
    from repro.groups import get_group
    import random
    group = get_group("toy")
    params = SMParams.generate(group, t=2, n=5, bit_length=16)
    scheme = LJYStandardModelScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=random.Random(42))
    return scheme, pk, shares, vks


class TestSigningFlow:
    def test_full_flow(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        message = b"standard model"
        partials = [scheme.share_sign(shares[i], message, rng=rng)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, message, partials, rng=rng)
        assert scheme.verify(pk, message, signature)

    def test_share_verify(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        partial = scheme.share_sign(shares[2], b"m", rng=rng)
        assert scheme.share_verify(pk, vks[2], b"m", partial)
        assert not scheme.share_verify(pk, vks[3], b"m", partial)
        assert not scheme.share_verify(pk, vks[2], b"other", partial)

    def test_any_subset_verifies(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        message = b"subsets"
        for subset in itertools.combinations(range(1, 6), 3):
            partials = [scheme.share_sign(shares[i], message, rng=rng)
                        for i in subset]
            signature = scheme.combine(pk, vks, message, partials, rng=rng)
            assert scheme.verify(pk, message, signature)

    def test_signature_is_randomized(self, sm_setup, rng):
        """Unlike Section 3, standard-model signatures are randomized —
        two combinations of the same partials differ as bitstrings."""
        scheme, pk, shares, vks = sm_setup
        message = b"randomized"
        partials = [scheme.share_sign(shares[i], message, rng=rng)
                    for i in (1, 2, 3)]
        sig1 = scheme.combine(pk, vks, message, partials, rng=rng)
        sig2 = scheme.combine(pk, vks, message, partials, rng=rng)
        assert sig1.to_bytes() != sig2.to_bytes()
        assert scheme.verify(pk, message, sig1)
        assert scheme.verify(pk, message, sig2)

    def test_verify_rejects_wrong_message(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        partials = [scheme.share_sign(shares[i], b"m", rng=rng)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, b"m", partials, rng=rng)
        assert not scheme.verify(pk, b"other", signature)

    def test_master_signature_verifies(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        from repro.math.lagrange import lagrange_coefficients
        order = scheme.group.order
        coeffs = lagrange_coefficients([1, 2, 3], order)
        a_0 = sum(coeffs[i] * shares[i].a for i in (1, 2, 3)) % order
        b_0 = sum(coeffs[i] * shares[i].b for i in (1, 2, 3)) % order
        signature = scheme.sign_with_master((a_0, b_0), b"m", rng=rng)
        assert scheme.verify(pk, b"m", signature)

    def test_signature_size_2048_bits(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        partials = [scheme.share_sign(shares[i], b"m", rng=rng)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, b"m", partials, rng=rng)
        assert signature.size_bits == 2048


class TestRobustness:
    def test_garbage_partials_filtered(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        message = b"robust"
        good = [scheme.share_sign(shares[i], message, rng=rng)
                for i in (3, 4, 5)]
        valid = scheme.share_sign(shares[1], b"other-msg", rng=rng)
        garbage = SMPartialSignature(
            index=1, c_z=valid.c_z, c_r=valid.c_r, proof=valid.proof)
        signature = scheme.combine(pk, vks, message, [garbage] + good,
                                   rng=rng)
        assert scheme.verify(pk, message, signature)

    def test_below_threshold_fails(self, sm_setup, rng):
        scheme, pk, shares, vks = sm_setup
        partials = [scheme.share_sign(shares[i], b"m", rng=rng)
                    for i in (1, 2)]
        with pytest.raises(CombineError):
            scheme.combine(pk, vks, b"m", partials, rng=rng)


@pytest.mark.bn254
class TestOnRealCurve:
    def test_full_flow_bn254(self, bn254_group, rng):
        params = SMParams.generate(bn254_group, t=1, n=3, bit_length=8)
        scheme = LJYStandardModelScheme(params)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        message = b"real standard model"
        partials = [scheme.share_sign(shares[i], message, rng=rng)
                    for i in (1, 2)]
        signature = scheme.combine(pk, vks, message, partials, rng=rng)
        assert scheme.verify(pk, message, signature)
        assert not scheme.verify(pk, b"forgery", signature)
        assert signature.size_bits == 2048
