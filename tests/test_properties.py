"""Property-based tests of the paper's core invariants.

Hypothesis drives random (t, n) configurations and quorum choices on the
toy backend, checking the invariants the construction stands on:

* **Correctness** — any t+1 of n partial signatures combine into the same
  verifying 512-bit signature, whatever the quorum.
* **Uniqueness/determinism** — the combined signature equals the
  master-key signature (the scheme is deterministic, a property the
  non-interactive combiner relies on).
* **Threshold secrecy (information-theoretic half)** — any t shares are
  consistent with *every* candidate master key: interpolating t shares
  plus an arbitrary guessed share yields a degree-t polynomial that
  matches those t shares, so the adversary's view does not pin the key.
* **Key homomorphism** — summing two share vectors signs under the summed
  key, the enabler of DKG-by-summing-dealings.
"""

import random as random_module

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme, reconstruct_master_key
from repro.groups import get_group
from repro.math.lagrange import interpolate_at, lagrange_coefficients
from repro.math.polynomial import Polynomial

GROUP = get_group("toy")

configs = st.tuples(
    st.integers(min_value=1, max_value=4),      # t
    st.integers(min_value=0, max_value=4),      # extra players above 2t+1
    st.integers(min_value=0, max_value=2 ** 32),  # seed
)


def deploy(t, n, seed):
    params = ThresholdParams.generate(GROUP, t=t, n=n)
    scheme = LJYThresholdScheme(params)
    rng = random_module.Random(seed)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    return scheme, pk, shares, vks, rng


@given(config=configs)
@settings(max_examples=25, deadline=None)
def test_any_quorum_combines_to_the_master_signature(config):
    t, extra, seed = config
    n = 2 * t + 1 + extra
    scheme, pk, shares, vks, rng = deploy(t, n, seed)
    message = b"property"
    quorum = rng.sample(range(1, n + 1), t + 1)
    partials = [scheme.share_sign(shares[i], message) for i in quorum]
    signature = scheme.combine(pk, vks, message, partials)
    assert scheme.verify(pk, message, signature)
    master = reconstruct_master_key(list(shares.values()), GROUP.order, t)
    direct = scheme.sign_with_master(master, message)
    assert signature.to_bytes() == direct.to_bytes()


@given(config=configs)
@settings(max_examples=25, deadline=None)
def test_two_disjoint_quorums_agree(config):
    t, extra, seed = config
    n = 2 * t + 1 + extra
    scheme, pk, shares, vks, rng = deploy(t, n, seed)
    message = b"agreement"
    first = list(range(1, t + 2))
    second = list(range(n - t, n + 1))
    sig1 = scheme.combine(pk, vks, message, [
        scheme.share_sign(shares[i], message) for i in first])
    sig2 = scheme.combine(pk, vks, message, [
        scheme.share_sign(shares[i], message) for i in second])
    assert sig1.to_bytes() == sig2.to_bytes()


@given(config=configs,
       guess=st.integers(min_value=0, max_value=GROUP.order - 1))
@settings(max_examples=25, deadline=None)
def test_t_shares_are_consistent_with_any_master(config, guess):
    """Perfect secrecy of degree-t sharing: for ANY guessed value of the
    missing (t+1)-th share, the t known shares interpolate consistently —
    so t shares carry no information about the constant term."""
    t, extra, seed = config
    n = 2 * t + 1 + extra
    rng = random_module.Random(seed)
    poly = Polynomial.random(t, GROUP.order, rng=rng)
    known = {i: poly(i) for i in range(1, t + 1)}
    # Complete with an arbitrary guessed share at index t+1.
    completed = dict(known)
    completed[t + 1] = guess
    candidate_secret = interpolate_at(completed, GROUP.order)
    # The degree-t polynomial through the completed points re-produces
    # every known share (consistency), whatever the guess was.
    coefficients = {
        x: lagrange_coefficients(completed.keys(), GROUP.order, x=x)
        for x in known
    }
    for x, value in known.items():
        recomputed = sum(
            coefficients[x][i] * completed[i] for i in completed
        ) % GROUP.order
        assert recomputed == value
    # And the candidate secret really varies with the guess (no pinning):
    # for at least one alternative guess the secret changes.
    completed[t + 1] = (guess + 1) % GROUP.order
    other_secret = interpolate_at(completed, GROUP.order)
    assert other_secret != candidate_secret


@given(config=configs)
@settings(max_examples=20, deadline=None)
def test_share_addition_signs_under_summed_key(config):
    """Key homomorphism at the share level: (SK_i + SK'_i) produces
    partial signatures valid for the product public key — exactly why
    summing DKG dealings works."""
    t, extra, seed = config
    n = 2 * t + 1 + extra
    scheme, pk1, shares1, _vks1, rng = deploy(t, n, seed)
    _scheme2, pk2, shares2, _vks2, _ = deploy(t, n, seed + 1)
    message = b"homomorphic"
    summed = {
        i: (shares1[i] + shares2[i]).reduce(GROUP.order)
        for i in shares1
    }
    combined_pk_g1 = pk1.g_1 * pk2.g_1
    combined_pk_g2 = pk1.g_2 * pk2.g_2
    from repro.core.keys import PublicKey
    pk_sum = PublicKey(params=scheme.params, g_1=combined_pk_g1,
                       g_2=combined_pk_g2)
    vks_sum = {i: scheme.verification_key_for(summed[i]) for i in summed}
    quorum = list(range(1, t + 2))
    partials = [scheme.share_sign(summed[i], message) for i in quorum]
    signature = scheme.combine(pk_sum, vks_sum, message, partials)
    assert scheme.verify(pk_sum, message, signature)


@given(messages=st.lists(st.binary(min_size=0, max_size=32), min_size=2,
                         max_size=5, unique=True))
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
def test_distinct_messages_distinct_signatures(messages):
    scheme, pk, shares, vks, _rng = deploy(1, 3, 99)
    signatures = set()
    for message in messages:
        signature = scheme.combine(pk, vks, message, [
            scheme.share_sign(shares[i], message) for i in (1, 2)])
        assert scheme.verify(pk, message, signature)
        signatures.add(signature.to_bytes())
    assert len(signatures) == len(messages)
