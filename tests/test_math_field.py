"""Unit and property tests for the prime-field layer."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math.field import Fp, legendre_symbol, sqrt_mod

P_SMALL = 10007                       # prime, = 3 mod 4
P_TONELLI = 10009                     # prime, = 1 mod 4
BN_P = 21888242871839275222246405745257275088696311157297823662689037894645226208583

elements = st.integers(min_value=0, max_value=P_SMALL - 1)


class TestFpBasics:
    def test_reduction_on_construction(self):
        assert Fp(P_SMALL + 5, P_SMALL).value == 5

    def test_negative_values_reduce(self):
        assert Fp(-1, P_SMALL).value == P_SMALL - 1

    def test_invalid_modulus_rejected(self):
        with pytest.raises(ValueError):
            Fp(1, 1)

    def test_immutability(self):
        x = Fp(3, P_SMALL)
        with pytest.raises(AttributeError):
            x.value = 4

    def test_int_coercion_in_ops(self):
        x = Fp(3, P_SMALL)
        assert (x + 1).value == 4
        assert (1 + x).value == 4
        assert (x - 1).value == 2
        assert (1 - x).value == P_SMALL - 2
        assert (x * 2).value == 6
        assert (2 * x).value == 6

    def test_field_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Fp(1, P_SMALL) + Fp(1, P_TONELLI)

    def test_division(self):
        x = Fp(3, P_SMALL)
        assert (x / x).value == 1
        assert (6 / Fp(3, P_SMALL)).value == 2

    def test_zero_inverse_raises(self):
        with pytest.raises(ZeroDivisionError):
            Fp(0, P_SMALL).inverse()

    def test_pow(self):
        x = Fp(2, P_SMALL)
        assert (x ** 10).value == 1024

    def test_equality_with_int(self):
        assert Fp(5, P_SMALL) == 5
        assert Fp(5, P_SMALL) == 5 + P_SMALL

    def test_bool(self):
        assert not Fp(0, P_SMALL)
        assert Fp(1, P_SMALL)

    def test_hash_consistency(self):
        assert hash(Fp(7, P_SMALL)) == hash(Fp(7 + P_SMALL, P_SMALL))

    def test_random_in_range(self, rng):
        for _ in range(20):
            assert 0 <= Fp.random(P_SMALL, rng).value < P_SMALL


class TestFpProperties:
    @given(a=elements, b=elements)
    def test_addition_commutes(self, a, b):
        assert Fp(a, P_SMALL) + Fp(b, P_SMALL) == Fp(b, P_SMALL) + Fp(a, P_SMALL)

    @given(a=elements, b=elements, c=elements)
    def test_distributivity(self, a, b, c):
        x, y, z = Fp(a, P_SMALL), Fp(b, P_SMALL), Fp(c, P_SMALL)
        assert x * (y + z) == x * y + x * z

    @given(a=st.integers(min_value=1, max_value=P_SMALL - 1))
    def test_inverse_is_inverse(self, a):
        x = Fp(a, P_SMALL)
        assert (x * x.inverse()).value == 1

    @given(a=elements)
    def test_negation(self, a):
        x = Fp(a, P_SMALL)
        assert (x + (-x)).value == 0

    @given(a=elements)
    def test_fermat(self, a):
        x = Fp(a, P_SMALL)
        assert x ** P_SMALL == x


class TestSqrtMod:
    @pytest.mark.parametrize("p", [P_SMALL, P_TONELLI])
    def test_roundtrip_squares(self, p, rng):
        for _ in range(25):
            a = rng.randrange(1, p)
            square = a * a % p
            root = sqrt_mod(square, p)
            assert root is not None
            assert root * root % p == square

    @pytest.mark.parametrize("p", [P_SMALL, P_TONELLI])
    def test_non_residue_returns_none(self, p, rng):
        found = 0
        for a in range(2, 200):
            if legendre_symbol(a, p) == -1:
                assert sqrt_mod(a, p) is None
                found += 1
        assert found > 0

    def test_zero(self):
        assert sqrt_mod(0, P_SMALL) == 0

    def test_bn_prime_mod4(self):
        # The BN254 base field uses the fast p % 4 == 3 path.
        assert BN_P % 4 == 3
        root = sqrt_mod(4, BN_P)
        assert root is not None and root * root % BN_P == 4


class TestLegendre:
    def test_zero(self):
        assert legendre_symbol(0, P_SMALL) == 0

    def test_square_is_one(self):
        assert legendre_symbol(4, P_SMALL) == 1

    @given(a=st.integers(min_value=1, max_value=P_SMALL - 1),
           b=st.integers(min_value=1, max_value=P_SMALL - 1))
    @settings(max_examples=50)
    def test_multiplicative(self, a, b):
        assert (legendre_symbol(a, P_SMALL) * legendre_symbol(b, P_SMALL)
                == legendre_symbol(a * b, P_SMALL))
