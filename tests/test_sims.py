"""Tests for the discrete-event simulation harness (``repro.sims``).

Three layers, bottom-up:

* the event kernel — ordering, clock discipline, and the trace digest
  that ``make sim-smoke`` gates on;
* the link model — serialization time, host coupling, regions, loss;
* the simulated network and the scenario catalog — anti-forgery,
  byte accounting, and end-to-end seed determinism on small committees
  (the large-n runs live in ``benchmarks/test_f7_sim.py`` behind the
  ``sim`` marker).
"""

import random

import pytest

from repro.sims.kernel import EventKernel, SimulationError
from repro.sims.links import (
    LAN_PROFILE, WAN_REGION_LATENCY_US, LinkModel, LinkProfile,
    assign_regions, make_link_model,
)
from repro.sims.net import SimNet, SimPeer
from repro.sims.scenarios import (
    run_churn_scenario, run_ci_scenario, run_dkg_scenario,
    run_robust_scenario,
)


# ---------------------------------------------------------------------------
# kernel
# ---------------------------------------------------------------------------

class TestEventKernel:
    def test_events_fire_in_time_order(self):
        kernel = EventKernel(seed=1)
        fired = []
        kernel.schedule_at(30, fired.append, "c")
        kernel.schedule_at(10, fired.append, "a")
        kernel.schedule_at(20, fired.append, "b")
        assert kernel.run() == 3
        assert fired == ["a", "b", "c"]
        assert kernel.now_us == 30

    def test_same_instant_events_fire_in_schedule_order(self):
        kernel = EventKernel(seed=1)
        fired = []
        for tag in ("first", "second", "third"):
            kernel.schedule_at(5, fired.append, tag)
        kernel.run()
        assert fired == ["first", "second", "third"]

    def test_schedule_in_the_past_raises(self):
        kernel = EventKernel(seed=1)
        kernel.schedule_at(10, lambda: None)
        kernel.run()
        with pytest.raises(SimulationError):
            kernel.schedule_at(5, lambda: None)

    def test_schedule_relative_clamps_negative_delay(self):
        kernel = EventKernel(seed=1)
        fired = []
        kernel.schedule(-100, fired.append, "now")
        kernel.run()
        assert fired == ["now"] and kernel.now_us == 0

    def test_run_until_leaves_later_events_pending(self):
        kernel = EventKernel(seed=1)
        fired = []
        kernel.schedule_at(10, fired.append, "early")
        kernel.schedule_at(1000, fired.append, "late")
        assert kernel.run(until_us=100) == 1
        assert fired == ["early"] and kernel.pending == 1
        kernel.run()
        assert fired == ["early", "late"]

    def test_run_max_events_bound(self):
        kernel = EventKernel(seed=1)
        for i in range(5):
            kernel.schedule_at(i, lambda: None)
        assert kernel.run(max_events=2) == 2
        assert kernel.pending == 3

    def test_digest_is_seed_deterministic(self):
        def drive(seed):
            kernel = EventKernel(seed=seed)
            for _ in range(50):
                kernel.schedule(
                    kernel.rng.randrange(1000),
                    lambda k=kernel: k.trace(f"tick {k.rng.random():.6f}"))
            kernel.run()
            return kernel.digest()

        assert drive(7) == drive(7)
        assert drive(7) != drive(8)

    def test_trace_lines_retained_only_on_request(self):
        plain = EventKernel(seed=1)
        assert plain.trace_lines is None
        keeper = EventKernel(seed=1, keep_trace_lines=True)
        keeper.trace("hello")
        assert keeper.trace_lines == ["0 hello"]
        assert keeper.events_traced == 1


# ---------------------------------------------------------------------------
# links
# ---------------------------------------------------------------------------

def _quiet_profile(**overrides):
    base = dict(latency_base_us=1_000, latency_jitter_us=0,
                uplink_bps=8_000_000, downlink_bps=8_000_000, loss=0.0)
    base.update(overrides)
    return LinkProfile(**base)


class TestLinkModel:
    def test_serialization_time_is_exact(self):
        # 1000 bytes at 8 Mb/s is exactly 1000 µs; ceiling division
        # keeps sub-µs transfers at 1 µs, never 0.
        assert LinkModel._tx_us(1000, 8_000_000) == 1000
        assert LinkModel._tx_us(1, 8_000_000_000) == 1

    def test_transfer_pays_uplink_then_latency(self):
        links = LinkModel(_quiet_profile(), random.Random(1))
        done = links.transfer(0, "a", "b", 1000)
        # 1000 µs uplink + 1000 µs base latency + 1000 µs downlink.
        assert done == 3000
        assert links.messages_sent == 1 and links.bytes_sent == 1000

    def test_back_to_back_sends_queue_on_the_uplink(self):
        links = LinkModel(_quiet_profile(), random.Random(1))
        first = links.transfer(0, "a", "b", 1000)
        second = links.transfer(0, "a", "c", 1000)
        # The second message waits for the first's serialization slot.
        assert second == first + 1000

    def test_host_coupling_shares_the_uplink(self):
        links = LinkModel(_quiet_profile(), random.Random(1))
        links.host_of[("reshare", "a")] = "a"
        solo = links.transfer(0, "a", "b", 1000)
        coupled = links.transfer(0, ("reshare", "a"), "b", 1000)
        # Both roles serialize through host "a"'s single uplink.
        assert coupled == solo + 1000

    def test_loss_consumes_uplink_and_lossless_skips_the_draw(self):
        links = LinkModel(_quiet_profile(loss=1.0), random.Random(1))
        assert links.transfer(0, "a", "b", 1000) is None
        assert links.messages_dropped == 1
        # The dropped message still occupied the pipe ...
        delayed = links.transfer(0, "a", "b", 1000, lossless=True)
        assert delayed == 4000  # waited out the lost message's slot
        # ... and lossless transfers always deliver, even at loss=1.
        assert links.messages_dropped == 1

    def test_region_matrix_overrides_base_latency(self):
        regions = assign_regions(["a", "b", "c", "d"])
        assert regions == {"a": 0, "b": 1, "c": 2, "d": 0}
        links = LinkModel(_quiet_profile(), random.Random(1),
                          region_of=regions,
                          region_latency_us=WAN_REGION_LATENCY_US)
        assert links.base_latency_us("a", "d") == 2_000      # same region
        assert links.base_latency_us("a", "c") == 110_000    # us-east->ap
        assert links.base_latency_us("c", "a") == 110_000

    def test_make_link_model(self):
        wan = make_link_model("wan", random.Random(1), ["a", "b"],
                              loss=0.25)
        assert wan.profile.loss == 0.25
        assert wan.region_latency_us is WAN_REGION_LATENCY_US
        lan = make_link_model("lan", random.Random(1), ["a", "b"])
        assert lan.profile == LAN_PROFILE
        with pytest.raises(ValueError):
            make_link_model("carrier-pigeon", random.Random(1), [])


# ---------------------------------------------------------------------------
# net
# ---------------------------------------------------------------------------

class _Recorder(SimPeer):
    def __init__(self, peer_id, net):
        super().__init__(peer_id, net)
        self.got = []

    def receive(self, message):
        self.got.append((message.sender, message.kind, message.payload))


def _lan_net(seed=1):
    kernel = EventKernel(seed=seed)
    links = LinkModel(_quiet_profile(), kernel.rng)
    return kernel, SimNet(kernel, links)


class TestSimNet:
    def test_unicast_delivers_payload_verbatim(self):
        kernel, net = _lan_net()
        alice = _Recorder("alice", net)
        bob = _Recorder("bob", net)
        alice.send("bob", "ping", b"\x01\x02")
        kernel.run()
        assert bob.got == [("alice", "ping", b"\x01\x02")]
        assert net.traffic.messages == 1
        assert net.traffic.bytes_total == 2  # exact length for bytes

    def test_broadcast_reaches_everyone_but_the_sender(self):
        kernel, net = _lan_net()
        peers = [_Recorder(i, net) for i in range(4)]
        peers[0].broadcast("hello", b"x")
        kernel.run()
        assert not peers[0].got
        assert all(p.got == [(0, "hello", b"x")] for p in peers[1:])

    def test_unregistered_sender_is_rejected(self):
        kernel, net = _lan_net()
        _Recorder("alice", net)
        _kernel2, net2 = _lan_net()
        stranger = _Recorder("mallory", net2)
        # A peer object not registered with *this* net cannot send
        # through it, even claiming an id that exists nowhere.
        with pytest.raises(SimulationError, match="unregistered sender"):
            net.send(stranger, "alice", "forged", b"x")

    def test_forged_peer_object_is_rejected(self):
        kernel, net = _lan_net()
        alice = _Recorder("alice", net)
        _Recorder("bob", net)

        class Imposter:
            peer_id = "bob"

        # Same claimed id, different object: the authenticated-channel
        # check compares identity, not the id string.
        with pytest.raises(SimulationError, match="unregistered sender"):
            net.send(Imposter(), "alice", "forged", b"x")
        assert not alice.got

    def test_duplicate_peer_id_is_rejected(self):
        kernel, net = _lan_net()
        _Recorder("alice", net)
        with pytest.raises(SimulationError, match="duplicate peer id"):
            _Recorder("alice", net)

    def test_send_to_unknown_recipient_is_rejected(self):
        kernel, net = _lan_net()
        alice = _Recorder("alice", net)
        with pytest.raises(SimulationError, match="no peer"):
            alice.send("nobody", "ping", b"x")

    def test_drops_are_counted_and_traced(self):
        kernel = EventKernel(seed=1)
        links = LinkModel(_quiet_profile(loss=1.0), kernel.rng)
        net = SimNet(kernel, links)
        alice = _Recorder("alice", net)
        bob = _Recorder("bob", net)
        alice.send("bob", "ping", b"x")
        kernel.run()
        assert net.drops == 1 and not bob.got
        # Reliable messages bypass the loss model entirely.
        net.send(alice, "bob", "ping", b"x", reliable=True)
        kernel.run()
        assert bob.got and net.drops == 1


# ---------------------------------------------------------------------------
# scenarios (small n — the big ones are `sim`-marked benchmarks)
# ---------------------------------------------------------------------------

class TestScenarios:
    def test_dkg_small_committee_agrees_and_is_deterministic(self):
        row = run_dkg_scenario(seed=5, n=8, t=2, loss=0.05)
        again = run_dkg_scenario(seed=5, n=8, t=2, loss=0.05)
        assert row == again
        assert row["qualified"] >= 6  # n - t at the very least
        assert row["digest"] != run_dkg_scenario(
            seed=6, n=8, t=2, loss=0.05)["digest"]

    def test_dkg_lan_profile_runs(self):
        row = run_dkg_scenario(seed=5, n=6, t=1, profile="lan")
        assert row["qualified"] == 6 and row["drops"] == 0

    def test_robust_scenario_signs_through_adversity(self):
        row = run_robust_scenario(
            seed=9, n=10, t=2, requests=10, loss=0.10, stragglers=1,
            forgers=1, mean_interval_us=30_000)
        # Every request must settle despite loss + a straggler + a
        # forger, and the forger must actually have been flagged.
        assert row["flagged"] >= 1
        assert row["drops"] > 0
        assert row == run_robust_scenario(
            seed=9, n=10, t=2, requests=10, loss=0.10, stragglers=1,
            forgers=1, mean_interval_us=30_000)

    def test_churn_scenario_crosses_the_epoch(self):
        row = run_churn_scenario(seed=3, n=8, t=2, requests=16,
                                 loss=0.01, mean_interval_us=200_000)
        assert row["epoch0_signed"] > 0 and row["epoch1_signed"] > 0
        assert row["epoch0_signed"] + row["epoch1_signed"] == 16
        assert 0.0 < row["remap_pct"] < 100.0

    def test_ci_scenario_digest_is_reproducible(self, sim_seed):
        first = run_ci_scenario(sim_seed)
        second = run_ci_scenario(sim_seed)
        assert first["digest"] == second["digest"]
        assert first["dkg"]["qualified"] >= 60
