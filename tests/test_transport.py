"""Tests for the TCP worker transport (framing, handshake, the remote
worker pool, crash recovery, the standalone worker entry point).

Most tests run an in-process :class:`WorkerServer` on the loopback —
real sockets, same event loop — on the toy backend.  The crash-recovery
test mirrors the ``WorkerCrashFault`` sentinel test of the process tier
with actual subprocess workers; frame-rejection tests run on both
backends (the wire payloads are backend-specific even though the frame
header is not).
"""

import asyncio
import random

import pytest

from repro.core.scheme import ServiceHandle
from repro.errors import SerializationError
from repro.serialization import (
    FRAME_HEADER_BYTES, FRAME_KIND_ERROR, FRAME_KIND_HELLO, FRAME_KIND_JOB,
    FRAME_KIND_OUTCOME, FRAME_MAGIC, FRAME_VERSION, MAX_FRAME_BYTES,
    PartialSignJob, SignRequestJob, SignWindowJob, WireCodec,
    decode_frame_header, decode_hello, encode_frame, encode_hello,
    encode_service_context, hello_mac, service_context_digest,
)
from repro.service import (
    HandshakeError, RemoteJobError, RemoteWorkerPool, ServiceConfig,
    SigningService, TransportError, WorkerServer,
)
from repro.service.transport import (
    parse_address, read_frame, start_worker_process, write_frame,
)


@pytest.fixture
def handle(toy_group):
    return ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(11))


def run(coroutine):
    return asyncio.run(coroutine)


# ---------------------------------------------------------------------------
# Frame encoding
# ---------------------------------------------------------------------------

class TestFrameLayer:
    def test_frame_round_trip(self):
        frame = encode_frame(FRAME_KIND_JOB, b"payload bytes",
                             request_id=7042)
        kind, request_id, length = decode_frame_header(
            frame[:FRAME_HEADER_BYTES])
        assert kind == FRAME_KIND_JOB
        assert request_id == 7042
        assert length == len(b"payload bytes")
        assert frame[FRAME_HEADER_BYTES:] == b"payload bytes"

    def test_request_id_defaults_to_zero_and_is_bounded(self):
        frame = encode_frame(FRAME_KIND_HELLO, b"")
        assert decode_frame_header(frame[:FRAME_HEADER_BYTES])[1] == 0
        top = (1 << 64) - 1
        frame = encode_frame(FRAME_KIND_JOB, b"x", request_id=top)
        assert decode_frame_header(frame[:FRAME_HEADER_BYTES])[1] == top
        with pytest.raises(SerializationError):
            encode_frame(FRAME_KIND_JOB, b"x", request_id=1 << 64)
        with pytest.raises(SerializationError):
            encode_frame(FRAME_KIND_JOB, b"x", request_id=-1)

    def test_header_rejects_bad_magic(self):
        frame = bytearray(encode_frame(FRAME_KIND_JOB, b"x"))
        frame[:4] = b"EVIL"
        with pytest.raises(SerializationError, match="magic"):
            decode_frame_header(bytes(frame[:FRAME_HEADER_BYTES]))

    def test_header_rejects_future_version(self):
        frame = bytearray(encode_frame(FRAME_KIND_JOB, b"x"))
        frame[4] = FRAME_VERSION + 1
        with pytest.raises(SerializationError, match="version"):
            decode_frame_header(bytes(frame[:FRAME_HEADER_BYTES]))

    def test_header_rejects_unknown_kind(self):
        frame = bytearray(encode_frame(FRAME_KIND_JOB, b"x"))
        frame[5] = ord("?")
        with pytest.raises(SerializationError, match="kind"):
            decode_frame_header(bytes(frame[:FRAME_HEADER_BYTES]))

    def test_header_rejects_oversized_length(self):
        header = FRAME_MAGIC + bytes([FRAME_VERSION]) + FRAME_KIND_JOB + \
            (0).to_bytes(8, "big") + (MAX_FRAME_BYTES + 1).to_bytes(4, "big")
        with pytest.raises(SerializationError, match="cap"):
            decode_frame_header(header)

    def test_header_rejects_truncation(self):
        frame = encode_frame(FRAME_KIND_JOB, b"x")
        with pytest.raises(SerializationError, match="truncated"):
            decode_frame_header(frame[:FRAME_HEADER_BYTES - 1])

    def test_encode_rejects_unknown_kind_and_oversize(self):
        with pytest.raises(SerializationError):
            encode_frame(b"?", b"x")
        with pytest.raises(SerializationError):
            encode_frame(FRAME_KIND_JOB, b"\x00" * (MAX_FRAME_BYTES + 1))

    def test_hello_round_trip_and_digest(self, handle):
        blob = encode_service_context(handle)
        digest = service_context_digest(blob)
        assert len(digest) == 32
        name, parsed, mac = decode_hello(encode_hello("toy", digest))
        assert (name, parsed, mac) == ("toy", digest, b"")
        authenticator = hello_mac(b"secret", digest)
        assert len(authenticator) == 32
        name, parsed, mac = decode_hello(
            encode_hello("toy", digest, mac=authenticator))
        assert mac == authenticator
        with pytest.raises(SerializationError):
            decode_hello(encode_hello("toy", digest) + b"extra")
        with pytest.raises(SerializationError):
            encode_hello("toy", b"short")
        with pytest.raises(SerializationError):
            encode_hello("toy", digest, mac=b"short-mac")

    def test_parse_address(self):
        assert parse_address("worker-3.local:9000") == \
            ("worker-3.local", 9000)
        assert parse_address("::1:9000") == ("::1", 9000)
        assert parse_address("[::1]:9000") == ("::1", 9000)
        for bad in ("no-port", "host:", ":8000", "[]:8000", "host:0",
                    "host:99999", "host:abc"):
            with pytest.raises(ValueError):
                parse_address(bad)


# ---------------------------------------------------------------------------
# Truncated wire payloads are rejected on both backends
# ---------------------------------------------------------------------------

class TestTruncatedPayloadRejection:
    """A frame can be intact while its payload is truncated or garbled;
    the codec must reject it (never return a short window) on both
    backends — their element widths differ, so both deserve the check."""

    @pytest.fixture(params=[
        "toy", pytest.param("bn254", marks=pytest.mark.bn254)])
    def codec_handle(self, request, toy_group, bn254_group):
        group = toy_group if request.param == "toy" else bn254_group
        handle = ServiceHandle.dealer(group, 1, 3, rng=random.Random(7))
        return WireCodec(group), handle

    def test_truncated_job_and_outcome_rejected(self, codec_handle):
        codec, handle = codec_handle
        job_blob = codec.encode_job(SignWindowJob(
            shard_id=0, messages=(b"a", b"bb"),
            quorum=tuple(handle.quorum())))
        outcome = handle.process_sign_window([b"a"])
        outcome_blob = codec.encode_outcome(outcome)
        for blob, decode in ((job_blob, codec.decode_job),
                             (outcome_blob, codec.decode_outcome)):
            with pytest.raises(SerializationError):
                decode(blob[:-1])
            with pytest.raises(SerializationError):
                decode(blob + b"\x00")

    def test_server_reports_bad_job_payload_without_dying(self,
                                                          codec_handle):
        """A truncated job inside a valid frame gets an E frame back and
        the connection keeps serving (the stream is still in sync)."""
        codec, handle = codec_handle
        good_job = codec.encode_job(SignWindowJob(
            shard_id=0, messages=(b"doc",), quorum=tuple(handle.quorum())))

        async def scenario():
            server = await WorkerServer(handle).start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                hello = encode_hello(
                    handle.scheme.group.name,
                    service_context_digest(encode_service_context(handle)))
                write_frame(writer, FRAME_KIND_HELLO, hello)
                await writer.drain()
                kind, _, _ = await read_frame(reader)
                assert kind == FRAME_KIND_HELLO
                write_frame(writer, FRAME_KIND_JOB, good_job[:-1],
                            request_id=1)
                await writer.drain()
                error_kind, error_id, error_payload = \
                    await read_frame(reader)
                write_frame(writer, FRAME_KIND_JOB, good_job,
                            request_id=2)
                await writer.drain()
                ok_kind, ok_id, ok_payload = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()
            return (error_kind, error_id, error_payload,
                    ok_kind, ok_id, ok_payload)

        (error_kind, error_id, error_payload,
         ok_kind, ok_id, ok_payload) = run(scenario())
        assert error_kind == FRAME_KIND_ERROR
        assert error_id == 1                # answered under the job's id
        assert b"SerializationError" in error_payload
        assert ok_kind == FRAME_KIND_OUTCOME
        assert ok_id == 2
        outcome = codec.decode_outcome(ok_payload)
        assert handle.verify(b"doc", outcome.signatures[0])

    def test_truncated_header_closes_cleanly_and_server_survives(
            self, codec_handle):
        """A connection that dies mid-header (10 of 18 bytes, then EOF)
        is dropped without an error frame — there is no id to answer
        under — and the server keeps accepting fresh connections."""
        codec, handle = codec_handle
        good_job = codec.encode_job(SignWindowJob(
            shard_id=0, messages=(b"doc",), quorum=tuple(handle.quorum())))
        hello = encode_hello(
            handle.scheme.group.name,
            service_context_digest(encode_service_context(handle)))

        async def scenario():
            server = await WorkerServer(handle).start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                write_frame(writer, FRAME_KIND_HELLO, hello)
                await writer.drain()
                kind, _, _ = await read_frame(reader)
                assert kind == FRAME_KIND_HELLO
                partial = encode_frame(FRAME_KIND_JOB, good_job,
                                       request_id=3)[:10]
                writer.write(partial)
                await writer.drain()
                writer.close()
                await writer.wait_closed()
                # The server must still serve a fresh connection.
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                write_frame(writer, FRAME_KIND_HELLO, hello)
                await writer.drain()
                kind, _, _ = await read_frame(reader)
                assert kind == FRAME_KIND_HELLO
                write_frame(writer, FRAME_KIND_JOB, good_job,
                            request_id=4)
                await writer.drain()
                kind, request_id, payload = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()
            return kind, request_id, payload

        kind, request_id, payload = run(scenario())
        assert kind == FRAME_KIND_OUTCOME
        assert request_id == 4
        outcome = codec.decode_outcome(payload)
        assert handle.verify(b"doc", outcome.signatures[0])


# ---------------------------------------------------------------------------
# Server protocol violations
# ---------------------------------------------------------------------------

class TestWorkerServerProtocol:
    def test_garbage_frame_refused_and_connection_closed(self, handle):
        async def scenario():
            server = await WorkerServer(handle).start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(b"GET / HTTP/1.1\r\nHost: worker\r\n\r\n")
                await writer.drain()
                kind, _, payload = await read_frame(reader)
                trailing = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()
            return kind, payload, trailing

        kind, payload, trailing = run(scenario())
        assert kind == FRAME_KIND_ERROR
        assert b"magic" in payload
        assert trailing == b""     # server hung up after refusing

    def test_job_before_hello_refused(self, handle):
        async def scenario():
            server = await WorkerServer(handle).start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                write_frame(writer, FRAME_KIND_JOB, b"too eager")
                await writer.drain()
                kind, _, payload = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()
            return kind, payload

        kind, payload = run(scenario())
        assert kind == FRAME_KIND_ERROR
        assert b"HELLO" in payload

    def test_context_mismatch_refused(self, handle, toy_group):
        other = ServiceHandle.dealer(toy_group, 2, 5,
                                     rng=random.Random(99))

        async def scenario():
            server = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(other, [server.address],
                                    dial_deadline_s=2.0)
            pool.start()
            try:
                with pytest.raises(HandshakeError, match="context"):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"x",
                        signers=tuple(other.quorum())))
            finally:
                await pool.aclose()
                await server.aclose()

        run(scenario())


# ---------------------------------------------------------------------------
# The remote worker pool end to end (in-process server, real sockets)
# ---------------------------------------------------------------------------

class TestRemoteWorkerPool:
    def test_service_sign_and_verify_through_tcp(self, handle):
        """remote_workers=[...] serves the same contract as the other
        two tiers: every signature produced across the wire verifies in
        the dispatcher, with jobs accounted in the stats."""
        async def scenario():
            servers = [await WorkerServer(handle).start()
                       for _ in range(2)]
            config = ServiceConfig(
                num_shards=2, max_batch=4, max_wait_ms=10.0,
                remote_workers=[server.address for server in servers])
            try:
                async with SigningService(handle, config) as service:
                    results = await asyncio.gather(*(
                        service.sign(b"tcp svc %d" % i) for i in range(12)))
                    verdicts = await asyncio.gather(*(
                        service.verify(result.message, result.signature)
                        for result in results))
            finally:
                for server in servers:
                    await server.aclose()
            return service, results, verdicts, servers

        service, results, verdicts, servers = run(scenario())
        assert all(handle.verify(r.message, r.signature) for r in results)
        assert all(v.valid for v in verdicts)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers is not None
        assert stats.workers.workers == 2
        assert stats.workers.jobs > 0
        assert stats.workers.crashes == 0
        # Both endpoints actually served (round-robin dispatch).
        assert all(server.jobs_served > 0 for server in servers)

    def test_partial_sign_job_over_tcp_combines_in_dispatcher(self,
                                                              handle):
        """The split signer/combiner deployment: partials produced on a
        remote worker, shipped back over the wire, combined locally."""
        async def scenario():
            server = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(handle, [server.address])
            pool.start()
            try:
                outcome = await pool.run_job(PartialSignJob(
                    shard_id=0, message=b"remote partials",
                    signers=tuple(handle.quorum())))
            finally:
                await pool.aclose()
                await server.aclose()
            return outcome

        outcome = run(scenario())
        assert [p.index for p in outcome.partials] == handle.quorum()
        signature = handle.scheme.combine(
            handle.public_key, handle.verification_keys,
            b"remote partials", list(outcome.partials))
        assert handle.verify(b"remote partials", signature)

    def test_unreachable_endpoints_raise_typed_error(self, handle):
        async def scenario():
            # Port 1 on loopback: nothing listens there.
            pool = RemoteWorkerPool(handle, ["127.0.0.1:1"],
                                    dial_deadline_s=0.3,
                                    backoff_initial_s=0.01)
            pool.start()
            try:
                with pytest.raises(TransportError, match="reachable"):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"x",
                        signers=tuple(handle.quorum())))
            finally:
                await pool.aclose()

        run(scenario())

    def test_pool_not_running_raises(self, handle):
        async def scenario():
            pool = RemoteWorkerPool(handle, ["127.0.0.1:1"])
            with pytest.raises(TransportError, match="not running"):
                await pool.run_job(PartialSignJob(
                    shard_id=0, message=b"x", signers=(1,)))

        run(scenario())

    def test_pool_rejects_bad_configuration(self, handle):
        with pytest.raises(ValueError):
            RemoteWorkerPool(handle, [])
        with pytest.raises(ValueError):
            RemoteWorkerPool(handle, ["host:port-less"])

        # workers and remote_workers are mutually exclusive.
        async def scenario():
            config = ServiceConfig(workers=2,
                                   remote_workers=["127.0.0.1:1"])
            service = SigningService(handle, config)
            with pytest.raises(ValueError, match="not both"):
                await service.start()

        run(scenario())


# ---------------------------------------------------------------------------
# Crash recovery with real worker processes
# ---------------------------------------------------------------------------

class TestRemoteWorkerCrashRecovery:
    def test_worker_killed_mid_window_recovered_by_resubmission(
            self, handle, tmp_path):
        """Mirror of the process tier's WorkerCrashFault sentinel test:
        one of two subprocess workers dies hard (os._exit) on the first
        partial it signs; the pool must detect the dropped connection,
        resubmit the window to the surviving worker, and every request
        must still complete with a valid signature."""
        context_path = tmp_path / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))
        sentinel = tmp_path / "crashed.sentinel"
        crasher, crasher_address = start_worker_process(
            context_path, crash_sentinel=sentinel)
        survivor, survivor_address = start_worker_process(context_path)

        async def scenario():
            config = ServiceConfig(
                num_shards=1, max_batch=8, max_wait_ms=50.0,
                remote_workers=[crasher_address, survivor_address])
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"crash %d" % i) for i in range(8)))
            return service, results

        try:
            service, results = run(scenario())
        finally:
            crasher.wait(timeout=10)
            survivor.terminate()
            survivor.wait(timeout=10)
        assert sentinel.exists()
        assert len(results) == 8
        for result in results:
            assert handle.verify(result.message, result.signature)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers.crashes >= 1
        assert stats.workers.resubmissions >= 1

    def test_killed_worker_respawned_on_same_port_is_reconnected(
            self, handle, tmp_path):
        """The single-worker deployment under a supervisor: the only
        worker dies mid-window, a replacement comes up on the same
        port, and the pool's dial-with-backoff loop finds it and
        resubmits — no request is lost."""
        context_path = tmp_path / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))
        sentinel = tmp_path / "crashed.sentinel"
        process, address = start_worker_process(
            context_path, crash_sentinel=sentinel)
        port = parse_address(address)[1]
        replacements = []

        async def respawn_when_dead():
            loop = asyncio.get_running_loop()
            while process.poll() is None:
                await asyncio.sleep(0.05)
            replacement, _ = await loop.run_in_executor(
                None, lambda: start_worker_process(
                    context_path, port=port, crash_sentinel=sentinel))
            replacements.append(replacement)

        async def scenario():
            config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=50.0,
                                   remote_workers=[address])
            async with SigningService(handle, config) as service:
                watcher = asyncio.ensure_future(respawn_when_dead())
                results = await asyncio.gather(*(
                    service.sign(b"respawn %d" % i) for i in range(8)))
                await watcher
            return service, results

        try:
            service, results = run(scenario())
        finally:
            process.wait(timeout=10)
            for replacement in replacements:
                replacement.terminate()
                replacement.wait(timeout=10)
        assert sentinel.exists()
        assert len(results) == 8
        for result in results:
            assert handle.verify(result.message, result.signature)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers.crashes >= 1
        assert stats.workers.resubmissions >= 1
        assert stats.workers.reconnects >= 1


# ---------------------------------------------------------------------------
# The entry point
# ---------------------------------------------------------------------------

class TestRemoteWorkerCli:
    def test_write_context_mode_round_trips(self, tmp_path):
        from repro.serialization import decode_service_context
        from repro.service.remote_worker import main

        context_path = tmp_path / "ctx.bin"
        assert main(["--write-context", str(context_path),
                     "--backend", "toy", "--t", "1", "--n", "3",
                     "--seed", "5"]) == 0
        rebuilt = decode_service_context(context_path.read_bytes())
        assert rebuilt.scheme.params.t == 1
        assert rebuilt.scheme.params.n == 3
        signature = rebuilt.sign(b"provisioned")
        assert rebuilt.verify(b"provisioned", signature)

    def test_missing_context_file_is_a_clean_error(self, tmp_path):
        from repro.service.remote_worker import main

        assert main(["--context", str(tmp_path / "absent.bin")]) == 2


# ---------------------------------------------------------------------------
# Hung-worker detection (stalled, not crashed)
# ---------------------------------------------------------------------------

async def start_stall_server(handle):
    """A worker that completes the HELLO and then never answers a job —
    hung, not crashed: the connection stays open, so before the per-job
    timeout existed this blocked its window forever (only EOFError /
    OSError triggered resubmission)."""
    hello = encode_hello(
        handle.scheme.group.name,
        service_context_digest(encode_service_context(handle)))

    async def serve(reader, writer):
        try:
            kind, _, _ = await read_frame(reader)
            if kind != FRAME_KIND_HELLO:
                return
            write_frame(writer, FRAME_KIND_HELLO, hello)
            await writer.drain()
            while await reader.read(65536):
                pass                    # swallow jobs, answer nothing
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(serve, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    return server, f"127.0.0.1:{port}"


class TestHungWorkerDetection:
    def test_stalled_worker_times_out_and_job_is_resubmitted(self, handle):
        """The acceptance scenario: a stalled remote worker is detected
        by the per-job read timeout, treated like a dropped connection
        (timeout counted, connection discarded), and its job completes
        on the healthy endpoint."""
        async def scenario():
            stall, stall_address = await start_stall_server(handle)
            worker = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(
                handle, [stall_address, worker.address],
                job_timeout_s=0.3, backoff_initial_s=0.01)
            pool.start()
            try:
                outcomes = []
                for i in range(4):
                    outcomes.append(await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"hung %d" % i,
                        signers=tuple(handle.quorum()))))
            finally:
                await pool.aclose()
                stall.close()
                await stall.wait_closed()
                await worker.aclose()
            return pool, outcomes

        pool, outcomes = run(scenario())
        assert len(outcomes) == 4
        for i, outcome in enumerate(outcomes):
            signature = handle.scheme.combine(
                handle.public_key, handle.verification_keys,
                b"hung %d" % i, list(outcome.partials))
            assert handle.verify(b"hung %d" % i, signature)
        assert pool.stats.timeouts >= 1
        assert pool.stats.resubmissions >= 1
        assert pool.stats.jobs == 4

    def test_service_config_carries_the_job_timeout(self, handle):
        """remote_job_timeout_s reaches the pool, and a service backed
        by a stalled + a healthy worker completes every request."""
        async def scenario():
            stall, stall_address = await start_stall_server(handle)
            worker = await WorkerServer(handle).start()
            config = ServiceConfig(
                num_shards=1, max_batch=4, max_wait_ms=10.0,
                remote_workers=[stall_address, worker.address],
                remote_job_timeout_s=0.3)
            try:
                async with SigningService(handle, config) as service:
                    assert service._pool.worker_pool.job_timeout_s == 0.3
                    results = await asyncio.gather(*(
                        service.sign(b"svc hung %d" % i) for i in range(6)))
            finally:
                stall.close()
                await stall.wait_closed()
                await worker.aclose()
            return service, results

        service, results = run(scenario())
        assert all(handle.verify(r.message, r.signature) for r in results)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers.timeouts >= 1


# ---------------------------------------------------------------------------
# The circuit breaker
# ---------------------------------------------------------------------------

class TestCircuitBreaker:
    def test_chronically_hung_endpoint_is_quarantined(self, handle):
        """With a cooldown longer than the test, one trip takes the
        stalled endpoint out of the rotation: exactly one job pays the
        timeout, the rest go straight to the healthy worker."""
        async def scenario():
            stall, stall_address = await start_stall_server(handle)
            worker = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(
                handle, [stall_address, worker.address],
                job_timeout_s=0.2, breaker_threshold=1,
                breaker_cooldown_s=60.0, backoff_initial_s=0.01)
            pool.start()
            try:
                for i in range(5):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"breaker %d" % i,
                        signers=tuple(handle.quorum())))
            finally:
                await pool.aclose()
                stall.close()
                await stall.wait_closed()
                await worker.aclose()
            return pool

        pool = run(scenario())
        assert pool.stats.breaker_trips == 1
        assert pool.stats.timeouts == 1     # only the tripping job paid
        assert pool.stats.jobs == 5

    def test_dead_endpoint_trips_breaker_on_dial_failures(self, handle):
        """Repeated refused dials count against the breaker too — a
        dead endpoint stops being re-dialed on every round-robin pass."""
        async def scenario():
            worker = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(
                handle, ["127.0.0.1:1", worker.address],
                breaker_threshold=2, breaker_cooldown_s=60.0,
                backoff_initial_s=0.01)
            pool.start()
            try:
                for i in range(6):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"dead %d" % i,
                        signers=tuple(handle.quorum())))
            finally:
                await pool.aclose()
                await worker.aclose()
            return pool

        pool = run(scenario())
        assert pool.stats.breaker_trips >= 1
        assert pool.stats.jobs == 6
        dead = pool._endpoints[0]
        assert dead.open_until > 0.0        # quarantined, not retried

    def test_breaker_reopens_after_cooldown(self, handle):
        """Half-open: after the cooldown the endpoint is probed again
        and a recovered worker rejoins the rotation."""
        async def scenario():
            worker = await WorkerServer(handle).start()
            # Reserve a port, then release it so the first dials fail.
            placeholder = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0)
            port = placeholder.sockets[0].getsockname()[1]
            placeholder.close()
            await placeholder.wait_closed()
            flaky_address = f"127.0.0.1:{port}"
            pool = RemoteWorkerPool(
                handle, [flaky_address, worker.address],
                breaker_threshold=1, breaker_cooldown_s=0.05,
                backoff_initial_s=0.01)
            pool.start()
            try:
                await pool.run_job(PartialSignJob(
                    shard_id=0, message=b"trip", signers=(1,)))
                assert pool.stats.breaker_trips >= 1
                # The worker comes back on the reserved port.
                late = await WorkerServer(
                    handle, port=port).start()
                await asyncio.sleep(0.1)    # let the cooldown lapse
                for i in range(4):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"again %d" % i,
                        signers=(1,)))
                served_late = late.jobs_served
                await late.aclose()
            finally:
                await pool.aclose()
                await worker.aclose()
            return pool, served_late

        pool, served_late = run(scenario())
        assert served_late >= 1             # rejoined the rotation
        assert pool._endpoints[0].open_until == 0.0


# ---------------------------------------------------------------------------
# Misprovisioned-endpoint accounting
# ---------------------------------------------------------------------------

class TestMisprovisionedEndpoints:
    def test_all_endpoints_mismatched_fails_fast(self, handle, toy_group):
        """Every endpoint refusing the HELLO is a configuration error:
        the pool raises after one round-robin pass instead of burning
        dial_deadline_s re-dialing hopeless endpoints."""
        other = ServiceHandle.dealer(toy_group, 2, 5,
                                     rng=random.Random(99))

        async def scenario():
            servers = [await WorkerServer(handle).start()
                       for _ in range(2)]
            pool = RemoteWorkerPool(
                other, [server.address for server in servers],
                dial_deadline_s=60.0)
            pool.start()
            loop = asyncio.get_running_loop()
            started = loop.time()
            try:
                with pytest.raises(HandshakeError,
                                   match="misprovisioned"):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"x",
                        signers=tuple(other.quorum())))
            finally:
                elapsed = loop.time() - started
                await pool.aclose()
                for server in servers:
                    await server.aclose()
            return elapsed

        elapsed = run(scenario())
        assert elapsed < 5.0                # nowhere near dial_deadline_s

    def test_mismatched_endpoint_is_sticky_quarantined(self, handle,
                                                       toy_group):
        """A mixed fleet keeps serving: the mismatched endpoint is
        quarantined for the pool's lifetime and every job lands on the
        correctly provisioned worker."""
        other = ServiceHandle.dealer(toy_group, 2, 5,
                                     rng=random.Random(99))

        async def scenario():
            wrong = await WorkerServer(other).start()
            right = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(handle,
                                    [wrong.address, right.address])
            pool.start()
            try:
                for i in range(4):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"mixed %d" % i,
                        signers=tuple(handle.quorum())))
            finally:
                await pool.aclose()
                served = (wrong.jobs_served, right.jobs_served)
                await wrong.aclose()
                await right.aclose()
            return pool, served

        pool, (wrong_served, right_served) = run(scenario())
        assert wrong_served == 0
        assert right_served == 4
        assert pool._endpoints[0].misprovisioned is not None
        assert "context" in pool._endpoints[0].misprovisioned


# ---------------------------------------------------------------------------
# Wire format v2: version negotiation across releases
# ---------------------------------------------------------------------------

class TestVersionNegotiation:
    """Old and new peers must refuse each other with a typed error, not
    a desynchronised stream.  The version byte sits at the same offset
    in every release of the header, so each side can tell a versioned
    peer from garbage."""

    def test_v1_client_refused_by_v2_server(self, handle):
        """A pre-pipelining client (10-byte header: magic, version,
        kind, u32 length — no request id) gets a typed refusal."""
        old_payload = b"\x00" * 32      # enough bytes to fill our header
        old_frame = FRAME_MAGIC + bytes([1]) + FRAME_KIND_HELLO + \
            len(old_payload).to_bytes(4, "big") + old_payload

        async def scenario():
            server = await WorkerServer(handle).start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                writer.write(old_frame)
                await writer.drain()
                kind, _, payload = await read_frame(reader)
                trailing = await reader.read()
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()
            return kind, payload, trailing

        kind, payload, trailing = run(scenario())
        assert kind == FRAME_KIND_ERROR
        assert b"version" in payload and b"upgrade" in payload
        assert trailing == b""          # server hung up after refusing

    def test_v2_pool_refuses_v1_server(self, handle):
        """Dialing a worker from the previous release raises a typed
        HandshakeError (misprovisioning, never retried) instead of
        misparsing the old header."""
        async def serve_v1(reader, writer):
            await reader.read(1024)     # swallow whatever the pool says
            payload = b"\x00" * 32
            writer.write(FRAME_MAGIC + bytes([1]) + FRAME_KIND_HELLO +
                         len(payload).to_bytes(4, "big") + payload)
            await writer.drain()

        async def scenario():
            server = await asyncio.start_server(
                serve_v1, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pool = RemoteWorkerPool(handle, [f"127.0.0.1:{port}"],
                                    dial_deadline_s=5.0)
            pool.start()
            try:
                with pytest.raises(HandshakeError):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"x",
                        signers=tuple(handle.quorum())))
                refusal = pool._endpoints[0].misprovisioned
            finally:
                await pool.aclose()
                server.close()
                await server.wait_closed()
            return refusal

        refusal = run(scenario())
        assert refusal is not None
        assert "version" in refusal and "upgrade" in refusal


# ---------------------------------------------------------------------------
# Pre-shared-key handshake authentication
# ---------------------------------------------------------------------------

class TestPresharedKey:
    def test_matching_psk_serves_jobs(self, handle):
        async def scenario():
            server = await WorkerServer(handle, psk=b"wire-psk").start()
            pool = RemoteWorkerPool(handle, [server.address],
                                    psk="wire-psk")
            pool.start()
            try:
                outcome = await pool.run_job(PartialSignJob(
                    shard_id=0, message=b"authenticated",
                    signers=tuple(handle.quorum())))
            finally:
                await pool.aclose()
                await server.aclose()
            return outcome

        outcome = run(scenario())
        signature = handle.scheme.combine(
            handle.public_key, handle.verification_keys,
            b"authenticated", list(outcome.partials))
        assert handle.verify(b"authenticated", signature)

    @pytest.mark.parametrize("server_psk,pool_psk", [
        (b"worker-only", None),         # worker requires, pool has none
        (None, "pool-only"),            # pool offers, worker has none
        (b"alpha", "bravo"),            # both configured, keys differ
    ])
    def test_psk_mismatch_is_typed_misprovisioning(self, handle,
                                                   server_psk, pool_psk):
        async def scenario():
            server = await WorkerServer(handle, psk=server_psk).start()
            pool = RemoteWorkerPool(handle, [server.address],
                                    psk=pool_psk, dial_deadline_s=5.0)
            pool.start()
            try:
                with pytest.raises(HandshakeError):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"x",
                        signers=tuple(handle.quorum())))
                refusal = pool._endpoints[0].misprovisioned
            finally:
                await pool.aclose()
                await server.aclose()
            return refusal

        refusal = run(scenario())
        assert refusal is not None
        assert "PSK" in refusal or "pre-shared" in refusal

    def test_pool_rejects_forged_server_authenticator(self, handle):
        """The check is mutual: a server that accepts our HELLO but
        answers with a wrong authenticator is refused by the pool."""
        digest = service_context_digest(encode_service_context(handle))
        group_name = handle.scheme.group.name

        async def serve_forged(reader, writer):
            kind, _, _ = await read_frame(reader)
            assert kind == FRAME_KIND_HELLO
            write_frame(writer, FRAME_KIND_HELLO, encode_hello(
                group_name, digest, mac=hello_mac(b"not-the-psk",
                                                  digest)))
            await writer.drain()
            await reader.read(65536)

        async def scenario():
            server = await asyncio.start_server(
                serve_forged, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pool = RemoteWorkerPool(handle, [f"127.0.0.1:{port}"],
                                    psk="the-real-psk",
                                    dial_deadline_s=5.0)
            pool.start()
            try:
                with pytest.raises(HandshakeError):
                    await pool.run_job(PartialSignJob(
                        shard_id=0, message=b"x",
                        signers=tuple(handle.quorum())))
                refusal = pool._endpoints[0].misprovisioned
            finally:
                await pool.aclose()
                server.close()
                await server.wait_closed()
            return refusal

        refusal = run(scenario())
        assert refusal is not None
        assert "PSK" in refusal


# ---------------------------------------------------------------------------
# Pipelined request-id framing
# ---------------------------------------------------------------------------

class TestPipelinedFraming:
    def test_out_of_order_completion_resolves_by_request_id(self, handle):
        """A worker may answer the second in-flight job first; the pool
        must route each outcome to its own caller by request id, not by
        arrival order."""
        from repro.service.workers import execute_job

        codec = WireCodec(handle.scheme.group)
        hello = encode_hello(
            handle.scheme.group.name,
            service_context_digest(encode_service_context(handle)))

        async def serve_reversed(reader, writer):
            kind, _, _ = await read_frame(reader)
            assert kind == FRAME_KIND_HELLO
            write_frame(writer, FRAME_KIND_HELLO, hello)
            await writer.drain()
            jobs = []
            for _ in range(2):
                kind, request_id, payload = await read_frame(reader)
                assert kind == FRAME_KIND_JOB
                jobs.append((request_id, codec.decode_job(payload)))
            assert len({request_id for request_id, _ in jobs}) == 2
            for request_id, job in reversed(jobs):
                write_frame(writer, FRAME_KIND_OUTCOME,
                            codec.encode_outcome(execute_job(handle, job)),
                            request_id=request_id)
            await writer.drain()
            await reader.read(65536)

        async def scenario():
            server = await asyncio.start_server(
                serve_reversed, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            pool = RemoteWorkerPool(handle, [f"127.0.0.1:{port}"],
                                    pipeline_depth=2)
            pool.start()
            try:
                first, second = await asyncio.gather(
                    pool.run_job(PartialSignJob(
                        shard_id=0, message=b"first",
                        signers=tuple(handle.quorum()))),
                    pool.run_job(PartialSignJob(
                        shard_id=0, message=b"second",
                        signers=tuple(handle.quorum()))))
            finally:
                await pool.aclose()
                server.close()
                await server.wait_closed()
            return pool, first, second

        pool, first, second = run(scenario())
        for message, outcome in ((b"first", first), (b"second", second)):
            signature = handle.scheme.combine(
                handle.public_key, handle.verification_keys,
                message, list(outcome.partials))
            assert handle.verify(message, signature)
        assert pool.stats.max_inflight == 2

    def test_duplicate_request_id_refused_without_closing(self, handle):
        """Two jobs under one id would let one outcome settle both
        futures; the server refuses the duplicate with an E frame and
        keeps both the stream and the original job alive."""
        codec = WireCodec(handle.scheme.group)
        request = codec.encode_job(SignRequestJob(
            shard_id=0, message=b"dup", quorum=tuple(handle.quorum())))
        hello = encode_hello(
            handle.scheme.group.name,
            service_context_digest(encode_service_context(handle)))

        async def scenario():
            # A long linger keeps the first request pending in the
            # accumulator while the duplicate arrives.
            server = await WorkerServer(handle, max_batch=16,
                                        max_wait_ms=500.0).start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.host, server.port)
                write_frame(writer, FRAME_KIND_HELLO, hello)
                await writer.drain()
                kind, _, _ = await read_frame(reader)
                assert kind == FRAME_KIND_HELLO
                write_frame(writer, FRAME_KIND_JOB, request, request_id=9)
                write_frame(writer, FRAME_KIND_JOB, request, request_id=9)
                await writer.drain()
                first = await read_frame(reader)
                second = await read_frame(reader)
                writer.close()
                await writer.wait_closed()
            finally:
                await server.aclose()
            return first, second

        first, second = run(scenario())
        kind, request_id, payload = first
        assert kind == FRAME_KIND_ERROR
        assert request_id == 9
        assert b"duplicate" in payload
        kind, request_id, payload = second
        assert kind == FRAME_KIND_OUTCOME
        assert request_id == 9
        outcome = codec.decode_outcome(payload)
        assert outcome.failure == ""
        assert handle.verify(b"dup", outcome.signature)

    def test_pipelined_service_accumulates_windows_worker_side(
            self, handle):
        """With pipeline_depth > 1 the shards ship single requests and
        the worker re-batches across all of them: requests from four
        one-deep shards land in shared windows on the worker."""
        async def scenario():
            server = await WorkerServer(handle, max_batch=8,
                                        max_wait_ms=20.0).start()
            config = ServiceConfig(
                num_shards=4, max_batch=1, max_wait_ms=1.0,
                remote_workers=[server.address], pipeline_depth=4)
            try:
                async with SigningService(handle, config) as service:
                    results = await asyncio.gather(*(
                        service.sign(b"pipelined %d" % i)
                        for i in range(16)))
                    verdicts = await asyncio.gather(*(
                        service.verify(r.message, r.signature)
                        for r in results))
            finally:
                await server.aclose()
            return service, server, results, verdicts

        service, server, results, verdicts = run(scenario())
        assert all(handle.verify(r.message, r.signature)
                   for r in results)
        assert all(v.valid for v in verdicts)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers.max_inflight >= 2
        # 16 sign + 16 verify requests accumulated worker-side, into
        # fewer windows than requests (the whole point of shipping
        # requests instead of pre-built windows).
        assert server.requests_accumulated == 32
        assert server.windows_accumulated < server.requests_accumulated


# ---------------------------------------------------------------------------
# Pipelined crash recovery: every in-flight id settles exactly once
# ---------------------------------------------------------------------------

class TestPipelinedCrashRecovery:
    def test_mid_stream_kill_resubmits_every_inflight_request(
            self, handle, tmp_path):
        """The acceptance scenario for the v2 framing: with several
        request ids in flight on one connection, the worker dies hard;
        the pool fails every pending id, resubmits each to the
        surviving worker, and every request settles exactly once."""
        context_path = tmp_path / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))
        sentinel = tmp_path / "crashed.sentinel"
        crasher, crasher_address = start_worker_process(
            context_path, crash_sentinel=sentinel)
        survivor, survivor_address = start_worker_process(context_path)

        async def scenario():
            config = ServiceConfig(
                num_shards=2, max_batch=1, max_wait_ms=1.0,
                remote_workers=[crasher_address, survivor_address],
                pipeline_depth=4)
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(*(
                    service.sign(b"pipelined crash %d" % i)
                    for i in range(10)))
            return service, results

        try:
            service, results = run(scenario())
        finally:
            crasher.wait(timeout=10)
            survivor.terminate()
            survivor.wait(timeout=10)
        assert sentinel.exists()
        # Exactly once: one result per message, every one valid.
        assert sorted(r.message for r in results) == \
            sorted(b"pipelined crash %d" % i for i in range(10))
        for result in results:
            assert handle.verify(result.message, result.signature)
        stats = service.snapshot_stats()
        assert stats.failed == 0
        assert stats.workers.crashes >= 1
        assert stats.workers.resubmissions >= 1
