"""Algebraic tests for the F_p2 / F_p6 / F_p12 tower."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.math import tower
from repro.math.tower import (
    BN_X, F2_ONE, F2_ZERO, F6_ONE, F12_ONE, P, R, XI,
    cyclotomic_exp, f2_add, f2_conj, f2_eq, f2_inv, f2_mul, f2_mul_xi,
    f2_pow, f2_sqr, f2_sqrt, f2_sub,
    f6_add, f6_eq, f6_inv, f6_mul, f6_mul_by_v, f6_sqr, f6_sub,
    f12_compress, f12_compressed_sqr, f12_conj, f12_cyclotomic_pow,
    f12_cyclotomic_sqr, f12_decompress_batch, f12_eq, f12_frobenius,
    f12_inv, f12_is_one, f12_mul, f12_mul_line, f12_pow, f12_sqr,
    f12_to_wvec, wvec_to_f12,
)

scalars = st.integers(min_value=0, max_value=P - 1)
f2_elements = st.tuples(scalars, scalars)
f6_elements = st.tuples(f2_elements, f2_elements, f2_elements)
f12_elements = st.tuples(f6_elements, f6_elements)


class TestFp2:
    @given(a=f2_elements, b=f2_elements)
    @settings(max_examples=40)
    def test_mul_commutes(self, a, b):
        assert f2_eq(f2_mul(a, b), f2_mul(b, a))

    @given(a=f2_elements, b=f2_elements, c=f2_elements)
    @settings(max_examples=40)
    def test_mul_associates(self, a, b, c):
        assert f2_eq(f2_mul(f2_mul(a, b), c), f2_mul(a, f2_mul(b, c)))

    @given(a=f2_elements)
    @settings(max_examples=40)
    def test_sqr_matches_mul(self, a):
        assert f2_eq(f2_sqr(a), f2_mul(a, a))

    @given(a=f2_elements)
    @settings(max_examples=40)
    def test_inverse(self, a):
        if a[0] % P == 0 and a[1] % P == 0:
            return
        assert f2_eq(f2_mul(a, f2_inv(a)), F2_ONE)

    def test_inverse_of_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            f2_inv(F2_ZERO)

    @given(a=f2_elements)
    @settings(max_examples=40)
    def test_mul_xi_matches_explicit_mul(self, a):
        assert f2_eq(f2_mul_xi(a), f2_mul(a, XI))

    @given(a=f2_elements)
    @settings(max_examples=40)
    def test_conjugation_is_frobenius(self, a):
        # a^p == conj(a) in F_p2.
        assert f2_eq(f2_pow(a, P), f2_conj(a))

    def test_u_squared_is_minus_one(self):
        u = (0, 1)
        assert f2_eq(f2_sqr(u), (P - 1, 0))

    @given(a=f2_elements)
    @settings(max_examples=20)
    def test_sqrt_roundtrip(self, a):
        square = f2_sqr(a)
        root = f2_sqrt(square)
        assert root is not None
        assert f2_eq(f2_sqr(root), square)

    def test_sqrt_of_nonsquare_is_none(self):
        # xi is a non-square in F_p2 (it generates the sextic twist).
        assert f2_sqrt(XI) is None


class TestFp6:
    @given(a=f6_elements, b=f6_elements)
    @settings(max_examples=25)
    def test_mul_commutes(self, a, b):
        assert f6_eq(f6_mul(a, b), f6_mul(b, a))

    @given(a=f6_elements, b=f6_elements, c=f6_elements)
    @settings(max_examples=15)
    def test_distributes(self, a, b, c):
        lhs = f6_mul(a, f6_add(b, c))
        rhs = f6_add(f6_mul(a, b), f6_mul(a, c))
        assert f6_eq(lhs, rhs)

    @given(a=f6_elements)
    @settings(max_examples=25)
    def test_sqr_matches_mul(self, a):
        assert f6_eq(f6_sqr(a), f6_mul(a, a))

    @given(a=f6_elements)
    @settings(max_examples=25)
    def test_inverse(self, a):
        if all(c[0] % P == 0 and c[1] % P == 0 for c in a):
            return
        assert f6_eq(f6_mul(a, f6_inv(a)), F6_ONE)

    @given(a=f6_elements)
    @settings(max_examples=25)
    def test_mul_by_v(self, a):
        v = (F2_ZERO, F2_ONE, F2_ZERO)
        assert f6_eq(f6_mul_by_v(a), f6_mul(a, v))

    def test_v_cubed_is_xi(self):
        v = (F2_ZERO, F2_ONE, F2_ZERO)
        v3 = f6_mul(f6_mul(v, v), v)
        assert f6_eq(v3, (XI, F2_ZERO, F2_ZERO))


class TestFp12:
    @given(a=f12_elements, b=f12_elements)
    @settings(max_examples=15)
    def test_mul_commutes(self, a, b):
        assert f12_eq(f12_mul(a, b), f12_mul(b, a))

    @given(a=f12_elements)
    @settings(max_examples=15)
    def test_sqr_matches_mul(self, a):
        assert f12_eq(f12_sqr(a), f12_mul(a, a))

    @given(a=f12_elements)
    @settings(max_examples=15)
    def test_inverse(self, a):
        try:
            inverse = f12_inv(a)
        except ZeroDivisionError:
            return
        assert f12_is_one(f12_mul(a, inverse))

    @given(a=f12_elements)
    @settings(max_examples=10)
    def test_wvec_roundtrip(self, a):
        assert f12_eq(wvec_to_f12(f12_to_wvec(a)), a)

    @given(a=f12_elements)
    @settings(max_examples=5)
    def test_frobenius_matches_pow(self, a):
        # The precomputed Frobenius tables must agree with raising to p.
        assert f12_eq(f12_frobenius(a, 1), f12_pow(a, P))

    @given(a=f12_elements)
    @settings(max_examples=5)
    def test_frobenius_squared(self, a):
        lhs = f12_frobenius(a, 2)
        rhs = f12_frobenius(f12_frobenius(a, 1), 1)
        assert f12_eq(lhs, rhs)

    @given(a=f12_elements)
    @settings(max_examples=5)
    def test_frobenius_cubed(self, a):
        lhs = f12_frobenius(a, 3)
        rhs = f12_frobenius(f12_frobenius(f12_frobenius(a, 1), 1), 1)
        assert f12_eq(lhs, rhs)

    @given(a=f12_elements)
    @settings(max_examples=10)
    def test_conjugation_inverts_cyclotomic(self, a):
        # After the easy part of the final exponentiation the conjugate
        # is the inverse; verify on an element mapped into that subgroup.
        try:
            eased = f12_mul(f12_conj(a), f12_inv(a))
        except ZeroDivisionError:
            return
        eased = f12_mul(f12_frobenius(eased, 2), eased)
        assert f12_is_one(f12_mul(eased, f12_conj(eased)))

    @given(a=f12_elements, e=st.integers(min_value=0, max_value=2 ** 64))
    @settings(max_examples=8)
    def test_cyclotomic_pow_matches_pow(self, a, e):
        try:
            eased = f12_mul(f12_conj(a), f12_inv(a))
        except ZeroDivisionError:
            return
        eased = f12_mul(f12_frobenius(eased, 2), eased)
        assert f12_eq(f12_cyclotomic_pow(eased, e), f12_pow(eased, e))

    def test_frobenius_bad_power(self):
        with pytest.raises(ValueError):
            f12_frobenius(F12_ONE, 4)


class TestIntInlinedHotOps:
    """Agreement tests for the int-inlined Miller-loop accumulator ops
    (`f12_sqr`, `f12_mul_line` and their `_f6_mul_int` /
    `_f6_mul_sparse01_int` engines) against the generic tower
    arithmetic."""

    @given(a=f6_elements, b=f6_elements)
    @settings(max_examples=20)
    def test_f6_mul_int_matches_generic(self, a, b):
        assert f6_eq(tower._f6_mul_int(a, b), f6_mul(a, b))

    @given(a=f6_elements, b0=f2_elements, b1=f2_elements)
    @settings(max_examples=20)
    def test_f6_mul_sparse01_int_matches_composed(self, a, b0, b1):
        inlined = tower._f6_mul_sparse01_int(a, b0, b1)
        reduced = tuple((c0 % P, c1 % P) for c0, c1 in inlined)
        composed = tower._f6_mul_sparse01(a, b0, b1)
        assert f6_eq(reduced, composed)

    @given(a=f12_elements, l0=f2_elements, l1=f2_elements, l3=f2_elements)
    @settings(max_examples=15)
    def test_mul_line_matches_full_mul(self, a, l0, l1, l3):
        sparse = wvec_to_f12((l0, l1, F2_ZERO, l3, F2_ZERO, F2_ZERO))
        assert f12_eq(f12_mul_line(a, l0, l1, l3), f12_mul(a, sparse))

    @given(a=f12_elements, y=scalars, l1=f2_elements, l3=f2_elements)
    @settings(max_examples=15)
    def test_mul_line_scalar_l0_branch(self, a, y, l1, l3):
        # Every chord/tangent line has l0 = (y_P, 0) in F_p — the branch
        # the Miller loop actually takes.
        l0 = (y, 0)
        sparse = wvec_to_f12((l0, l1, F2_ZERO, l3, F2_ZERO, F2_ZERO))
        assert f12_eq(f12_mul_line(a, l0, l1, l3), f12_mul(a, sparse))

    @given(a=f12_elements)
    @settings(max_examples=15)
    def test_sqr_against_pow(self, a):
        assert f12_eq(f12_sqr(a), f12_pow(a, 2))

    def test_unreduced_sum_inputs(self):
        # _f6_mul_int accepts one level of unreduced sums (as produced
        # inside f12_sqr); the reduction must still land on the same
        # residue.
        a = ((P + 3, 2 * P + 1), (P - 1, P + 7), (5, P + 11))
        b = ((2 * P + 2, 4), (P + 9, 3), (P + 1, P - 2))
        reduced_a = tuple((x % P, y % P) for x, y in a)
        reduced_b = tuple((x % P, y % P) for x, y in b)
        assert f6_eq(tower._f6_mul_int(a, b), f6_mul(reduced_a, reduced_b))


def _into_cyclotomic(a):
    """Map an arbitrary invertible F_p12 element into the cyclotomic
    subgroup via the easy part of the final exponentiation."""
    eased = f12_mul(f12_conj(a), f12_inv(a))
    return f12_mul(f12_frobenius(eased, 2), eased)


class TestCyclotomicFastPaths:
    """Agreement tests for the Granger-Scott / Karabina fast arithmetic
    against the generic tower operations, on random unitary elements."""

    @given(a=f12_elements)
    @settings(max_examples=10)
    def test_cyclotomic_sqr_matches_generic(self, a):
        try:
            g = _into_cyclotomic(a)
        except ZeroDivisionError:
            return
        assert f12_eq(f12_cyclotomic_sqr(g), f12_sqr(g))

    @given(a=f12_elements)
    @settings(max_examples=8)
    def test_compressed_chain_decompresses(self, a):
        try:
            g = _into_cyclotomic(a)
        except ZeroDivisionError:
            return
        chain = f12_compress(g)
        reference = g
        compressed_powers = []
        references = []
        for _ in range(4):
            chain = f12_compressed_sqr(chain)
            reference = f12_sqr(reference)
            compressed_powers.append(chain)
            references.append(reference)
        decompressed = f12_decompress_batch(compressed_powers)
        assert decompressed is not None
        for value, expected in zip(decompressed, references):
            assert f12_eq(value, expected)

    @given(a=f12_elements,
           e=st.integers(min_value=-(2 ** 70), max_value=2 ** 70))
    @settings(max_examples=10)
    def test_cyclotomic_exp_matches_naive_ladder(self, a, e):
        try:
            g = _into_cyclotomic(a)
        except ZeroDivisionError:
            return
        assert f12_eq(cyclotomic_exp(g, e), f12_cyclotomic_pow(g, e))

    @given(a=f12_elements)
    @settings(max_examples=5)
    def test_cyclotomic_exp_bn_parameter(self, a):
        # The exponent the final exponentiation actually uses.
        try:
            g = _into_cyclotomic(a)
        except ZeroDivisionError:
            return
        assert f12_eq(cyclotomic_exp(g, BN_X), f12_pow(g, BN_X))

    def test_identity_takes_degenerate_fallback(self):
        # The identity compresses to all zeros (vanishing determinant),
        # exercising the uncompressed Granger-Scott fallback.
        assert f12_decompress_batch([f12_compress(F12_ONE)]) is None
        assert f12_is_one(cyclotomic_exp(F12_ONE, 12345))
        assert f12_is_one(cyclotomic_exp(F12_ONE, R - 1))

    def test_small_exponents(self):
        g = _into_cyclotomic(
            ((( 3, 1), (4, 1), (5, 9)), ((2, 6), (5, 3), (5, 8))))
        assert f12_is_one(cyclotomic_exp(g, 0))
        assert f12_eq(cyclotomic_exp(g, 1), g)
        assert f12_eq(cyclotomic_exp(g, 2), f12_sqr(g))
        assert f12_eq(cyclotomic_exp(g, -1), f12_conj(g))
