"""Tests for the Groth-Sahai commitment/proof fragment."""

import pytest

from repro.errors import ParameterError
from repro.gs.crs import GSParams, message_to_bits
from repro.gs.proofs import (
    GSCommitment, GSProof, commit, prove_linear, randomize, verify_linear,
)
from repro.math.rng import random_scalar


@pytest.fixture(scope="module")
def gs(toy_group_module):
    return GSParams.generate(toy_group_module, bit_length=16)


@pytest.fixture(scope="module")
def toy_group_module():
    from repro.groups import get_group
    return get_group("toy")


def make_statement(group, gs, message=b"m", rng=None):
    """Commit to (z, r) = (g^-a, g^-b) and prove the paper's equation."""
    order = group.order
    g = group.derive_g1("gs-test:g")
    g_z = group.derive_g2("gs-test:g_z")
    g_r = group.derive_g2("gs-test:g_r")
    a = random_scalar(order, rng)
    b = random_scalar(order, rng)
    v_hat = (g_z ** a) * (g_r ** b)
    z = g ** (-a)
    r = g ** (-b)
    crs = gs.crs_for_message(message)
    nu_z = (random_scalar(order, rng), random_scalar(order, rng))
    nu_r = (random_scalar(order, rng), random_scalar(order, rng))
    c_z = commit(crs, z, *nu_z)
    c_r = commit(crs, r, *nu_r)
    proof = prove_linear([g_z, g_r], [nu_z, nu_r])
    return crs, [c_z, c_r], [g_z, g_r], (g, v_hat), proof


class TestBits:
    def test_deterministic(self):
        assert message_to_bits(b"x", 32) == message_to_bits(b"x", 32)

    def test_length(self):
        assert len(message_to_bits(b"x", 7)) == 7

    def test_distinct_messages_differ(self):
        assert message_to_bits(b"x", 64) != message_to_bits(b"y", 64)


class TestCRS:
    def test_crs_depends_on_message(self, gs):
        crs1 = gs.crs_for_message(b"m1")
        crs2 = gs.crs_for_message(b"m2")
        assert crs1.f_m != crs2.f_m
        assert crs1.f == crs2.f

    def test_crs_for_bits_roundtrip(self, gs):
        bits = message_to_bits(b"m1", gs.bit_length)
        assert gs.crs_for_bits(bits).f_m == gs.crs_for_message(b"m1").f_m

    def test_crs_for_bits_length_check(self, gs):
        with pytest.raises(ParameterError):
            gs.crs_for_bits([0, 1])

    def test_invalid_bit_length(self, toy_group_module):
        with pytest.raises(ParameterError):
            GSParams.generate(toy_group_module, bit_length=0)


class TestProofs:
    def test_honest_proof_verifies(self, toy_group_module, gs, rng):
        group = toy_group_module
        crs, commitments, constants, target, proof = make_statement(
            group, gs, rng=rng)
        assert verify_linear(group, crs, commitments, constants,
                             target, proof)

    def test_wrong_target_rejected(self, toy_group_module, gs, rng):
        group = toy_group_module
        crs, commitments, constants, (g, v_hat), proof = make_statement(
            group, gs, rng=rng)
        wrong = (g, v_hat * group.g2_generator())
        assert not verify_linear(group, crs, commitments, constants,
                                 wrong, proof)

    def test_wrong_crs_rejected(self, toy_group_module, gs, rng):
        group = toy_group_module
        _, commitments, constants, target, proof = make_statement(
            group, gs, message=b"m1", rng=rng)
        other_crs = gs.crs_for_message(b"m2")
        assert not verify_linear(group, other_crs, commitments, constants,
                                 target, proof)

    def test_tampered_commitment_rejected(self, toy_group_module, gs, rng):
        group = toy_group_module
        crs, commitments, constants, target, proof = make_statement(
            group, gs, rng=rng)
        bad = [GSCommitment(commitments[0].c0,
                            commitments[0].c1 * group.g1_generator()),
               commitments[1]]
        assert not verify_linear(group, crs, bad, constants, target, proof)

    def test_arity_mismatch_rejected(self, toy_group_module, gs, rng):
        group = toy_group_module
        crs, commitments, constants, target, proof = make_statement(
            group, gs, rng=rng)
        assert not verify_linear(group, crs, commitments[:1], constants,
                                 target, proof)
        with pytest.raises(ParameterError):
            prove_linear(constants, [(1, 2)])

    def test_randomization_preserves_validity(self, toy_group_module, gs,
                                              rng):
        group = toy_group_module
        crs, commitments, constants, target, proof = make_statement(
            group, gs, rng=rng)
        new_commitments, new_proof = randomize(
            group, crs, commitments, constants, proof, rng=rng)
        assert verify_linear(group, crs, new_commitments, constants,
                             target, new_proof)

    def test_randomization_changes_representation(self, toy_group_module,
                                                  gs, rng):
        group = toy_group_module
        crs, commitments, constants, target, proof = make_statement(
            group, gs, rng=rng)
        new_commitments, new_proof = randomize(
            group, crs, commitments, constants, proof, rng=rng)
        assert new_commitments[0].to_bytes() != commitments[0].to_bytes()
        assert new_proof.to_bytes() != proof.to_bytes()

    def test_commitment_hiding_under_wi_crs(self, toy_group_module, gs, rng):
        """Two commitments to the same value with different randomness
        are unlinkable representations."""
        group = toy_group_module
        crs = gs.crs_for_message(b"m")
        value = group.derive_g1("x")
        c1 = commit(crs, value, 1, 2)
        c2 = commit(crs, value, 3, 4)
        assert c1.to_bytes() != c2.to_bytes()

    def test_proof_is_two_elements(self, toy_group_module, gs, rng):
        group = toy_group_module
        _, _, _, _, proof = make_statement(group, gs, rng=rng)
        assert isinstance(proof, GSProof)
        assert len(proof.to_bytes()) == 2 * group.g2_bytes
