"""Semantics of the synchronous network simulator."""

import pytest

from repro.errors import ProtocolError
from repro.net.adversary import Adversary, ScriptedAdversary
from repro.net.metrics import estimate_size
from repro.net.player import Player
from repro.net.simulator import Message, SyncNetwork, broadcast, private


class EchoPlayer(Player):
    """Broadcasts a greeting in round 0, records everything it receives."""

    def __init__(self, index):
        super().__init__(index)
        self.seen = []

    def on_round(self, round_no, inbox):
        self.seen.extend(inbox)
        if round_no == 0:
            return [broadcast(self.index, "hello", self.index),
                    private(self.index, (self.index % 3) + 1, "dm",
                            f"from {self.index}")]
        return []

    def finalize(self):
        return self.seen


def build_network(adversary=None, n=3):
    players = {i: EchoPlayer(i) for i in range(1, n + 1)}
    return players, SyncNetwork(players, adversary=adversary)


class TestDelivery:
    def test_broadcast_reaches_everyone(self):
        players, network = build_network()
        results = network.run(2)
        for i, seen in results.items():
            hellos = [m for m in seen if m.kind == "hello"]
            assert {m.sender for m in hellos} == {1, 2, 3}

    def test_private_message_only_to_recipient(self):
        players, network = build_network()
        results = network.run(2)
        for i, seen in results.items():
            dms = [m for m in seen if m.kind == "dm"]
            assert all(m.recipient == i for m in dms)

    def test_messages_delivered_next_round(self):
        players, network = build_network()
        network.run_round()
        # nothing delivered during round 0 itself
        assert all(not p.seen for p in players.values())
        network.run_round()
        assert all(p.seen for p in players.values())

    def test_sender_forgery_rejected(self):
        class Forger(Player):
            def on_round(self, round_no, inbox):
                return [broadcast(self.index + 1, "forged", None)]

            def finalize(self):
                return None

        network = SyncNetwork({1: Forger(1), 2: EchoPlayer(2),
                               3: EchoPlayer(3)})
        with pytest.raises(ProtocolError):
            network.run_round()

    def test_run_after_finish_rejected(self):
        _, network = build_network()
        network.run(1)
        with pytest.raises(ProtocolError):
            network.run_round()


class TestMetrics:
    def test_counts(self):
        _, network = build_network()
        network.run(2)
        summary = network.metrics.summary()
        # Round 0: 3 broadcasts + 3 private messages; rounds 1+ silent.
        assert summary["communication_rounds"] == 1
        assert summary["messages"] == 6
        assert network.metrics.rounds[0].broadcasts == 3
        assert network.metrics.rounds[0].point_to_point == 3

    def test_estimate_size_primitives(self, toy_group):
        assert estimate_size(None) == 0
        assert estimate_size(7) == 32
        assert estimate_size(True) == 1
        assert estimate_size(b"abcd") == 4
        assert estimate_size("ab") == 2
        assert estimate_size([1, 2]) == 64
        assert estimate_size({"k": 1}) == 33
        assert estimate_size(toy_group.g1_generator()) == 32

    def test_estimate_size_unknown_type(self):
        with pytest.raises(TypeError):
            estimate_size(object())


class TestAdversary:
    def test_rushing_sees_honest_messages(self):
        observed = {}

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                observed["round0"] = len(honest_messages)
            return []

        _, network = build_network(ScriptedAdversary(script))
        network.run(1)
        assert observed["round0"] == 6

    def test_corruption_reveals_state_and_retracts_messages(self):
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                state = adversary.corrupt(1)
                assert "seen" in state     # full internal state
            return []

        players, network = build_network(ScriptedAdversary(script))
        results = network.run(2)
        assert 1 not in results            # corrupted players don't finalize
        # player 1's round-0 messages were retracted
        for seen in results.values():
            assert all(m.sender != 1 for m in seen)

    def test_adversary_sends_as_corrupted_only(self):
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                return [broadcast(2, "spoof", None)]   # 2 not corrupted
            return []

        _, network = build_network(ScriptedAdversary(script))
        with pytest.raises(ProtocolError):
            network.run_round()

    def test_adversary_injects_as_corrupted(self):
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                return [broadcast(1, "evil", b"payload")]
            return []

        players, network = build_network(ScriptedAdversary(script))
        results = network.run(2)
        for seen in results.values():
            assert any(m.kind == "evil" for m in seen)

    def test_corruption_budget_enforced(self):
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                adversary.corrupt(2)    # exceeds budget of 1
            return []

        _, network = build_network(
            ScriptedAdversary(script, max_corruptions=1))
        with pytest.raises(ProtocolError):
            network.run_round()

    def test_adversary_view_accumulates(self):
        adversary = Adversary()
        _, network = build_network(adversary)
        network.run(2)
        assert len(adversary.view) >= 2


class TestAdversaryPaths:
    """The sharper corners of the threat model: rushing on *content*,
    mid-round replacement, private-channel capture, and the exact
    forgery rejection — the semantics the DKG complaint rounds and the
    simulation harness (``repro.sims``) both lean on."""

    def test_rushing_adversary_reacts_to_current_round_content(self):
        # The adversary's round-0 output may depend on the round-0
        # honest messages (not just see their count): it echoes the
        # exact payload player 2 is *about to* broadcast, and every
        # honest player receives both in the same delivery batch.
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                target = next(m for m in honest_messages
                              if m.sender == 2 and m.kind == "hello")
                return [broadcast(1, "rushed-echo", target.payload)]
            return []

        players, network = build_network(ScriptedAdversary(script))
        results = network.run(2)
        for seen in results.values():
            echoes = [m for m in seen if m.kind == "rushed-echo"]
            assert [m.payload for m in echoes] == [2]

    def test_mid_round_corruption_replaces_undelivered_messages(self):
        # Corrupting a player *after* it produced its round messages
        # but before delivery retracts them and substitutes the
        # adversary's own — the strongest scheduling in the model.
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                assert any(m.sender == 1 and m.kind == "hello"
                           for m in honest_messages)
                adversary.corrupt(1)
                return [broadcast(1, "hello", "replaced")]
            return []

        players, network = build_network(ScriptedAdversary(script))
        results = network.run(2)
        for seen in results.values():
            from_one = [m for m in seen if m.sender == 1]
            # The original round-0 messages from player 1 (a "hello"
            # broadcast and a private "dm") never reach anyone; only
            # the replacement does.
            assert [(m.kind, m.payload) for m in from_one] == [
                ("hello", "replaced")]

    def test_private_messages_to_corrupted_player_reach_adversary(self):
        captured = []

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(2)
            captured.extend(m for m in deliveries if not m.is_broadcast)
            return []

        players, network = build_network(ScriptedAdversary(script))
        results = network.run(2)
        # EchoPlayer 1 sent a round-0 dm to player 2; after the
        # corruption that private message is routed to the adversary
        # (erasure-free capture of the victim's channels) ...
        assert [(m.sender, m.recipient) for m in captured] == [(1, 2)]
        # ... and the corrupted player never finalizes.
        assert 2 not in results

    def test_corruption_captures_full_state_and_history(self):
        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 1:
                state = adversary.corrupt(3)
                # Erasure-free: the victim's attributes and its whole
                # received-message history are in the capture.
                assert state["seen"]
                assert any(m.kind == "hello" for m in state["seen"])
            return []

        adversary = ScriptedAdversary(script)
        _, network = build_network(adversary)
        network.run(2)
        assert adversary.captured_states[3]["index"] == 3

    def test_private_sender_forgery_rejected_with_named_player(self):
        class DmForger(Player):
            def on_round(self, round_no, inbox):
                return [private(self.index + 1, self.index, "dm", None)]

            def finalize(self):
                return None

        network = SyncNetwork({1: DmForger(1), 2: EchoPlayer(2),
                               3: EchoPlayer(3)})
        with pytest.raises(ProtocolError,
                           match="player 1 tried to forge sender 2"):
            network.run_round()
