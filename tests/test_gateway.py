"""Tests for the HTTP gateway, multi-tenancy and Prometheus exposition.

The gateway binds an ephemeral loopback port per test; protocol logic
runs on the toy backend with one end-to-end test (marked ``bn254``) on
the real pairing.  The Prometheus tests parse the exposition output
line-by-line — including label unescaping — and reconcile every counter
against ``snapshot_stats()`` exactly, which is the same gate
``tools/serve_smoke.py`` act 8 enforces.
"""

import asyncio
import json
import random

import pytest

from repro.core.scheme import ServiceHandle
from repro.serialization import WireCodec
from repro.service import (
    GatewayClient, HttpGateway, ServiceConfig, SigningService,
    TenantConfig, TenantQuotaError, TenantRegistry, TokenBucket,
    UnknownTenantError,
)
from repro.service.loadgen import GatewayError


def run(coroutine):
    return asyncio.run(coroutine)


@pytest.fixture
def handle(toy_group):
    return ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(31))


def service_config(**overrides):
    defaults = dict(num_shards=2, max_batch=4, max_wait_ms=2.0,
                    queue_depth=256, rng=random.Random(32))
    defaults.update(overrides)
    return ServiceConfig(**defaults)


TENANTS = [
    TenantConfig(name="alpha", api_key="alpha-key", admin=True),
    TenantConfig(name="beta", api_key="beta-key", rate_rps=1.0, burst=2.0),
]


class gateway_running:
    """Async context manager: a started service + gateway, torn down in
    drain-then-barrier order."""

    def __init__(self, handle, tenants=TENANTS, config=None):
        self.service = SigningService(handle, config or service_config())
        self.tenants = tenants

    async def __aenter__(self):
        await self.service.start()
        self.gateway = HttpGateway(self.service, tenants=self.tenants)
        await self.gateway.start()
        return self.gateway

    async def __aexit__(self, *exc):
        await self.gateway.stop()
        await self.service.stop()


def client_for(gateway, api_key, codec=None):
    return GatewayClient(gateway.host, gateway.port, api_key, codec=codec)


async def raw_exchange(gateway, blob: bytes) -> bytes:
    """Send raw bytes, return the full response (for malformed input)."""
    reader, writer = await asyncio.open_connection(
        gateway.host, gateway.port)
    writer.write(blob)
    await writer.drain()
    response = await reader.read(65536)
    writer.close()
    return response


# ---------------------------------------------------------------------------
# Token bucket and registry units
# ---------------------------------------------------------------------------

class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate_rps=10.0, burst=2.0)
        assert bucket.try_acquire(0.0) == 0.0
        assert bucket.try_acquire(0.0) == 0.0
        retry = bucket.try_acquire(0.0)
        assert retry == pytest.approx(0.1)
        # After one refill period a token is back.
        assert bucket.try_acquire(0.1) == 0.0

    def test_tokens_cap_at_burst(self):
        bucket = TokenBucket(rate_rps=100.0, burst=3.0)
        bucket.try_acquire(0.0)
        # A long idle period must not bank more than `burst` tokens.
        for _ in range(3):
            assert bucket.try_acquire(1000.0) == 0.0
        assert bucket.try_acquire(1000.0) > 0.0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=0.0, burst=1.0)
        with pytest.raises(ValueError):
            TokenBucket(rate_rps=1.0, burst=0.0)


class TestTenantRegistry:
    def test_resolve_and_unknown(self):
        registry = TenantRegistry(TENANTS)
        assert registry.resolve("alpha-key").config.name == "alpha"
        with pytest.raises(UnknownTenantError):
            registry.resolve("wrong")
        with pytest.raises(UnknownTenantError):
            registry.resolve(None)

    def test_duplicate_keys_and_names_refused(self):
        registry = TenantRegistry(TENANTS)
        with pytest.raises(ValueError):
            registry.add(TenantConfig(name="other", api_key="alpha-key"))
        with pytest.raises(ValueError):
            registry.add(TenantConfig(name="alpha", api_key="fresh-key"))

    def test_retry_after_header_rounds_up(self):
        assert TenantRegistry.retry_after_header(0.01) == "1"
        assert TenantRegistry.retry_after_header(1.2) == "2"
        assert TenantRegistry.retry_after_header(3.0) == "3"

    def test_inflight_cap(self):
        registry = TenantRegistry(
            [TenantConfig(name="t", api_key="k", max_inflight=1)])
        state = registry.resolve("k")
        state.admit(0.0)
        with pytest.raises(TenantQuotaError) as info:
            state.admit(0.0)
        assert info.value.reason == "in-flight"
        state.release()
        state.admit(0.0)  # released slot is usable again


# ---------------------------------------------------------------------------
# Data plane over HTTP
# ---------------------------------------------------------------------------

class TestGatewayDataPlane:
    def test_sign_verify_roundtrip(self, handle, toy_group):
        async def scenario():
            codec = WireCodec(toy_group)
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "alpha-key", codec=codec)
                result = await client.sign(b"http message")
                assert handle.verify(b"http message", result.signature)
                verdict = await client.verify(
                    b"http message", result.signature)
                assert verdict.valid
                verdict = await client.verify(b"other", result.signature)
                assert not verdict.valid
                await client.close()
        run(scenario())

    def test_request_ids_are_assigned_and_unique(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "alpha-key")
                ids = set()
                for i in range(3):
                    payload = await client.request(
                        "POST", "/v1/sign",
                        {"message": (b"m%d" % i).hex()})
                    ids.add(payload["request_id"])
                assert len(ids) == 3
                await client.close()
        run(scenario())

    def test_unknown_api_key_is_401(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "who-dis")
                with pytest.raises(GatewayError) as info:
                    await client.sign(b"nope")
                assert info.value.status == 401
                assert info.value.error == "unauthorized"
                # Missing header entirely is also 401.
                response = await raw_exchange(
                    gateway,
                    b"POST /v1/sign HTTP/1.1\r\nContent-Length: 2\r\n"
                    b"\r\n{}")
                assert b"401 Unauthorized" in response
                await client.close()
        run(scenario())

    def test_rate_quota_is_429_with_retry_after(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "beta-key")
                for i in range(2):  # burst
                    await client.sign(b"beta %d" % i)
                with pytest.raises(TenantQuotaError) as info:
                    await client.sign(b"over quota")
                assert info.value.retry_after_s >= 1.0
                state = gateway.tenants.resolve("beta-key")
                assert state.stats.rejected_quota == 1
                assert state.inflight == 0
                await client.close()
        run(scenario())

    def test_inflight_cap_is_429(self, handle):
        tenants = [TenantConfig(name="capped", api_key="cap-key",
                                max_inflight=1)]
        # A wide window holds the first request in flight long enough
        # for the second to hit the cap.
        config = service_config(max_batch=64, max_wait_ms=200.0)

        async def scenario():
            async with gateway_running(handle, tenants, config) as gateway:
                first = client_for(gateway, "cap-key")
                second = client_for(gateway, "cap-key")
                task = asyncio.create_task(first.sign(b"holds the slot"))
                await asyncio.sleep(0.02)
                with pytest.raises(TenantQuotaError) as info:
                    await second.sign(b"hits the cap")
                assert info.value.reason == "in-flight"
                result = await task
                assert result.batch_size >= 1
                await first.close()
                await second.close()
        run(scenario())

    def test_service_overload_is_503(self, handle):
        config = service_config(max_batch=64, max_wait_ms=500.0,
                                queue_depth=1)

        async def scenario():
            async with gateway_running(handle, config=config) as gateway:
                client = client_for(gateway, "alpha-key")
                probes = [
                    asyncio.create_task(client_for(
                        gateway, "alpha-key").sign(b"fill %d" % i))
                    for i in range(4)]
                await asyncio.sleep(0.05)
                outcomes = []
                for probe in probes:
                    try:
                        await probe
                        outcomes.append("ok")
                    except Exception as exc:
                        outcomes.append(type(exc).__name__)
                # Depth-1 queues under a long window: at least one shed.
                assert "ServiceOverloadedError" in outcomes
                shed = sum(state.stats.shed for state in
                           gateway.tenants.states().values())
                assert shed == outcomes.count("ServiceOverloadedError")
                await client.close()
        run(scenario())

    def test_malformed_requests_are_400(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "alpha-key")
                for body in ({"message": "xyz"},       # bad hex
                             {"message": 7},           # wrong type
                             {}):                      # missing field
                    with pytest.raises(GatewayError) as info:
                        await client.request("POST", "/v1/sign", body)
                    assert info.value.status == 400
                # Unparseable JSON.
                response = await raw_exchange(
                    gateway,
                    b"POST /v1/sign HTTP/1.1\r\nX-API-Key: alpha-key\r\n"
                    b"Content-Length: 4\r\n\r\n{{{{")
                assert b"400 Bad Request" in response
                await client.close()
        run(scenario())

    def test_unknown_route_and_method(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "alpha-key")
                with pytest.raises(GatewayError) as info:
                    await client.request("GET", "/v2/nothing")
                assert info.value.status == 404
                with pytest.raises(GatewayError) as info:
                    await client.request("GET", "/v1/sign")
                assert info.value.status == 405
                await client.close()
        run(scenario())

    def test_oversized_body_is_413(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                head = (b"POST /v1/sign HTTP/1.1\r\n"
                        b"X-API-Key: alpha-key\r\n"
                        b"Content-Length: 9999999\r\n\r\n")
                response = await raw_exchange(gateway, head)
                assert b"413 Payload Too Large" in response
        run(scenario())

    def test_keep_alive_reuses_one_connection(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "alpha-key")
                for i in range(3):
                    await client.sign(b"keep-alive %d" % i)
                assert len(client._idle) == 1
                await client.close()
        run(scenario())


# ---------------------------------------------------------------------------
# Quorum pinning (the per-tenant quorum policy)
# ---------------------------------------------------------------------------

class TestQuorumPinning:
    def test_pinned_tenant_lands_on_one_shard(self, handle):
        tenants = [
            TenantConfig(name="pinned", api_key="pin-key",
                         quorum_rotation=1),
            TenantConfig(name="spread", api_key="spread-key"),
        ]

        async def scenario():
            async with gateway_running(handle, tenants) as gateway:
                pinned = client_for(gateway, "pin-key")
                spread = client_for(gateway, "spread-key")
                for i in range(12):
                    await pinned.sign(b"pinned %d" % i)
                    await spread.sign(b"spread %d" % i)
                stats = gateway.service.snapshot_stats()
                pinned_on = {sid for sid, s in stats.shards.items()
                             if s.tenant_requests.get("pinned")}
                spread_on = {sid for sid, s in stats.shards.items()
                             if s.tenant_requests.get("spread")}
                # rotation=1 with shard ids {0, 1} pins to shard 1;
                # consistent hashing spreads 12 messages over both.
                assert pinned_on == {1}
                assert stats.shards[1].tenant_requests["pinned"] == 12
                assert spread_on == {0, 1}
                assert stats.tenant_accepted == {"pinned": 12,
                                                 "spread": 12}
                await pinned.close()
                await spread.close()
        run(scenario())


# ---------------------------------------------------------------------------
# Control plane over HTTP
# ---------------------------------------------------------------------------

class TestGatewayControlPlane:
    def test_admin_routes_require_admin_tenant(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                beta = client_for(gateway, "beta-key")
                with pytest.raises(GatewayError) as info:
                    await beta.admin_refresh()
                assert info.value.status == 403
                await beta.close()
        run(scenario())

    def test_lifecycle_over_the_wire(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                admin = client_for(gateway, "alpha-key")
                refreshed = await admin.admin_refresh()
                assert refreshed["epoch"] == 1
                reshared = await admin.admin_reshare(2, [1, 2, 3, 4, 5, 6])
                assert reshared["epoch"] == 2
                assert reshared["signers"] == [1, 2, 3, 4, 5, 6]
                resized = await admin.admin_resize(3)
                assert resized["shards"] == 3
                # Signing still works across all three transitions.
                result = await admin.request(
                    "POST", "/v1/sign", {"message": b"after".hex()})
                assert result["epoch"] == 2
                stats = gateway.service.snapshot_stats()
                assert stats.epochs.refreshes == 1
                assert stats.epochs.reshares == 1
                assert stats.epochs.resizes == 1
                await admin.close()
        run(scenario())

    def test_bad_lifecycle_parameters_are_400(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                admin = client_for(gateway, "alpha-key")
                with pytest.raises(GatewayError) as info:
                    await admin.admin_reshare(9, [1, 2, 3])
                assert info.value.status == 400
                with pytest.raises(GatewayError) as info:
                    await admin.admin_resize(0)
                assert info.value.status == 400
                with pytest.raises(GatewayError) as info:
                    await admin.request("POST", "/admin/reshare",
                                        {"threshold": 1, "indices": "no"})
                assert info.value.status == 400
                await admin.close()
        run(scenario())


# ---------------------------------------------------------------------------
# Graceful drain
# ---------------------------------------------------------------------------

class TestGracefulDrain:
    def test_inflight_requests_finish_during_stop(self, handle):
        config = service_config(max_batch=64, max_wait_ms=100.0)

        async def scenario():
            service = SigningService(handle, config)
            await service.start()
            gateway = HttpGateway(service, tenants=TENANTS)
            await gateway.start()
            client = client_for(gateway, "alpha-key")
            task = asyncio.create_task(client.sign(b"caught mid-drain"))
            await asyncio.sleep(0.02)  # parked in the 100ms window
            await gateway.stop()
            # The in-flight request was answered, not dropped.
            result = await task
            assert result.batch_size == 1
            # New connections are refused after the drain.
            with pytest.raises((ConnectionError, OSError)):
                await client_for(gateway, "alpha-key").healthz()
            await client.close()
            await service.stop()
        run(scenario())

    def test_idle_keepalive_connections_are_closed(self, handle):
        async def scenario():
            service = SigningService(handle, service_config())
            await service.start()
            gateway = HttpGateway(service, tenants=TENANTS)
            await gateway.start()
            client = client_for(gateway, "alpha-key")
            await client.sign(b"park a keep-alive connection")
            assert len(gateway._connections) == 1
            await gateway.stop()
            assert not gateway._connections
            await client.close()
            await service.stop()
        run(scenario())

    def test_stop_is_idempotent(self, handle):
        async def scenario():
            service = SigningService(handle, service_config())
            await service.start()
            gateway = HttpGateway(service, tenants=TENANTS)
            await gateway.start()
            await gateway.stop()
            await gateway.stop()
            await service.stop()
        run(scenario())


# ---------------------------------------------------------------------------
# Scheduled proactive refresh (ServiceConfig.refresh_every_s)
# ---------------------------------------------------------------------------

class TestScheduledRefresh:
    def test_two_timed_refreshes_under_load_zero_rejections(self, handle):
        config = service_config(refresh_every_s=0.05)

        async def scenario():
            service = SigningService(handle, config)
            await service.start()
            loop = asyncio.get_running_loop()
            deadline = loop.time() + 0.18
            completed = 0

            async def client_loop():
                nonlocal completed
                while loop.time() < deadline:
                    result = await service.sign(b"under refresh load")
                    assert service.handle.verify(
                        b"under refresh load", result.signature)
                    completed += 1

            await asyncio.gather(*(client_loop() for _ in range(4)))
            stats = service.snapshot_stats()
            await service.stop()
            assert stats.epochs.refreshes >= 2
            assert service.handle.epoch >= 2
            # The lifecycle contract: transitions shed nothing.
            assert stats.rejected == 0
            assert stats.failed == 0
            assert completed > 0
            assert stats.completed >= completed
        run(scenario())

    def test_refresh_task_stops_with_service(self, handle):
        config = service_config(refresh_every_s=0.02)

        async def scenario():
            service = SigningService(handle, config)
            await service.start()
            await asyncio.sleep(0.05)
            await service.stop()
            epoch_at_stop = service.handle.epoch
            assert service._refresh_task is None or \
                service._refresh_task.done()
            await asyncio.sleep(0.05)
            assert service.handle.epoch == epoch_at_stop
        run(scenario())


# ---------------------------------------------------------------------------
# Prometheus exposition
# ---------------------------------------------------------------------------

def unescape_label(value: str) -> str:
    out, i = [], 0
    while i < len(value):
        if value[i] == "\\" and i + 1 < len(value):
            out.append({"n": "\n", "\\": "\\", '"': '"'}[value[i + 1]])
            i += 2
        else:
            out.append(value[i])
            i += 1
    return "".join(out)


def parse_labels(blob: str) -> tuple:
    """``k="v",...`` -> sorted tuple of (key, unescaped value)."""
    labels, i = [], 0
    while i < len(blob):
        eq = blob.index("=", i)
        key = blob[i:eq]
        assert blob[eq + 1] == '"'
        j = eq + 2
        while blob[j] != '"':
            j += 2 if blob[j] == "\\" else 1
        labels.append((key, unescape_label(blob[eq + 2:j])))
        i = j + 1
        if i < len(blob):
            assert blob[i] == ","
            i += 1
    return tuple(sorted(labels))


def parse_prometheus(text: str) -> dict:
    """Strict line-by-line parse: every sample belongs to a family whose
    HELP and TYPE lines preceded it.  Returns
    ``{family: {"type": ..., "samples": {(name, labels): value}}}``."""
    assert text.endswith("\n")
    families = {}
    current = None
    for line in text.splitlines():
        assert line, "blank line in exposition"
        if line.startswith("# HELP "):
            _, _, name, help_text = line.split(" ", 3)
            assert name not in families, f"duplicate family {name}"
            families[name] = {"help": help_text, "type": None,
                              "samples": {}}
            current = name
        elif line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert name == current, "TYPE does not follow its HELP"
            assert kind in ("counter", "gauge", "histogram")
            families[name]["type"] = kind
        else:
            name_part, _, value_part = line.rpartition(" ")
            if "{" in name_part:
                name = name_part[:name_part.index("{")]
                assert name_part.endswith("}")
                labels = parse_labels(
                    name_part[name_part.index("{") + 1:-1])
            else:
                name, labels = name_part, ()
            family = name
            for suffix in ("_bucket", "_sum", "_count"):
                if name.endswith(suffix) and \
                        name[:-len(suffix)] in families:
                    family = name[:-len(suffix)]
            assert family == current, \
                f"sample {name} outside its family block"
            value = (float("inf") if value_part == "+Inf"
                     else float(value_part))
            key = (name, labels)
            assert key not in families[family]["samples"], \
                f"duplicate sample {key}"
            families[family]["samples"][key] = value
    for name, family in families.items():
        assert family["type"] is not None, f"{name} has no TYPE"
    return families


def sample(families: dict, name: str, **labels) -> float:
    key = (name, tuple(sorted(labels.items())))
    prefix = name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[:-len(suffix)] in families:
            prefix = name[:-len(suffix)]
    return families[prefix]["samples"][key]


class TestPrometheusExposition:
    def test_counters_reconcile_with_snapshot_stats(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                alpha = client_for(gateway, "alpha-key")
                beta = client_for(gateway, "beta-key")
                for i in range(8):
                    await alpha.sign(b"alpha %d" % i)
                outcomes = {"ok": 0, "quota": 0}
                for i in range(4):
                    try:
                        await beta.sign(b"beta %d" % i)
                        outcomes["ok"] += 1
                    except TenantQuotaError:
                        outcomes["quota"] += 1
                assert outcomes == {"ok": 2, "quota": 2}
                text = await alpha.metrics()
                families = parse_prometheus(text)
                stats = gateway.service.snapshot_stats()

                assert sample(families, "ljy_service_accepted_total") == \
                    stats.accepted == 10
                assert sample(families, "ljy_service_completed_total") == \
                    stats.completed
                assert sample(families, "ljy_service_rejected_total") == \
                    stats.rejected == 0
                assert sample(families,
                              "ljy_service_ingress_messages_total") == \
                    stats.ingress.messages
                assert sample(families, "ljy_epoch") == \
                    stats.epochs.epoch == 0

                for tenant, accepted in stats.tenant_accepted.items():
                    assert sample(
                        families, "ljy_service_tenant_accepted_total",
                        tenant=tenant) == accepted
                states = gateway.tenants.states()
                assert sample(families, "ljy_tenant_admitted_total",
                              tenant="alpha") == \
                    states["alpha"].stats.admitted == 8
                assert sample(families, "ljy_tenant_rejected_total",
                              tenant="beta", reason="rate") == \
                    states["beta"].stats.rejected_quota == 2
                assert sample(families, "ljy_tenant_completed_total",
                              tenant="beta") == 2
                assert sample(families, "ljy_tenant_inflight",
                              tenant="alpha") == 0

                per_shard = sum(
                    sample(families, "ljy_shard_requests_total",
                           shard=str(sid))
                    for sid in stats.shards)
                assert per_shard == sum(
                    s.requests for s in stats.shards.values()) == 10
                # The scrape itself is in flight while rendering.
                assert sample(families, "ljy_gateway_inflight") == 1
                # Route counters: 10 signs landed 200s and 2 landed 429s
                # before this scrape.
                assert sample(families, "ljy_gateway_requests_total",
                              route="/v1/sign", code="200") == 10
                assert sample(families, "ljy_gateway_requests_total",
                              route="/v1/sign", code="429") == 2
                await alpha.close()
                await beta.close()
        run(scenario())

    def test_histogram_series_are_cumulative_and_consistent(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                client = client_for(gateway, "alpha-key")
                for i in range(5):
                    await client.sign(b"latency %d" % i)
                families = parse_prometheus(await client.metrics())
                family = families["ljy_gateway_request_ms"]
                assert family["type"] == "histogram"
                buckets = sorted(
                    ((labels, value) for (name, labels), value
                     in family["samples"].items()
                     if name.endswith("_bucket") and
                     dict(labels)["route"] == "/v1/sign"),
                    key=lambda item: float(
                        dict(item[0])["le"].replace("+Inf", "inf")))
                counts = [value for _, value in buckets]
                assert counts == sorted(counts), "buckets not cumulative"
                assert dict(buckets[-1][0])["le"] == "+Inf"
                assert counts[-1] == sample(
                    families, "ljy_gateway_request_ms_count",
                    route="/v1/sign") == 5
                assert sample(families, "ljy_gateway_request_ms_sum",
                              route="/v1/sign") > 0
                await client.close()
        run(scenario())

    def test_label_values_are_escaped(self, handle):
        weird = 'we"ird\\te\nnant'
        tenants = [TenantConfig(name=weird, api_key="weird-key")]

        async def scenario():
            async with gateway_running(handle, tenants) as gateway:
                client = client_for(gateway, "weird-key")
                await client.sign(b"escape me")
                text = await client.metrics()
                families = parse_prometheus(text)
                assert sample(families, "ljy_tenant_admitted_total",
                              tenant=weird) == 1
                raw = [line for line in text.splitlines()
                       if line.startswith("ljy_tenant_admitted_total")]
                assert raw == [
                    'ljy_tenant_admitted_total'
                    '{tenant="we\\"ird\\\\te\\nnant"} 1']
                await client.close()
        run(scenario())

    def test_epoch_and_worker_families_appear(self, handle):
        async def scenario():
            async with gateway_running(handle) as gateway:
                admin = client_for(gateway, "alpha-key")
                await admin.admin_refresh()
                await admin.sign(b"after refresh")
                families = parse_prometheus(await admin.metrics())
                assert sample(families, "ljy_epoch") == 1
                assert sample(families, "ljy_epoch_transitions_total",
                              kind="refresh") == 1
                assert sample(families, "ljy_epoch_transitions_total",
                              kind="reshare") == 0
                assert sample(families, "ljy_epoch_pause_ms_count") == 1
                await admin.close()
        run(scenario())


# ---------------------------------------------------------------------------
# Real pairing end to end
# ---------------------------------------------------------------------------

@pytest.mark.bn254
def test_http_gateway_on_bn254(bn254_group):
    handle = ServiceHandle.dealer(bn254_group, 1, 3,
                                  rng=random.Random(41))

    async def scenario():
        service = SigningService(handle, ServiceConfig(
            num_shards=1, max_batch=4, max_wait_ms=5.0,
            rng=random.Random(42)))
        await service.start()
        gateway = HttpGateway(service, tenants=[
            TenantConfig(name="alpha", api_key="alpha-key", admin=True),
            TenantConfig(name="beta", api_key="beta-key",
                         rate_rps=0.5, burst=1.0),
        ])
        await gateway.start()
        codec = WireCodec(bn254_group)
        alpha = client_for(gateway, "alpha-key", codec=codec)
        result = await alpha.sign(b"bn254 over http")
        assert handle.verify(b"bn254 over http", result.signature)
        verdict = await alpha.verify(b"bn254 over http", result.signature)
        assert verdict.valid
        # The 401 and 429 edges behave identically on the real backend.
        with pytest.raises(GatewayError) as info:
            await client_for(gateway, "bogus").sign(b"x")
        assert info.value.status == 401
        beta = client_for(gateway, "beta-key", codec=codec)
        await beta.sign(b"beta burst")
        with pytest.raises(TenantQuotaError):
            await beta.sign(b"beta over")
        await alpha.close()
        await beta.close()
        await gateway.stop()
        await service.stop()
    run(scenario())
