"""Tests for the live key-lifecycle layer: epoch transitions
(refresh / reshare / retire+recover) through ``begin_epoch``'s
all-shards barrier, live ring resizes with queued-request migration,
worker-tier re-warming (process executor rebuild and the TCP ``C``
context-push frame), the WAL epoch guard, and random churn under load.

The invariants every test leans on: a transition never changes the
public key, LJY signatures are deterministic (so a request served
under epoch e or e+1 yields byte-identical signatures), and no request
is ever rejected *because* of a lifecycle event.
"""

import asyncio
import pickle
import random

import pytest

from repro.core.scheme import ServiceHandle
from repro.serialization import PartialSignJob, SignWindowJob
from repro.service import (
    ChurnFault, EpochStats, HandshakeError, RemoteWorkerPool,
    ServiceConfig, ServiceError, ShardPool, SigningService,
    StaleEpochError, TransportError, WorkerServer, WriteAheadLog,
)
from repro.service.types import PendingRequest, RequestKind
from repro.service.wal import scan_records
from repro.service.workers import execute_job
from repro.serialization import WireCodec


@pytest.fixture
def handle(toy_group):
    return ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(11))


def run(coroutine):
    return asyncio.run(coroutine)


# ---------------------------------------------------------------------------
# begin_epoch: the all-shards barrier
# ---------------------------------------------------------------------------

class TestBeginEpoch:
    def test_refresh_under_load_completes_everything(self, handle):
        async def scenario():
            service = SigningService(handle, ServiceConfig(
                num_shards=3, max_batch=4, max_wait_ms=1.0))
            async with service:
                before = service.handle.public_key.to_bytes()
                first = await service.sign(b"epoch msg 0")
                tasks = [
                    asyncio.create_task(service.sign(b"epoch msg %d" % i))
                    for i in range(24)
                ]
                pause_ms = await service.refresh(rng=random.Random(21))
                results = await asyncio.gather(*tasks)
                again = await service.sign(b"epoch msg 0")
                after = service.handle.public_key.to_bytes()
                return before, after, first, again, results, pause_ms, \
                    service.stats
        before, after, first, again, results, pause_ms, stats = \
            run(scenario())
        # The master key never moves; signatures are byte-identical
        # across the transition (deterministic signing).
        assert after == before
        assert again.signature.to_bytes() == first.signature.to_bytes()
        for position, result in enumerate(results):
            assert handle.verify(b"epoch msg %d" % position,
                                 result.signature)
        # Zero lifecycle rejections: everything admitted completed.
        assert stats.rejected == 0
        assert stats.completed == len(results) + 2
        assert stats.epochs.epoch == 1
        assert stats.epochs.transitions == 1
        assert stats.epochs.refreshes == 1
        assert stats.epochs.pauses_ms and pause_ms >= 0.0
        assert "epoch" in stats.summary()

    def test_reshare_rotates_committee_live(self, handle):
        async def scenario():
            service = SigningService(handle, ServiceConfig(num_shards=2))
            async with service:
                await service.reshare(2, (2, 3, 4, 5, 6),
                                      rng=random.Random(22))
                result = await service.sign(b"post-reshare")
                return result, sorted(service.handle.shares), \
                    service.stats.epochs
        result, committee, epochs = run(scenario())
        assert handle.verify(b"post-reshare", result.signature)
        assert committee == [2, 3, 4, 5, 6]
        assert epochs.reshares == 1 and epochs.epoch == 1

    def test_retire_then_recover_signer_signs_next_window(self, handle):
        # One shard => one quorum, rotation 0: signers (1, 2, 3).  After
        # retiring signer 3 the quorum re-forms without it; after
        # recovery (t+1 helpers re-derive the share) the very next
        # window is signed by the recovered player again.
        async def scenario():
            service = SigningService(handle, ServiceConfig(num_shards=1))
            async with service:
                quorum_before = list(service._pool.workers[0].quorum)
                await service.retire_signer(3)
                quorum_without = list(service._pool.workers[0].quorum)
                mid = await service.sign(b"while retired")
                await service.recover_signer(3)
                quorum_after = list(service._pool.workers[0].quorum)
                result = await service.sign(b"after recovery")
                return (quorum_before, quorum_without, quorum_after,
                        mid, result, service.stats.epochs)
        before, without, after, mid, result, epochs = run(scenario())
        assert 3 in before and 3 not in without and 3 in after
        assert handle.verify(b"while retired", mid.signature)
        assert handle.verify(b"after recovery", result.signature)
        assert epochs.recoveries == 1 and epochs.transitions == 2

    def test_rejects_wrong_epoch_step_and_changed_key(self, handle,
                                                     toy_group):
        async def scenario():
            service = SigningService(handle, ServiceConfig(num_shards=1))
            async with service:
                same_epoch = ServiceHandle(
                    handle.scheme, handle.public_key, handle.shares,
                    handle.verification_keys, epoch=0)
                with pytest.raises(ServiceError):
                    await service.begin_epoch(same_epoch)
                stranger = ServiceHandle.dealer(
                    toy_group, 2, 5, rng=random.Random(99))
                imposter = ServiceHandle(
                    stranger.scheme, stranger.public_key, stranger.shares,
                    stranger.verification_keys, epoch=1)
                with pytest.raises(ServiceError):
                    await service.begin_epoch(imposter)
                return service.stats.epochs.transitions
        assert run(scenario()) == 0

    def test_rejects_when_not_running(self, handle):
        async def scenario():
            service = SigningService(handle)
            with pytest.raises(ServiceError):
                await service.begin_epoch(
                    handle.refreshed(rng=random.Random(5)))
        run(scenario())


# ---------------------------------------------------------------------------
# Live resize: queued-request migration
# ---------------------------------------------------------------------------

def _queued_request(message: bytes, loop) -> PendingRequest:
    return PendingRequest(kind=RequestKind.SIGN, message=message,
                          enqueued_at=loop.time(),
                          future=loop.create_future())


class TestResize:
    def _pool(self, handle, num_shards, queue_depth=64):
        return ShardPool(handle, num_shards, max_batch=4, max_wait_ms=1.0,
                         queue_depth=queue_depth)

    def test_shrink_migrates_every_queued_request(self, handle):
        async def scenario():
            loop = asyncio.get_running_loop()
            pool = self._pool(handle, 4)
            messages = [b"resize %d" % i for i in range(32)]
            sources = {}
            for message in messages:
                worker = pool.worker_for(message)
                sources[message] = worker.shard_id
                worker.queue.put_nowait(_queued_request(message, loop))
            migrated = await pool.resize(2)
            return pool, sources, migrated
        pool, sources, migrated = run(scenario())
        assert sorted(pool.workers) == [0, 1]
        # Nothing dropped: every request is queued on its new ring home.
        landed = {}
        for shard_id, worker in pool.workers.items():
            while not worker.queue.empty():
                landed[worker.queue.get_nowait().message] = shard_id
        assert len(landed) == len(sources)
        moved = sum(1 for message, shard in landed.items()
                    if sources[message] != shard)
        assert migrated == moved > 0
        assert sum(w.stats.migrated for w in pool.workers.values()) \
            == migrated
        for message, shard in landed.items():
            assert pool.ring.shard_for(message) == shard

    def test_grow_keeps_unmoved_requests_in_place(self, handle):
        async def scenario():
            loop = asyncio.get_running_loop()
            pool = self._pool(handle, 2)
            for i in range(16):
                message = b"grow %d" % i
                pool.worker_for(message).queue.put_nowait(
                    _queued_request(message, loop))
            migrated = await pool.resize(6)
            return pool, migrated
        pool, migrated = run(scenario())
        assert sorted(pool.workers) == list(range(6))
        total = sum(w.queue.qsize() for w in pool.workers.values())
        assert total == 16
        assert 0 < migrated <= 16

    def test_overflowing_destination_grows_its_queue(self, handle):
        async def scenario():
            loop = asyncio.get_running_loop()
            pool = self._pool(handle, 4, queue_depth=4)
            count = 0
            for i in range(64):
                message = b"deep %d" % i
                worker = pool.worker_for(message)
                if worker.queue.full():
                    continue
                worker.queue.put_nowait(_queued_request(message, loop))
                count += 1
            await pool.resize(1)
            return pool, count
        pool, count = run(scenario())
        # Everything squeezed into the single surviving shard, past its
        # configured depth (migration must not shed admitted requests).
        assert pool.workers[0].queue.qsize() == count > 4
        assert pool.workers[0].accumulator.queue \
            is pool.workers[0].queue

    def test_resize_under_load_completes_everything(self, handle):
        async def scenario():
            service = SigningService(handle, ServiceConfig(
                num_shards=4, max_batch=4, max_wait_ms=1.0))
            async with service:
                tasks = [
                    asyncio.create_task(service.sign(b"live %d" % i))
                    for i in range(24)
                ]
                await service.resize(6)
                first_half = await asyncio.gather(*tasks)
                tasks = [
                    asyncio.create_task(service.sign(b"live b %d" % i))
                    for i in range(24)
                ]
                await service.resize(2)
                second_half = await asyncio.gather(*tasks)
                return first_half + second_half, service.stats
        results, stats = run(scenario())
        for result in results:
            assert handle.verify(result.message, result.signature)
        assert stats.rejected == 0 and stats.failed == 0
        assert stats.epochs.resizes == 2
        assert len(stats.epochs.pauses_ms) == 2

    def test_rejects_zero_shards(self, handle):
        async def scenario():
            pool = self._pool(handle, 2)
            with pytest.raises(ValueError):
                await pool.resize(0)
        run(scenario())


# ---------------------------------------------------------------------------
# Worker-tier re-warming
# ---------------------------------------------------------------------------

class TestWorkerRewarm:
    def test_stale_epoch_job_is_refused(self, handle):
        fresh = handle.refreshed(rng=random.Random(31))
        job = SignWindowJob(shard_id=0, epoch=0, messages=(b"stale",),
                            quorum=(1, 2, 3))
        with pytest.raises(StaleEpochError) as excinfo:
            execute_job(fresh, job)
        assert excinfo.value.job_epoch == 0
        assert excinfo.value.handle_epoch == 1

    def test_stale_epoch_error_pickles(self):
        error = pickle.loads(pickle.dumps(StaleEpochError(2, 3)))
        assert (error.job_epoch, error.handle_epoch) == (2, 3)

    def test_process_pool_rewarms_on_refresh(self, handle):
        async def scenario():
            service = SigningService(handle, ServiceConfig(
                num_shards=2, workers=2, max_batch=4, max_wait_ms=1.0))
            async with service:
                first = await service.sign(b"mp epoch")
                await service.refresh(rng=random.Random(41))
                again = await service.sign(b"mp epoch")
                return first, again, service.stats
        first, again, stats = run(scenario())
        assert again.signature.to_bytes() == first.signature.to_bytes()
        assert stats.workers.rewarms == 1

    def test_remote_worker_takes_context_push(self, handle):
        async def scenario():
            server = await WorkerServer(handle).start()
            pool = RemoteWorkerPool(handle, [server.address])
            pool.start()
            try:
                old = await pool.run_job(PartialSignJob(
                    shard_id=0, epoch=0, message=b"tcp epoch",
                    signers=(1, 2, 3)))
                fresh = handle.refreshed(rng=random.Random(51))
                await pool.update_handle(fresh)
                new = await pool.run_job(PartialSignJob(
                    shard_id=0, epoch=1, message=b"tcp epoch",
                    signers=(1, 2, 3)))
                return old, new, pool.stats, server
            finally:
                await pool.aclose()
                await server.aclose()
        old, new, stats, server = run(scenario())
        # Same master key => byte-identical partials across the refresh
        # would only hold for the combined signature; partials change
        # with the shares — what matters is both jobs served, one
        # rewarm counted, and the server now holds the new epoch.
        assert stats.jobs == 2 and stats.rewarms == 1
        assert server._handle.epoch == 1

    def test_remote_worker_refuses_stale_push(self, handle):
        async def scenario():
            fresh = handle.refreshed(rng=random.Random(61))
            server = await WorkerServer(fresh).start()
            pool = RemoteWorkerPool(fresh, [server.address])
            pool.start()
            try:
                # Pushing epoch 1 onto a worker already at epoch 1:
                # refused (must be strictly newer), endpoint
                # quarantined, pool raises — nothing silently served.
                with pytest.raises(TransportError):
                    await pool.update_handle(
                        handle.refreshed(rng=random.Random(62)))
                return pool._endpoints[0].misprovisioned
            finally:
                await pool.aclose()
                await server.aclose()
        assert run(scenario()) is not None


# ---------------------------------------------------------------------------
# WAL: epochs are durable, stale-epoch restarts are refused
# ---------------------------------------------------------------------------

class TestWalEpoch:
    def test_stale_restart_refused_then_new_context_replays(
            self, handle, tmp_path):
        wal_path = tmp_path / "epoch.wal"
        fresh = handle.refreshed(rng=random.Random(71))

        codec = WireCodec(handle.scheme.group)
        wal = WriteAheadLog.open(wal_path, codec)
        wal.append_admit(b"carried across the crash", epoch=1)
        wal.sync()
        wal.close()

        async def stale_start():
            service = SigningService(handle, ServiceConfig(
                num_shards=1, wal_path=wal_path))
            with pytest.raises(ServiceError):
                await service.start()
            assert not service.running

        async def fresh_start():
            service = SigningService(fresh, ServiceConfig(
                num_shards=1, wal_path=wal_path))
            async with service:
                recovered = service.stats.recovered
            return recovered

        run(stale_start())
        assert run(fresh_start()) == 1
        # The obligation settled under the correct (new) key material.
        records, _, _ = scan_records(wal_path, codec)
        kinds = [type(record).__name__ for record in records]
        assert kinds.count("WalDoneRecord") == 1

    def test_admits_carry_the_current_epoch(self, handle, tmp_path):
        wal_path = tmp_path / "live.wal"

        async def scenario():
            service = SigningService(handle, ServiceConfig(
                num_shards=1, wal_path=wal_path))
            async with service:
                await service.sign(b"epoch zero")
                await service.refresh(rng=random.Random(81))
                await service.sign(b"epoch one")
                return service.wal.max_epoch_seen
        assert run(scenario()) == 1


# ---------------------------------------------------------------------------
# Chaos: random lifecycle churn under load
# ---------------------------------------------------------------------------

class TestChurn:
    def test_churn_under_load_completes_everything(self, handle):
        async def scenario():
            rng = random.Random(91)
            churn = ChurnFault(rng, min_shards=1, max_shards=5)
            service = SigningService(handle, ServiceConfig(
                num_shards=3, max_batch=4, max_wait_ms=1.0))
            async with service:
                before = service.handle.public_key.to_bytes()
                results = []
                for round_no in range(6):
                    tasks = [
                        asyncio.create_task(service.sign(
                            b"churn %d/%d" % (round_no, i)))
                        for i in range(8)
                    ]
                    await churn.step(service)
                    results.extend(await asyncio.gather(*tasks))
                after = service.handle.public_key.to_bytes()
                return before, after, results, churn, service.stats
        before, after, results, churn, stats = run(scenario())
        assert after == before
        for result in results:
            assert handle.verify(result.message, result.signature)
        assert stats.rejected == 0 and stats.failed == 0
        assert len(churn.actions) == 6
        # Six seeded steps cover more than one action kind.
        assert len({action for action, _ in churn.actions}) >= 2

    def test_churn_validates_bounds(self):
        with pytest.raises(ValueError):
            ChurnFault(random.Random(1), min_shards=0)
        with pytest.raises(ValueError):
            ChurnFault(random.Random(1), min_shards=4, max_shards=2)


# ---------------------------------------------------------------------------
# EpochStats plumbing
# ---------------------------------------------------------------------------

class TestEpochStats:
    def test_percentiles(self):
        epochs = EpochStats()
        assert epochs.pause_p99_ms == 0.0 and epochs.pause_max_ms == 0.0
        epochs.pauses_ms.extend(float(v) for v in range(1, 101))
        assert epochs.pause_p99_ms == 99.0
        assert epochs.pause_max_ms == 100.0

    def test_summary_silent_without_transitions(self, handle):
        async def scenario():
            service = SigningService(handle, ServiceConfig(num_shards=1))
            async with service:
                await service.sign(b"quiet")
            return service.stats.summary()
        assert "epoch" not in run(scenario())
