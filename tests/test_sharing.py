"""Tests for Shamir, Feldman VSS and Pedersen VSS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.groups import get_group
from repro.sharing.feldman import FeldmanVSS
from repro.sharing.pedersen_vss import PedersenVSS, commitment_eval
from repro.sharing.shamir import (
    reconstruct, share_secret, validate_threshold,
)

GROUP = get_group("toy")
ORDER = GROUP.order


class TestValidateThreshold:
    @pytest.mark.parametrize("t,n", [(0, 1), (1, 2), (2, 5), (3, 7)])
    def test_valid(self, t, n):
        validate_threshold(t, n)

    @pytest.mark.parametrize("t,n", [(-1, 3), (3, 3), (5, 2), (1, 0)])
    def test_invalid(self, t, n):
        with pytest.raises(ParameterError):
            validate_threshold(t, n)


class TestShamir:
    @given(secret=st.integers(min_value=0, max_value=ORDER - 1))
    @settings(max_examples=20)
    def test_reconstruct_from_threshold(self, secret):
        sharing = share_secret(secret, t=2, n=5, modulus=ORDER)
        subset = {i: sharing.shares[i] for i in (1, 3, 5)}
        assert reconstruct(subset, ORDER) == secret

    def test_reconstruct_from_any_subset(self, rng):
        sharing = share_secret(777, t=2, n=6, modulus=ORDER, rng=rng)
        import itertools
        for subset in itertools.combinations(range(1, 7), 3):
            shares = {i: sharing.shares[i] for i in subset}
            assert reconstruct(shares, ORDER) == 777

    def test_too_few_shares_fail(self, rng):
        sharing = share_secret(12345, t=3, n=7, modulus=ORDER, rng=rng)
        subset = {i: sharing.shares[i] for i in (1, 2, 3)}
        assert reconstruct(subset, ORDER) != 12345

    def test_extra_shares_ok(self, rng):
        sharing = share_secret(999, t=1, n=4, modulus=ORDER, rng=rng)
        assert reconstruct(sharing.shares, ORDER) == 999

    def test_deterministic_with_rng(self):
        import random
        s1 = share_secret(5, 2, 5, ORDER, rng=random.Random(1))
        s2 = share_secret(5, 2, 5, ORDER, rng=random.Random(1))
        assert s1.shares == s2.shares


class TestFeldman:
    def test_valid_shares_verify(self, rng):
        g = GROUP.derive_g1("feldman:g")
        vss = FeldmanVSS.deal(GROUP, g, secret=42, t=2, n=5, rng=rng)
        for i in range(1, 6):
            assert FeldmanVSS.verify_share(
                GROUP, g, vss.commitments, i, vss.share_for(i))

    def test_tampered_share_rejected(self, rng):
        g = GROUP.derive_g1("feldman:g")
        vss = FeldmanVSS.deal(GROUP, g, secret=42, t=2, n=5, rng=rng)
        assert not FeldmanVSS.verify_share(
            GROUP, g, vss.commitments, 1, vss.share_for(1) + 1)

    def test_share_for_wrong_index_rejected(self, rng):
        g = GROUP.derive_g1("feldman:g")
        vss = FeldmanVSS.deal(GROUP, g, secret=42, t=2, n=5, rng=rng)
        assert not FeldmanVSS.verify_share(
            GROUP, g, vss.commitments, 2, vss.share_for(1))

    def test_leaks_secret_commitment(self, rng):
        # The documented uniformity leak: C_0 = g^secret is public.
        g = GROUP.derive_g1("feldman:g")
        vss = FeldmanVSS.deal(GROUP, g, secret=42, t=2, n=5, rng=rng)
        assert vss.public_secret_commitment() == g ** 42


class TestPedersenVSS:
    def _setup(self, rng, secret_pair=None):
        g_z = GROUP.derive_g2("pvss:g_z")
        g_r = GROUP.derive_g2("pvss:g_r")
        vss = PedersenVSS.deal(GROUP, g_z, g_r, t=2, n=5,
                               secret_pair=secret_pair, rng=rng)
        return g_z, g_r, vss

    def test_valid_shares_verify(self, rng):
        g_z, g_r, vss = self._setup(rng)
        for i in range(1, 6):
            assert PedersenVSS.verify_share(
                GROUP, g_z, g_r, vss.commitments, i, vss.share_for(i))

    def test_tampered_a_rejected(self, rng):
        g_z, g_r, vss = self._setup(rng)
        a, b = vss.share_for(3)
        assert not PedersenVSS.verify_share(
            GROUP, g_z, g_r, vss.commitments, 3, (a + 1, b))

    def test_tampered_b_rejected(self, rng):
        g_z, g_r, vss = self._setup(rng)
        a, b = vss.share_for(3)
        assert not PedersenVSS.verify_share(
            GROUP, g_z, g_r, vss.commitments, 3, (a, b + 1))

    def test_fixed_secret_pair(self, rng):
        _, _, vss = self._setup(rng, secret_pair=(0, 0))
        assert vss.secret_pair == (0, 0)
        assert vss.commitments[0].is_identity()

    def test_commitment_count(self, rng):
        _, _, vss = self._setup(rng)
        assert len(vss.commitments) == 3   # t + 1

    def test_shares_interpolate_to_secret(self, rng):
        from repro.math.lagrange import interpolate_at
        _, _, vss = self._setup(rng)
        a_shares = {i: vss.share_for(i)[0] for i in (1, 2, 3)}
        b_shares = {i: vss.share_for(i)[1] for i in (1, 2, 3)}
        assert interpolate_at(a_shares, ORDER) == vss.secret_pair[0]
        assert interpolate_at(b_shares, ORDER) == vss.secret_pair[1]

    def test_commitment_eval_matches_shares(self, rng):
        g_z, g_r, vss = self._setup(rng)
        for i in (1, 4):
            a, b = vss.share_for(i)
            assert commitment_eval(GROUP, vss.commitments, i) == \
                (g_z ** a) * (g_r ** b)

    def test_hiding_across_dealings(self, rng):
        """Two dealings of different secrets produce commitments that are
        not trivially distinguishable by the constant term alone (the
        Pedersen masking term b randomizes it)."""
        g_z = GROUP.derive_g2("pvss:g_z")
        g_r = GROUP.derive_g2("pvss:g_r")
        vss1 = PedersenVSS.deal(GROUP, g_z, g_r, 2, 5,
                                secret_pair=(1, None) if False else None,
                                rng=rng)
        vss2 = PedersenVSS.deal(GROUP, g_z, g_r, 2, 5, rng=rng)
        assert vss1.commitments[0] != vss2.commitments[0]
