"""Tests for the generic Appendix D constructions (D.1 ROM, D.2 standard)."""

import pytest

from repro.core.generic_rom import GenericROMSignature
from repro.core.generic_standard import (
    D2Params, GenericStandardModelSignature,
)
from repro.errors import ParameterError
from repro.groups import get_group
from repro.lhsps.onetime import DPLHSPS
from repro.lhsps.sdp_onetime import SDPLHSPS


class TestGenericROM:
    @pytest.fixture(params=[(1, DPLHSPS), (2, SDPLHSPS)],
                    ids=["K1-DP", "K2-SDP"])
    def scheme(self, request, toy_group):
        k, lhsps_cls = request.param
        return GenericROMSignature(
            lhsps_cls(toy_group, dimension=k + 1), k_linear=k)

    def test_roundtrip(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        signature = scheme.sign(kp.sk, b"generic")
        assert scheme.verify(kp.pk, b"generic", signature)

    def test_wrong_message_rejected(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        signature = scheme.sign(kp.sk, b"m1")
        assert not scheme.verify(kp.pk, b"m2", signature)

    def test_wrong_key_rejected(self, scheme, rng):
        kp1 = scheme.keygen(rng=rng)
        kp2 = scheme.keygen(rng=rng)
        signature = scheme.sign(kp1.sk, b"m")
        assert not scheme.verify(kp2.pk, b"m", signature)

    def test_hash_dimension(self, scheme):
        vector = scheme.hash_message(b"m")
        assert len(vector) == scheme.k_linear + 1

    def test_dimension_mismatch_rejected(self, toy_group):
        with pytest.raises(ParameterError):
            GenericROMSignature(DPLHSPS(toy_group, dimension=3), k_linear=1)

    def test_specializes_to_main_scheme_shape(self, toy_group, rng):
        """K = 1 with the DP LHSPS gives 2-element signatures — the
        centralized version of the Section 3 scheme."""
        scheme = GenericROMSignature(
            DPLHSPS(toy_group, dimension=2), k_linear=1)
        kp = scheme.keygen(rng=rng)
        signature = scheme.sign(kp.sk, b"m")
        assert len(signature.components) == 2


class TestGenericStandardModel:
    @pytest.fixture(scope="class")
    def params(self):
        return D2Params.generate(get_group("toy-symmetric"), bit_length=16)

    @pytest.fixture(params=[DPLHSPS, SDPLHSPS], ids=["DP", "SDP"])
    def scheme(self, request, params):
        group = get_group("toy-symmetric")
        return GenericStandardModelSignature(
            request.param(group, dimension=1), params)

    def test_roundtrip(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        signature = scheme.sign_with_pk(kp.sk, kp.pk, b"m", rng=rng)
        assert scheme.verify(kp.pk, b"m", signature)

    def test_wrong_message_rejected(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        signature = scheme.sign_with_pk(kp.sk, kp.pk, b"m", rng=rng)
        assert not scheme.verify(kp.pk, b"other", signature)

    def test_signatures_randomized(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        s1 = scheme.sign_with_pk(kp.sk, kp.pk, b"m", rng=rng)
        s2 = scheme.sign_with_pk(kp.sk, kp.pk, b"m", rng=rng)
        assert s1.to_bytes() != s2.to_bytes()

    def test_requires_symmetric_pairing(self, toy_group):
        with pytest.raises(ParameterError):
            D2Params.generate(toy_group, bit_length=8)

    def test_requires_dimension_one(self, params):
        group = get_group("toy-symmetric")
        with pytest.raises(ParameterError):
            GenericStandardModelSignature(
                DPLHSPS(group, dimension=2), params)
