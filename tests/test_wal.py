"""Tests for the crash-safe durability layer: WAL record codecs, the
on-disk log (torn tails, orphan settlements, replay bookkeeping),
service-level recovery on both group backends, and request deadlines.

The crash simulations write admit records without settlements — exactly
the disk state a SIGKILL leaves behind — then start a service against
the same path and check the recovery contract: every obligation settles
exactly once, with a signature that verifies under the unchanged public
key, and a second restart has nothing left to replay.
"""

import asyncio
import random
import zlib

import pytest

from repro.core.scheme import ServiceHandle
from repro.errors import SerializationError
from repro.serialization import WalAdmitRecord, WalDoneRecord, WireCodec
from repro.service import (
    RequestExpiredError, ServiceConfig, SigningService, WriteAheadLog,
)
from repro.service.wal import frame_record, scan_records


@pytest.fixture
def handle(toy_group):
    return ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(11))


@pytest.fixture
def codec(toy_group):
    return WireCodec(toy_group)


def run(coroutine):
    return asyncio.run(coroutine)


def write_admits(path, codec, messages, start_id=1):
    """Craft the post-SIGKILL disk state: admits, no settlements."""
    with open(path, "ab") as log:
        for offset, message in enumerate(messages):
            log.write(frame_record(codec.encode_wal_record(
                WalAdmitRecord(request_id=start_id + offset,
                               message=message))))


# ---------------------------------------------------------------------------
# Record codecs
# ---------------------------------------------------------------------------

class TestWalRecordCodec:
    def test_admit_round_trip(self, codec):
        record = WalAdmitRecord(request_id=7, message=b"durable doc")
        blob = codec.encode_wal_record(record)
        assert codec.decode_wal_record(blob) == record
        assert codec.encode_wal_record(codec.decode_wal_record(blob)) == blob

    def test_done_round_trips_signature_and_rejection(self, codec, handle):
        signature = handle.sign(b"signed")
        done = WalDoneRecord(request_id=7, signature=signature)
        decoded = codec.decode_wal_record(codec.encode_wal_record(done))
        assert decoded.request_id == 7
        assert codec.encode_signature(decoded.signature) == \
            codec.encode_signature(signature)

        shed = WalDoneRecord(request_id=9, reason="deadline exceeded")
        decoded = codec.decode_wal_record(codec.encode_wal_record(shed))
        assert decoded == shed
        assert decoded.signature is None

    def test_truncation_trailing_and_bad_kind_rejected(self, codec):
        blob = codec.encode_wal_record(
            WalAdmitRecord(request_id=1, message=b"m"))
        with pytest.raises(SerializationError):
            codec.decode_wal_record(blob[:-1])
        with pytest.raises(SerializationError):
            codec.decode_wal_record(blob + b"\x00")
        with pytest.raises(SerializationError):
            codec.decode_wal_record(b"?" + blob[1:])

    def test_bad_done_status_byte_rejected(self, codec):
        blob = bytearray(codec.encode_wal_record(
            WalDoneRecord(request_id=1, reason="r")))
        blob[9] = 2                 # kind(1) + u64 id(8), then status
        with pytest.raises(SerializationError, match="status"):
            codec.decode_wal_record(bytes(blob))


# ---------------------------------------------------------------------------
# The on-disk log
# ---------------------------------------------------------------------------

class TestLogScan:
    def test_missing_and_empty_files_scan_clean(self, tmp_path, codec):
        records, good, torn = scan_records(tmp_path / "absent.wal", codec)
        assert (records, good, torn) == ([], 0, 0)
        empty = tmp_path / "empty.wal"
        empty.write_bytes(b"")
        assert scan_records(empty, codec) == ([], 0, 0)

    @pytest.mark.parametrize("torn_tail", [
        b"\x00\x00",                             # short storage header
        b"\x00\x00\x00\x40\x00\x00\x00\x00ab",   # short payload
        b"\xff\xff\xff\xff\x00\x00\x00\x00",     # oversized length field
    ])
    def test_torn_tail_keeps_valid_prefix(self, tmp_path, codec,
                                          torn_tail):
        path = tmp_path / "torn.wal"
        write_admits(path, codec, [b"one", b"two"])
        good_bytes = path.stat().st_size
        with open(path, "ab") as log:
            log.write(torn_tail)
        records, good, torn = scan_records(path, codec)
        assert [record.message for record in records] == [b"one", b"two"]
        assert good == good_bytes
        assert torn == len(torn_tail)

    def test_crc_mismatch_cuts_the_scan(self, tmp_path, codec):
        path = tmp_path / "flipped.wal"
        write_admits(path, codec, [b"ok", b"corrupted"])
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF            # flip a bit in the last payload
        path.write_bytes(bytes(data))
        records, _, torn = scan_records(path, codec)
        assert [record.message for record in records] == [b"ok"]
        assert torn > 0

    def test_open_truncates_torn_tail_once(self, tmp_path, codec):
        path = tmp_path / "truncate.wal"
        write_admits(path, codec, [b"kept"])
        with open(path, "ab") as log:
            log.write(b"\x00\x00\x00\x08\xde\xad\xbe\xef")
        wal = WriteAheadLog.open(path, codec)
        assert wal.stats.torn_bytes == 8
        assert list(wal.pending.values()) == [b"kept"]
        wal.append_admit(b"appended after truncation")
        wal.close()
        records, _, torn = scan_records(path, codec)
        assert torn == 0            # the tail was cut, appends align
        assert [record.message for record in records] == \
            [b"kept", b"appended after truncation"]

    def test_orphan_done_is_tolerated_and_counted(self, tmp_path, codec):
        path = tmp_path / "orphan.wal"
        with open(path, "ab") as log:
            log.write(frame_record(codec.encode_wal_record(
                WalDoneRecord(request_id=42, reason="no admit"))))
        wal = WriteAheadLog.open(path, codec)
        assert wal.stats.orphan_dones == 1
        assert wal.stats.recovered == 0
        assert not wal.pending
        # Ids keep climbing past the orphan — no reuse.
        assert wal.append_admit(b"next") == 43
        wal.close()

    def test_pending_tracks_admits_until_settled(self, tmp_path, codec,
                                                 handle):
        wal = WriteAheadLog.open(tmp_path / "pending.wal", codec)
        first = wal.append_admit(b"first")
        second = wal.append_admit(b"second")
        assert list(wal.pending) == [first, second]
        wal.append_done(first, signature=handle.sign(b"first"))
        wal.append_done(second, reason="shed")
        assert not wal.pending
        wal.sync()
        assert wal.stats.syncs == 1
        wal.sync()                  # clean log: no second fsync
        assert wal.stats.syncs == 1
        wal.close()


# ---------------------------------------------------------------------------
# Service-level recovery
# ---------------------------------------------------------------------------

class TestServiceRecovery:
    @pytest.fixture(params=[
        "toy", pytest.param("bn254", marks=pytest.mark.bn254)])
    def backend_handle(self, request, toy_group, bn254_group):
        group = toy_group if request.param == "toy" else bn254_group
        return ServiceHandle.dealer(group, 2, 5, rng=random.Random(11))

    def config(self, wal_path, **overrides):
        settings = dict(num_shards=2, max_batch=4, max_wait_ms=2.0,
                        wal_path=wal_path)
        settings.update(overrides)
        return ServiceConfig(**settings)

    def test_clean_run_leaves_no_pending_obligations(self, handle,
                                                     tmp_path):
        wal_path = tmp_path / "service.wal"

        async def scenario():
            async with SigningService(handle,
                                      self.config(wal_path)) as service:
                results = await asyncio.gather(
                    *(service.sign(b"doc %d" % i) for i in range(10)))
                await service.verify(results[0].message,
                                     results[0].signature)
            return service

        service = run(scenario())
        assert service.stats.completed == 11
        wal = WriteAheadLog.open(wal_path, WireCodec(handle.scheme.group))
        assert not wal.pending
        # Verify requests are stateless reads: 10 admits, not 11.
        assert sum(1 for r in scan_records(wal_path, wal.codec)[0]
                   if isinstance(r, WalAdmitRecord)) == 10
        wal.close()

    def test_replay_settles_crashed_admits_on_both_backends(
            self, backend_handle, tmp_path):
        """The tentpole contract end to end: unacknowledged admits are
        replayed through the normal signing path at start-up and every
        signature verifies under the unchanged public key."""
        handle = backend_handle
        group = handle.scheme.group
        codec = WireCodec(group)
        wal_path = tmp_path / "crash.wal"
        messages = [b"lost %d" % i for i in range(6)]
        write_admits(wal_path, codec, messages)

        async def scenario():
            async with SigningService(handle,
                                      self.config(wal_path)) as service:
                stats = service.stats.recovered
            return service, stats

        service, recovered = run(scenario())
        assert recovered == 6
        assert service.stats.completed == 6
        records, _, _ = scan_records(wal_path, codec)
        dones = {r.request_id: r for r in records
                 if isinstance(r, WalDoneRecord)}
        admits = [r for r in records if isinstance(r, WalAdmitRecord)]
        assert len(admits) == 6 and len(dones) == 6
        for admit in admits:
            assert handle.verify(admit.message,
                                 dones[admit.request_id].signature)

    def test_double_replay_is_idempotent(self, handle, tmp_path):
        """A crash between sign and ack replays the request; the replay
        reproduces the byte-identical signature (deterministic partial
        signing), and a second restart finds nothing to do."""
        codec = WireCodec(handle.scheme.group)
        first_wal = tmp_path / "first.wal"
        second_wal = tmp_path / "second.wal"
        write_admits(first_wal, codec, [b"sign once"])
        write_admits(second_wal, codec, [b"sign once"])

        async def recover(wal_path):
            async with SigningService(handle,
                                      self.config(wal_path)) as service:
                pass
            return service.stats.recovered

        assert run(recover(first_wal)) == 1
        assert run(recover(second_wal)) == 1
        for path in (first_wal, second_wal):
            assert run(recover(path)) == 0      # nothing left to replay
        signatures = []
        for path in (first_wal, second_wal):
            records, _, _ = scan_records(path, codec)
            done = next(r for r in records if isinstance(r, WalDoneRecord))
            signatures.append(codec.encode_signature(done.signature))
        assert signatures[0] == signatures[1]

    def test_recovery_after_torn_tail(self, handle, tmp_path):
        codec = WireCodec(handle.scheme.group)
        wal_path = tmp_path / "torn-crash.wal"
        write_admits(wal_path, codec, [b"whole"])
        with open(wal_path, "ab") as log:
            log.write(b"\x00\x00\x01\x00partial write then SIGKILL")

        async def scenario():
            async with SigningService(handle,
                                      self.config(wal_path)) as service:
                pass
            return service

        service = run(scenario())
        assert service.stats.recovered == 1
        assert service.stats.completed == 1
        records, _, torn = scan_records(wal_path, codec)
        assert torn == 0
        done = next(r for r in records if isinstance(r, WalDoneRecord))
        assert handle.verify(b"whole", done.signature)


# ---------------------------------------------------------------------------
# Request deadlines
# ---------------------------------------------------------------------------

class TestRequestDeadlines:
    def test_expired_request_is_shed_with_typed_error(self, handle):
        """A request whose deadline passes while it queues is shed at
        window formation — typed error, counted, never signed late."""
        config = ServiceConfig(num_shards=1, max_batch=16,
                               max_wait_ms=150.0, request_deadline_s=0.02)

        async def scenario():
            async with SigningService(handle, config) as service:
                with pytest.raises(RequestExpiredError, match="deadline"):
                    await service.sign(b"too late")
            return service

        service = run(scenario())
        assert service.stats.expired == 1
        assert service.stats.failed == 0
        assert sum(s.expired for s in service.stats.shards.values()) == 1

    def test_unexpired_requests_sign_normally(self, handle):
        config = ServiceConfig(num_shards=1, max_batch=4, max_wait_ms=2.0,
                               request_deadline_s=30.0)

        async def scenario():
            async with SigningService(handle, config) as service:
                results = await asyncio.gather(
                    *(service.sign(b"on time %d" % i) for i in range(4)))
            return service, results

        service, results = run(scenario())
        assert all(handle.verify(r.message, r.signature) for r in results)
        assert service.stats.expired == 0

    def test_expired_request_settles_its_wal_obligation(self, handle,
                                                        tmp_path):
        """Expiry is an *answer*: the WAL obligation settles with a
        rejection reason, so a restart does not resurrect the request."""
        wal_path = tmp_path / "expired.wal"
        config = ServiceConfig(num_shards=1, max_batch=16,
                               max_wait_ms=150.0, request_deadline_s=0.02,
                               wal_path=wal_path)

        async def scenario():
            async with SigningService(handle, config) as service:
                with pytest.raises(RequestExpiredError):
                    await service.sign(b"expired but settled")

        run(scenario())
        codec = WireCodec(handle.scheme.group)
        wal = WriteAheadLog.open(wal_path, codec)
        assert not wal.pending
        wal.close()
        records, _, _ = scan_records(wal_path, codec)
        done = next(r for r in records if isinstance(r, WalDoneRecord))
        assert done.signature is None
        assert "RequestExpiredError" in done.reason
