"""Tests for size accounting and the bench table renderer."""

import pytest

from repro.bench.tables import Table, format_table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.serialization import (
    bits, measure_bls, measure_ljy_rom, scalar_bits,
)


class TestSizeAccounting:
    def test_scalar_bits(self, toy_group):
        assert scalar_bits(toy_group.order) == 256

    def test_section3_sizes(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        signature = toy_scheme.combine(
            pk, vks, b"m",
            [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
        report = measure_ljy_rom(toy_scheme, pk, shares[1], partial,
                                 signature)
        assert report.signature_bits == 512          # the paper's claim
        assert report.share_bits == 1024             # 4 scalars, O(1) in n
        assert report.public_key_bits == 1024        # 2 G_hat elements
        assert report.partial_signature_bits == 512

    def test_bls_sizes(self, toy_group, rng):
        from repro.baselines.bls_threshold import BoldyrevaThresholdBLS
        scheme = BoldyrevaThresholdBLS(toy_group, t=1, n=3)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        partial = scheme.share_sign(1, shares[1], b"m")
        signature = scheme.combine(
            vks, b"m", [scheme.share_sign(i, shares[i], b"m")
                        for i in (1, 2)])
        report = measure_bls(toy_group, pk, partial, signature)
        assert report.signature_bits == 256
        assert report.share_bits == 256

    def test_bits_helper(self, toy_group):
        assert bits(toy_group.g1_generator()) == 256
        assert bits(toy_group.g2_generator()) == 512

    def test_as_row(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        signature = toy_scheme.combine(
            pk, vks, b"m",
            [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
        row = measure_ljy_rom(toy_scheme, pk, shares[1], partial,
                              signature).as_row()
        assert set(row) == {"scheme", "signature_bits", "public_key_bits",
                            "share_bits", "partial_bits"}


class TestTables:
    def test_render_basic(self):
        table = Table("demo", ["a", "b"])
        table.add_row(a=1, b="x")
        table.add_row(a=2.5, b="y")
        text = table.render()
        assert "demo" in text
        assert "2.500" in text
        assert text.count("\n") == 4

    def test_missing_column_rejected(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)

    def test_float_formats(self):
        text = format_table("t", ["v"], [{"v": 0.000001}, {"v": 1234.5},
                                         {"v": 0}, {"v": 0.5}])
        assert "1.00e-06" in text
        assert "1234.5" in text

    def test_empty_table_renders(self):
        assert "t" in format_table("t", ["col"], [])
