"""Tests for size accounting, the bench table renderer, and the wire
format (round-trippable codecs for partials, signatures, verification
keys, shares, service contexts and window jobs on both backends)."""

import random

import pytest

from repro.bench.tables import Table, format_table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme, ServiceHandle
from repro.errors import SerializationError
from repro.serialization import (
    PartialSignJob, PartialSignOutcome, SignWindowJob, SignWindowOutcome,
    VerifyWindowJob, VerifyWindowOutcome, WireCodec, bits,
    decode_service_context, encode_service_context, measure_bls,
    measure_ljy_rom, scalar_bits,
)


class TestSizeAccounting:
    def test_scalar_bits(self, toy_group):
        assert scalar_bits(toy_group.order) == 256

    def test_section3_sizes(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        signature = toy_scheme.combine(
            pk, vks, b"m",
            [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
        report = measure_ljy_rom(toy_scheme, pk, shares[1], partial,
                                 signature)
        assert report.signature_bits == 512          # the paper's claim
        assert report.share_bits == 1024             # 4 scalars, O(1) in n
        assert report.public_key_bits == 1024        # 2 G_hat elements
        assert report.partial_signature_bits == 512

    def test_bls_sizes(self, toy_group, rng):
        from repro.baselines.bls_threshold import BoldyrevaThresholdBLS
        scheme = BoldyrevaThresholdBLS(toy_group, t=1, n=3)
        pk, shares, vks = scheme.dealer_keygen(rng=rng)
        partial = scheme.share_sign(1, shares[1], b"m")
        signature = scheme.combine(
            vks, b"m", [scheme.share_sign(i, shares[i], b"m")
                        for i in (1, 2)])
        report = measure_bls(toy_group, pk, partial, signature)
        assert report.signature_bits == 256
        assert report.share_bits == 256

    def test_bits_helper(self, toy_group):
        assert bits(toy_group.g1_generator()) == 256
        assert bits(toy_group.g2_generator()) == 512

    def test_as_row(self, toy_scheme, toy_keys):
        pk, shares, vks = toy_keys
        partial = toy_scheme.share_sign(shares[1], b"m")
        signature = toy_scheme.combine(
            pk, vks, b"m",
            [toy_scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
        row = measure_ljy_rom(toy_scheme, pk, shares[1], partial,
                              signature).as_row()
        assert set(row) == {"scheme", "signature_bits", "public_key_bits",
                            "share_bits", "partial_bits"}


# ---------------------------------------------------------------------------
# Wire format round trips (both backends)
# ---------------------------------------------------------------------------

#: Messages chosen to stress the framing: empty, binary, long, and
#: byte strings that look like the format's own field markers.
WIRE_MESSAGES = [b"", b"plain", b"\x00" * 7, b"\xff\x00S V P", b"x" * 3000]


def _handles(request):
    """A (handle, codec, rng) triple on the requested backend."""
    group = request.getfixturevalue(
        "bn254_group" if request.param == "bn254" else "toy_group")
    handle = ServiceHandle.dealer(group, 2, 5, rng=random.Random(99))
    return handle, WireCodec(group), random.Random(7)


@pytest.fixture(params=["toy", pytest.param("bn254",
                                            marks=pytest.mark.bn254)])
def wire(request):
    return _handles(request)


class TestWireRoundTrips:
    """encode -> decode -> encode identity for every wire object.

    Both directions are asserted: the decoded object equals the
    original (object identity of the value), and re-encoding the
    decoded object reproduces the blob byte for byte (encoding
    canonicity — what lets a combiner hash/deduplicate blobs).
    """

    def test_partial_signature(self, wire):
        handle, codec, _ = wire
        for message in WIRE_MESSAGES:
            for partial in handle.partials_for(message):
                blob = codec.encode_partial(partial)
                decoded = codec.decode_partial(blob)
                assert decoded == partial
                assert codec.encode_partial(decoded) == blob

    def test_signature(self, wire):
        handle, codec, _ = wire
        for message in WIRE_MESSAGES:
            signature = handle.sign(message)
            blob = codec.encode_signature(signature)
            decoded = codec.decode_signature(blob)
            assert decoded == signature
            assert codec.encode_signature(decoded) == blob
            assert handle.verify(message, decoded)

    def test_verification_key(self, wire):
        handle, codec, _ = wire
        for vk in handle.verification_keys.values():
            blob = codec.encode_verification_key(vk)
            decoded = codec.decode_verification_key(blob)
            assert decoded == vk
            assert codec.encode_verification_key(decoded) == blob

    def test_private_key_share(self, wire):
        handle, codec, _ = wire
        order = handle.scheme.group.order
        for share in handle.shares.values():
            blob = codec.encode_share(share)
            decoded = codec.decode_share(blob)
            assert decoded == share.reduce(order)
            assert codec.encode_share(decoded) == blob

    def test_window_jobs(self, wire):
        handle, codec, rng = wire
        jobs = [
            SignWindowJob(shard_id=3, messages=tuple(WIRE_MESSAGES),
                          quorum=tuple(handle.quorum())),
            SignWindowJob(shard_id=0, messages=(), quorum=()),
            VerifyWindowJob(
                shard_id=1, messages=tuple(WIRE_MESSAGES),
                signatures=tuple(handle.sign(message)
                                 for message in WIRE_MESSAGES)),
            PartialSignJob(shard_id=2, message=b"\x00partial",
                           signers=(5, 1, 3)),
        ]
        for job in jobs:
            blob = codec.encode_job(job)
            decoded = codec.decode_job(blob)
            assert decoded == job
            assert codec.encode_job(decoded) == blob

    def test_window_outcomes(self, wire):
        handle, codec, rng = wire
        signatures = [handle.sign(message) for message in WIRE_MESSAGES]
        outcomes = [
            SignWindowOutcome(
                signatures=(signatures[0], None, signatures[2]),
                flagged=(1, 2), failures=((1, "no quorum: bad shares"),),
                fallback_combines=2),
            VerifyWindowOutcome(verdicts=(True, False, True, True)),
            VerifyWindowOutcome(verdicts=()),
            PartialSignOutcome(partials=tuple(
                handle.partials_for(b"outcome partials"))),
        ]
        for outcome in outcomes:
            blob = codec.encode_outcome(outcome)
            decoded = codec.decode_outcome(blob)
            assert decoded == outcome
            assert codec.encode_outcome(decoded) == blob

    def test_service_context(self, wire):
        handle, codec, _ = wire
        blob = encode_service_context(handle)
        rebuilt = decode_service_context(blob)
        # Same keys, same parameters, and interoperable artifacts:
        # a signature produced by the rebuilt handle verifies under the
        # original and vice versa.
        assert rebuilt.public_key.g_1 == handle.public_key.g_1
        assert rebuilt.verification_keys == handle.verification_keys
        assert sorted(rebuilt.shares) == sorted(handle.shares)
        assert encode_service_context(rebuilt) == blob
        message = b"cross-process interop"
        assert handle.verify(message, rebuilt.sign(message))
        assert rebuilt.verify(message, handle.sign(message))

    def test_truncated_and_trailing_blobs_rejected(self, wire):
        handle, codec, _ = wire
        blob = codec.encode_partial(handle.partials_for(b"m")[0])
        with pytest.raises(SerializationError):
            codec.decode_partial(blob[:-1])
        with pytest.raises(SerializationError):
            codec.decode_partial(blob + b"\x00")
        with pytest.raises(SerializationError):
            codec.decode_job(b"Z" + blob)

    def test_sign_outcome_requires_failure_reason_for_none(self, wire):
        handle, codec, _ = wire
        incomplete = SignWindowOutcome(
            signatures=(None,), flagged=(0,), failures=(),
            fallback_combines=1)
        with pytest.raises(SerializationError):
            codec.encode_outcome(incomplete)


class TestTables:
    def test_render_basic(self):
        table = Table("demo", ["a", "b"])
        table.add_row(a=1, b="x")
        table.add_row(a=2.5, b="y")
        text = table.render()
        assert "demo" in text
        assert "2.500" in text
        assert text.count("\n") == 4

    def test_missing_column_rejected(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(a=1)

    def test_float_formats(self):
        text = format_table("t", ["v"], [{"v": 0.000001}, {"v": 1234.5},
                                         {"v": 0}, {"v": 0.5}])
        assert "1.00e-06" in text
        assert "1234.5" in text

    def test_empty_table_renders(self):
        assert "t" in format_table("t", ["col"], [])
