"""Tests for the GJKR new-DKG baseline."""

import pytest

from repro.dkg.gjkr_dkg import GJKRPlayer, run_gjkr_dkg
from repro.math.lagrange import interpolate_at
from repro.net.adversary import ScriptedAdversary


@pytest.fixture
def setup(toy_group):
    g_z = toy_group.derive_g2("gjkr-test:g_z")
    g_r = toy_group.derive_g2("gjkr-test:g_r")
    return toy_group, g_z, g_r


class TestHonestRun:
    def test_two_communication_rounds(self, setup, rng):
        group, g_z, g_r = setup
        _results, network = run_gjkr_dkg(group, g_z, g_r, 2, 5, rng=rng)
        # Deal round + extraction round (complaint rounds silent).
        assert network.metrics.communication_rounds == 2

    def test_public_key_consensus(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_gjkr_dkg(group, g_z, g_r, 2, 5, rng=rng)
        reference = results[1].public_key
        for result in results.values():
            assert result.public_key == reference

    def test_shares_interpolate_to_pk(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_gjkr_dkg(group, g_z, g_r, 2, 5, rng=rng)
        points = {i: results[i].share for i in (2, 4, 5)}
        x = interpolate_at(points, group.order)
        assert g_z ** x == results[1].public_key

    def test_verification_keys_match_shares(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_gjkr_dkg(group, g_z, g_r, 2, 5, rng=rng)
        for i, result in results.items():
            assert results[1].verification_keys[i] == g_z ** result.share

    def test_all_qualified(self, setup, rng):
        group, g_z, g_r = setup
        results, _ = run_gjkr_dkg(group, g_z, g_r, 2, 5, rng=rng)
        assert results[1].qualified == [1, 2, 3, 4, 5]


class TestExtractionMisbehaviour:
    def test_dropout_contribution_reconstructed(self, setup, rng):
        """A dealer silent during extraction stays in Q — the key GJKR
        property that defeats the Pedersen bias attack."""
        group, g_z, g_r = setup

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                adversary.minion = GJKRPlayer(1, group, g_z, g_r, 2, 5,
                                              rng=rng)
            minion = adversary.minion
            inbox = [m for m in deliveries
                     if m.is_broadcast or m.recipient == 1]
            minion.record_round(inbox)
            messages = minion.on_round(round_no, inbox)
            if round_no >= 3:
                return []            # silent from extraction onwards
            return messages

        results, _ = run_gjkr_dkg(
            group, g_z, g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        # Dealer 1 is still qualified and the PK includes its contribution:
        # the shares still interpolate to log of the final PK.
        assert 1 in results[2].qualified
        points = {i: results[i].share for i in (2, 3, 4)}
        x = interpolate_at(points, group.order)
        assert g_z ** x == results[2].public_key

    def test_feldman_cheater_reconstructed(self, setup, rng):
        """A dealer broadcasting a wrong Feldman vector triggers valid
        extraction complaints and public reconstruction."""
        group, g_z, g_r = setup
        from repro.net.simulator import broadcast as bcast

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                adversary.minion = GJKRPlayer(1, group, g_z, g_r, 2, 5,
                                              rng=rng)
            minion = adversary.minion
            inbox = [m for m in deliveries
                     if m.is_broadcast or m.recipient == 1]
            minion.record_round(inbox)
            messages = minion.on_round(round_no, inbox)
            if round_no == 3:
                # Publish a *wrong* Feldman vector (honest Pedersen phase).
                feldman = [g_z ** (k + 1)
                           for k in range(minion.t + 1)]
                return [bcast(1, "feldman", {"feldman": feldman})]
            return messages

        results, _ = run_gjkr_dkg(
            group, g_z, g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        assert 1 in results[2].qualified
        points = {i: results[i].share for i in (2, 3, 5)}
        x = interpolate_at(points, group.order)
        assert g_z ** x == results[2].public_key
