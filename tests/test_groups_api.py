"""The two backends must expose identical algebra through the group API."""

import pytest

from repro.groups import get_group
from repro.groups.toy_backend import ToyElement


@pytest.fixture(params=["toy", "bn254"])
def group(request):
    if request.param == "bn254":
        request.applymarker(pytest.mark.bn254)
    return get_group(request.param)


class TestBackendAlgebra:
    def test_identity_laws(self, group):
        g = group.g1_generator()
        assert (g * group.g1_identity()) == g
        assert g.is_identity() is False
        assert group.g1_identity().is_identity()

    def test_exponent_arithmetic(self, group):
        g = group.g1_generator()
        assert (g ** 3) * (g ** 4) == g ** 7
        assert (g ** 3) ** 4 == g ** 12
        assert (g ** group.order).is_identity()

    def test_negative_exponent(self, group):
        g = group.g1_generator()
        assert (g ** -2) * (g ** 2) == group.g1_identity()

    def test_division(self, group):
        g = group.g1_generator()
        assert (g ** 5) / (g ** 3) == g ** 2

    def test_pairing_bilinearity(self, group):
        a = group.g1_generator() ** 6
        b = group.g2_generator() ** 7
        gt = group.pair(a, b)
        assert gt == group.pair(group.g1_generator(),
                                group.g2_generator()) ** 42

    def test_pairing_product(self, group):
        g1, g2 = group.g1_generator(), group.g2_generator()
        product = group.pairing_product([(g1 ** 2, g2), (g1 ** 3, g2)])
        assert product == group.pair(g1, g2) ** 5

    def test_pairing_product_is_one(self, group):
        g1, g2 = group.g1_generator(), group.g2_generator()
        assert group.pairing_product_is_one(
            [(g1 ** 4, g2), ((g1 ** 4).inverse(), g2)])
        assert not group.pairing_product_is_one([(g1, g2)])

    def test_derive_deterministic(self, group):
        assert group.derive_g1("x") == group.derive_g1("x")
        assert group.derive_g1("x") != group.derive_g1("y")
        assert group.derive_g2("x") == group.derive_g2("x")

    def test_hash_vector(self, group):
        vec = group.hash_to_g1_vector(b"msg", 3)
        assert len(vec) == 3
        assert len({v.to_bytes() for v in vec}) == 3
        again = group.hash_to_g1_vector(b"msg", 3)
        assert [v.to_bytes() for v in vec] == [v.to_bytes() for v in again]

    def test_serialization_sizes(self, group):
        assert len(group.g1_generator().to_bytes()) == group.g1_bytes
        assert len(group.g2_generator().to_bytes()) == group.g2_bytes

    def test_g1_roundtrip(self, group):
        element = group.g1_generator() ** 12345
        assert group.g1_from_bytes(element.to_bytes()) == element

    def test_random_scalar_range(self, group, rng):
        for _ in range(10):
            assert 0 <= group.random_scalar(rng) < group.order


class TestToySpecifics:
    def test_not_secure_flag(self):
        assert get_group("toy").secure is False
        assert get_group("bn254").secure is True

    def test_tag_confusion_rejected(self):
        group = get_group("toy")
        with pytest.raises(TypeError):
            group.g1_generator() * group.g2_generator()
        with pytest.raises(TypeError):
            group.pair(group.g2_generator(), group.g2_generator())

    def test_symmetric_backend_identifies_groups(self):
        sym = get_group("toy-symmetric")
        assert sym.symmetric
        g = sym.g1_generator() * sym.g2_generator()   # same tag: allowed
        assert isinstance(g, ToyElement)
        assert not sym.pair(sym.g1_generator(), sym.g2_generator()).is_identity()

    def test_caching(self):
        assert get_group("toy") is get_group("toy")

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            get_group("nope")
