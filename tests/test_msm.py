"""Property tests for the fast-exponentiation subsystem.

Every fast path (w-NAF multiplication, Straus/Pippenger MSM, fixed-base
tables, sparse line multiplication, the BN final-exponentiation chain,
prepared pairings, backend ``multi_exp``) is compared against its naive
reference implementation on random inputs and edge cases: identity points,
zero scalars, and scalars at or beyond the group order.
"""

import random

import pytest

from repro.curves import bn254
from repro.curves.g1 import FP_OPS, G1Point
from repro.curves.g2 import FP2_OPS, G2Point
from repro.curves.pairing import (
    GTElement, PreparedG2, final_exponentiation, final_exponentiation_naive,
    gt_multi_exp, multi_pairing, multi_pairing_naive, prepare_g2,
    _miller_loop_naive,
)
from repro.curves.weierstrass import (
    jac_add, jac_add_affine, jac_batch_normalize, jac_double,
    jac_normalize, jac_scalar_mul,
)
from repro.math.tower import f12_cyclotomic_pow, f12_pow
from repro.errors import ParameterError
from repro.groups import get_group
from repro.math import msm
from repro.math.lagrange import batch_invert, lagrange_coefficients
from repro.math.tower import (
    F2_ZERO, f12_eq, f12_mul, f12_mul_line, wvec_to_f12, P,
)

R = bn254.R

EDGE_SCALARS = [0, 1, 2, R - 1, R, R + 5, 2 * R + 3]


def random_scalars(rng, count):
    return [rng.randrange(3 * R) for _ in range(count)]


class TestWnafDigits:
    def test_reconstructs_scalar(self):
        rng = random.Random(11)
        for width in (2, 3, 4, 5):
            for _ in range(20):
                scalar = rng.randrange(1 << 256)
                digits = msm.wnaf_digits(scalar, width)
                assert sum(d << i for i, d in enumerate(digits)) == scalar

    def test_digit_constraints(self):
        rng = random.Random(12)
        half = 1 << 3
        for _ in range(20):
            digits = msm.wnaf_digits(rng.randrange(1 << 254), 4)
            for i, digit in enumerate(digits):
                if digit == 0:
                    continue
                assert digit % 2 == 1
                assert -half < digit < half
                # Non-adjacency: the next width-1 digits are zero.
                assert all(d == 0 for d in digits[i + 1:i + 4])

    def test_zero(self):
        assert msm.wnaf_digits(0) == []

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            msm.wnaf_digits(-1)
        with pytest.raises(ValueError):
            msm.wnaf_digits(5, width=1)


@pytest.mark.bn254
class TestScalarMulAgreement:
    @pytest.mark.parametrize("ops,point_cls", [
        (FP_OPS, G1Point), (FP2_OPS, G2Point),
    ], ids=["G1", "G2"])
    def test_wnaf_matches_naive(self, ops, point_cls):
        rng = random.Random(13)
        base = point_cls.generator()
        for scalar in EDGE_SCALARS + random_scalars(rng, 5):
            fast = msm.scalar_mul(ops, base._jac, scalar, R)
            naive = jac_scalar_mul(ops, base._jac, scalar, R)
            assert point_cls(_jac=fast) == point_cls(_jac=naive)

    @pytest.mark.parametrize("ops,point_cls", [
        (FP_OPS, G1Point), (FP2_OPS, G2Point),
    ], ids=["G1", "G2"])
    def test_identity_point(self, ops, point_cls):
        identity = point_cls.identity()
        result = msm.scalar_mul(ops, identity._jac, 12345, R)
        assert point_cls(_jac=result).is_identity()

    def test_operator_uses_fast_path(self):
        # The * operator and the reference must agree bit for bit.
        rng = random.Random(14)
        g = G1Point.generator()
        for scalar in random_scalars(rng, 3):
            expected = G1Point(
                _jac=jac_scalar_mul(FP_OPS, g._jac, scalar, R))
            assert g * scalar == expected


@pytest.mark.bn254
class TestMultiScalarMul:
    def _naive(self, points, scalars):
        total = G1Point.identity()
        for point, scalar in zip(points, scalars):
            total = total + G1Point(
                _jac=jac_scalar_mul(FP_OPS, point._jac, scalar, R))
        return total

    @pytest.mark.parametrize("count", [1, 2, 3, 5])
    def test_straus_matches_naive(self, count):
        rng = random.Random(count)
        g = G1Point.generator()
        points = [g * rng.randrange(2, R) for _ in range(count)]
        scalars = random_scalars(rng, count)
        result = G1Point.multi_mul(points, scalars)
        assert result == self._naive(points, scalars)

    def test_pippenger_matches_naive(self):
        rng = random.Random(40)
        g = G1Point.generator()
        points = [g * (i + 2) for i in range(40)]
        scalars = random_scalars(rng, 40)
        fast = G1Point(_jac=msm._pippenger(
            FP_OPS,
            [(p._jac, s % R) for p, s in zip(points, scalars) if s % R],
            R.bit_length()))
        assert fast == self._naive(points, scalars)

    def test_zero_scalars_and_identities_skipped(self):
        g = G1Point.generator()
        points = [g, G1Point.identity(), g * 3]
        scalars = [0, 55, R]   # every term vanishes
        assert G1Point.multi_mul(points, scalars).is_identity()

    def test_g2_multi_mul(self):
        rng = random.Random(41)
        h = G2Point.generator()
        points = [h * rng.randrange(2, R) for _ in range(3)]
        scalars = random_scalars(rng, 3)
        total = G2Point.identity()
        for point, scalar in zip(points, scalars):
            total = total + G2Point(
                _jac=jac_scalar_mul(FP2_OPS, point._jac, scalar, R))
        assert G2Point.multi_mul(points, scalars) == total

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            msm.multi_scalar_mul(FP_OPS, [G1Point.generator()._jac], [1, 2], R)

    def test_colliding_buckets_and_repeated_points(self):
        # Many copies of the same point with equal scalars force repeated
        # mixed additions into the same Pippenger bucket, including the
        # doubling corner case of jac_add_affine.
        g = G1Point.generator()
        points = [g] * 12 + [g * 7] * 12 + [-g] * 6
        scalars = [5] * 12 + [5] * 12 + [5] * 6
        fast = G1Point(_jac=msm._pippenger(
            FP_OPS, [(p._jac, s) for p, s in zip(points, scalars)],
            R.bit_length()))
        assert fast == self._naive(points, scalars)

    def test_pippenger_opposite_points_cancel(self):
        # P and -P in the same bucket must fold to the identity.
        g = G1Point.generator()
        live = [(g._jac, 3), ((-g)._jac, 3)]
        result = G1Point(_jac=msm._pippenger(FP_OPS, live, R.bit_length()))
        assert result.is_identity()

    def test_straus_mixed_matches_naive_with_duplicates(self):
        rng = random.Random(77)
        g = G1Point.generator()
        base = g * 11
        points = [base, base, -base, g]
        scalars = random_scalars(rng, 4)
        assert G1Point.multi_mul(points, scalars) == \
            self._naive(points, scalars)


@pytest.mark.bn254
class TestMixedAddition:
    """jac_add_affine against the pure-Jacobian reference formulas."""

    @pytest.mark.parametrize("ops,point_cls", [
        (FP_OPS, G1Point), (FP2_OPS, G2Point),
    ], ids=["G1", "G2"])
    def test_matches_full_addition(self, ops, point_cls):
        rng = random.Random(50)
        g = point_cls.generator()
        for _ in range(5):
            p = g * rng.randrange(2, R)
            q = g * rng.randrange(2, R)
            aff = q.affine()
            mixed = point_cls(_jac=jac_add_affine(ops, p._jac, aff))
            assert mixed == p + q

    def test_identity_accumulator(self):
        g = G1Point.generator() * 9
        aff = g.affine()
        result = G1Point(
            _jac=jac_add_affine(FP_OPS, G1Point.identity()._jac, aff))
        assert result == g

    def test_doubling_case(self):
        g = G1Point.generator() * 5
        aff = g.affine()
        result = G1Point(_jac=jac_add_affine(FP_OPS, g._jac, aff))
        assert result == g.double()

    def test_inverse_case_gives_identity(self):
        g = G1Point.generator() * 5
        aff = (-g).affine()
        result = G1Point(_jac=jac_add_affine(FP_OPS, g._jac, aff))
        assert result.is_identity()

    def test_non_normalized_accumulator(self):
        # Accumulator with Z != 1 (fresh sum) plus an affine point.
        g = G1Point.generator()
        acc = (g * 3)._jac
        acc = jac_add(FP_OPS, acc, (g * 4)._jac)   # Z != 1 now
        aff = (g * 6).affine()
        mixed = G1Point(_jac=jac_add_affine(FP_OPS, acc, aff))
        assert mixed == g * 13

    def test_batch_normalize_matches_single(self):
        rng = random.Random(51)
        g = G1Point.generator()
        jacs = []
        for _ in range(6):
            a = (g * rng.randrange(2, R))._jac
            b = (g * rng.randrange(2, R))._jac
            jacs.append(jac_add(FP_OPS, a, b))
        jacs.append(G1Point.identity()._jac)
        batch = jac_batch_normalize(FP_OPS, jacs)
        singles = [jac_normalize(FP_OPS, jac) for jac in jacs]
        assert batch == singles
        assert batch[-1] is None

    def test_point_batch_normalize_preserves_value(self):
        rng = random.Random(52)
        g = G2Point.generator()
        points = [g * rng.randrange(2, R) for _ in range(4)]
        points.append(G2Point.identity())
        expected = [G2Point(_jac=p._jac) for p in points]
        G2Point.batch_normalize(points)
        for point, reference in zip(points, expected):
            assert point == reference
            assert point._affine


@pytest.mark.bn254
class TestFixedBaseTable:
    @pytest.mark.parametrize("window", [1, 2, 4, 6])
    def test_matches_naive(self, window):
        rng = random.Random(window)
        base = G1Point.generator() * 7
        table = msm.FixedBaseTable(FP_OPS, base._jac, R, window)
        for scalar in EDGE_SCALARS + random_scalars(rng, 3):
            fast = G1Point(_jac=table.mul(scalar))
            naive = G1Point(
                _jac=jac_scalar_mul(FP_OPS, base._jac, scalar, R))
            assert fast == naive

    def test_precomputed_point_agrees(self):
        rng = random.Random(42)
        plain = G2Point.generator() * 5
        primed = (G2Point.generator() * 5).precompute()
        for scalar in [0, 1, R - 1] + random_scalars(rng, 3):
            assert plain * scalar == primed * scalar

    def test_auto_precompute_is_transparent(self):
        scalars = list(range(1, 15))
        fresh = G1Point.generator() + G1Point.generator()
        reference = [
            G1Point(_jac=jac_scalar_mul(FP_OPS, fresh._jac, s, R))
            for s in scalars
        ]
        # Repeated use of one instance flips it to the table path mid-way.
        reused = G1Point.generator() + G1Point.generator()
        results = [reused * s for s in scalars]
        assert reused._table is not None
        assert results == reference


class TestSparseLineMul:
    def test_matches_full_mul(self):
        rng = random.Random(15)

        def rf2():
            return (rng.randrange(P), rng.randrange(P))

        for trial in range(25):
            f = tuple((rf2(), rf2(), rf2()) for _ in range(2))
            l0 = (rng.randrange(P), 0) if trial % 2 else rf2()
            l1, l3 = rf2(), rf2()
            line = wvec_to_f12((l0, l1, F2_ZERO, l3, F2_ZERO, F2_ZERO))
            assert f12_eq(f12_mul(f, line), f12_mul_line(f, l0, l1, l3))


@pytest.mark.bn254
class TestPairingFastPaths:
    def test_final_exponentiation_chain_matches_naive(self):
        rng = random.Random(16)
        for _ in range(2):
            p = G1Point.generator() * rng.randrange(2, R)
            q = G2Point.generator() * rng.randrange(2, R)
            miller = _miller_loop_naive(p.affine(), q.affine())
            assert f12_eq(final_exponentiation(miller),
                          final_exponentiation_naive(miller))

    def test_prepared_multi_pairing_matches_naive(self):
        rng = random.Random(17)
        g1, g2 = G1Point.generator(), G2Point.generator()
        pairs = [
            (g1 * rng.randrange(2, R), g2 * rng.randrange(2, R))
            for _ in range(3)
        ]
        assert multi_pairing(pairs) == multi_pairing_naive(pairs)

    def test_identity_arguments(self):
        g1, g2 = G1Point.generator(), G2Point.generator()
        pairs = [(G1Point.identity(), g2), (g1, G2Point.identity())]
        assert multi_pairing(pairs).is_one()
        assert multi_pairing([]).is_one()

    def test_explicit_prepared_argument(self):
        g1, g2 = G1Point.generator(), G2Point.generator()
        prepared = prepare_g2(g2 * 9)
        assert isinstance(prepared, PreparedG2)
        assert multi_pairing([(g1 * 4, prepared)]) == \
            multi_pairing_naive([(g1 * 4, g2 * 9)])

    def test_preparation_is_memoized(self):
        q = G2Point.generator() * 11
        assert prepare_g2(q) is prepare_g2(q)

    def test_prepared_identity(self):
        prepared = prepare_g2(G2Point.identity())
        assert prepared.is_identity
        assert multi_pairing([(G1Point.generator(), prepared)]).is_one()


class TestBackendMultiExp:
    def test_toy_matches_naive_fold(self, toy_group):
        rng = random.Random(18)
        bases = [toy_group.g1_generator() ** rng.randrange(R)
                 for _ in range(4)]
        scalars = random_scalars(rng, 4)
        expected = bases[0] ** scalars[0]
        for base, scalar in zip(bases[1:], scalars[1:]):
            expected = expected * (base ** scalar)
        assert toy_group.multi_exp(bases, scalars) == expected

    def test_toy_rejects_mixed_groups(self, toy_group):
        with pytest.raises(TypeError):
            toy_group.multi_exp(
                [toy_group.g1_generator(), toy_group.g2_generator()], [1, 2])

    def test_toy_rejects_empty(self, toy_group):
        with pytest.raises(ValueError):
            toy_group.multi_exp([], [])

    @pytest.mark.bn254
    @pytest.mark.parametrize("generator", ["g1_generator", "g2_generator"])
    def test_bn254_matches_naive_fold(self, bn254_group, generator):
        rng = random.Random(19)
        base = getattr(bn254_group, generator)()
        bases = [base ** rng.randrange(2, R) for _ in range(3)]
        scalars = random_scalars(rng, 3)
        expected = bases[0] ** scalars[0]
        for b, s in zip(bases[1:], scalars[1:]):
            expected = expected * (b ** s)
        assert bn254_group.multi_exp(bases, scalars) == expected

    @pytest.mark.bn254
    def test_bn254_precomputed_bases(self, bn254_group):
        rng = random.Random(20)
        bases = [
            (bn254_group.g2_generator() ** k).precompute() for k in (3, 5)
        ]
        scalars = random_scalars(rng, 2)
        expected = (bases[0] ** scalars[0]) * (bases[1] ** scalars[1])
        assert bn254_group.multi_exp(bases, scalars) == expected

    @pytest.mark.bn254
    def test_bn254_gt_fallback(self, bn254_group):
        e = bn254_group.pair(
            bn254_group.g1_generator(), bn254_group.g2_generator())
        assert bn254_group.multi_exp([e, e], [2, 3]) == e ** 5


@pytest.mark.bn254
class TestGTFastPaths:
    """GT multi_exp / fixed-base agreement against the naive ladders."""

    @pytest.fixture(scope="class")
    def gt_elements(self, bn254_group):
        g1 = bn254_group.g1_generator()
        g2 = bn254_group.g2_generator()
        return [bn254_group.pair(g1 ** k, g2) for k in (1, 5, 9)]

    def test_gt_exp_matches_generic_pow(self, gt_elements):
        rng = random.Random(60)
        element = gt_elements[1].element
        for exponent in [0, 1, 2, R - 1] + [rng.randrange(R)
                                            for _ in range(3)]:
            fast = (element ** exponent).value
            assert f12_eq(fast, f12_pow(element.value, exponent))

    def test_gt_multi_exp_matches_fold(self, bn254_group, gt_elements):
        from repro.groups.bn254_backend import BNGT
        rng = random.Random(61)
        scalars = [rng.randrange(R) for _ in gt_elements]
        fast = bn254_group.multi_exp(gt_elements, scalars)
        expected = None
        for base, scalar in zip(gt_elements, scalars):
            term = BNGT(GTElement(
                f12_cyclotomic_pow(base.element.value, scalar)))
            expected = term if expected is None else expected * term
        assert fast == expected

    def test_gt_multi_exp_zero_scalars_and_identity(self, bn254_group,
                                                    gt_elements):
        identity = bn254_group.gt_identity()
        result = bn254_group.multi_exp(
            [gt_elements[0], identity, gt_elements[1]], [0, 55, R])
        assert result.is_identity()

    def test_gt_multi_exp_negative_digits(self, gt_elements):
        # Scalars with NAF digits of both signs (conjugation path).
        a, b = gt_elements[0].element, gt_elements[1].element
        result = gt_multi_exp([a, b], [R - 3, 7])
        expected = GTElement(f12_mul(
            f12_cyclotomic_pow(a.value, R - 3),
            f12_cyclotomic_pow(b.value, 7)))
        assert result == expected

    def test_gt_multi_exp_length_mismatch(self, gt_elements):
        with pytest.raises(ValueError):
            gt_multi_exp([e.element for e in gt_elements], [1, 2])

    def test_gt_fixed_base_table(self, gt_elements):
        rng = random.Random(62)
        plain = gt_elements[2].element
        primed = GTElement(plain.value).precompute()
        for exponent in [0, 1, R - 1] + [rng.randrange(R)
                                         for _ in range(3)]:
            assert (primed ** exponent) == (GTElement(plain.value)
                                            ** exponent)

    def test_toy_gt_multi_exp(self, toy_group):
        g = toy_group.pair(toy_group.g1_generator(),
                           toy_group.g2_generator())
        bases = [g ** 3, g ** 8]
        assert toy_group.multi_exp(bases, [5, 7]) == g ** (15 + 56)


@pytest.mark.bn254
class TestPreparationCaches:
    def test_prep_shared_across_instances(self):
        # Two deserialized copies of one point share one PreparedG2 via
        # the module-scope cache.
        q = G2Point.generator() * 4321
        data = q.to_bytes()
        first = G2Point.from_bytes(data)
        second = G2Point.from_bytes(data)
        assert first is not second
        assert prepare_g2(first) is prepare_g2(second)

    def test_derived_generators_memoized(self):
        from repro.curves.hash_to_curve import (
            derive_generator_g1, derive_generator_g2,
        )
        assert derive_generator_g1("memo-test") is \
            derive_generator_g1("memo-test")
        assert derive_generator_g2("memo-test") is \
            derive_generator_g2("memo-test")

    def test_lagrange_at_zero_cached(self):
        from repro.math.lagrange import (
            lagrange_at_zero, lagrange_coefficients,
        )
        cached = lagrange_at_zero((1, 2, 3), 97)
        assert cached == lagrange_coefficients([1, 2, 3], 97)
        assert lagrange_at_zero((1, 2, 3), 97) is cached


class TestBatchInvert:
    def test_matches_pow(self):
        rng = random.Random(21)
        modulus = R
        values = [rng.randrange(1, modulus) for _ in range(10)]
        inverses = batch_invert(values, modulus)
        for value, inverse in zip(values, inverses):
            assert value * inverse % modulus == 1

    def test_zero_raises(self):
        with pytest.raises(ParameterError):
            batch_invert([3, R, 5], R)

    def test_empty(self):
        assert batch_invert([], R) == []

    def test_lagrange_unchanged(self):
        # The batched path must produce the classic coefficients.
        coeffs = lagrange_coefficients([1, 2, 3], 97)
        assert sum(coeffs[i] * (5 * i + 7) for i in coeffs) % 97 == 7
