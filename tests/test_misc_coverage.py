"""Edge-case coverage: errors, RNG helpers, generic curve formulas."""

import pytest

from repro import errors
from repro.curves.bn254 import P
from repro.curves.g1 import FP_OPS, G1Point
from repro.curves.weierstrass import (
    jac_add, jac_double, jac_eq, jac_normalize, jac_scalar_mul,
)
from repro.math.rng import (
    hash_bytes, hash_to_int, random_nonzero_scalar, random_scalar,
)


class TestErrorsHierarchy:
    def test_all_derive_from_base(self):
        for name in ("ParameterError", "SerializationError",
                     "NotOnCurveError", "InvalidShareError",
                     "InvalidSignatureError", "CombineError",
                     "ProtocolError", "DisqualifiedError",
                     "SecurityGameError"):
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_not_on_curve_is_serialization_error(self):
        assert issubclass(errors.NotOnCurveError, errors.SerializationError)

    def test_disqualified_is_protocol_error(self):
        assert issubclass(errors.DisqualifiedError, errors.ProtocolError)


class TestRngHelpers:
    def test_hash_to_int_deterministic(self):
        assert hash_to_int("d", b"x", 1 << 64) == hash_to_int("d", b"x",
                                                              1 << 64)

    def test_hash_to_int_domain_separated(self):
        assert hash_to_int("d1", b"x", 1 << 64) != hash_to_int(
            "d2", b"x", 1 << 64)

    def test_hash_to_int_in_range(self):
        for modulus in (2, 17, 1 << 256):
            value = hash_to_int("d", b"data", modulus)
            assert 0 <= value < modulus

    def test_hash_bytes_length(self):
        for length in (1, 32, 33, 100):
            assert len(hash_bytes("d", b"x", length)) == length

    def test_hash_bytes_prefix_stability(self):
        # Counter-mode expansion: longer outputs extend shorter ones.
        short = hash_bytes("d", b"x", 32)
        long = hash_bytes("d", b"x", 64)
        assert long.startswith(short)

    def test_random_scalar_deterministic_with_rng(self):
        import random
        assert random_scalar(1000, random.Random(5)) == random_scalar(
            1000, random.Random(5))

    def test_random_scalar_secure_path(self):
        for _ in range(10):
            assert 0 <= random_scalar(97) < 97

    def test_random_nonzero(self, rng):
        for _ in range(50):
            assert random_nonzero_scalar(3, rng) in (1, 2)


class TestJacobianEdgeCases:
    def test_double_infinity(self):
        infinity = (1, 1, 0)
        assert jac_double(FP_OPS, infinity)[2] == 0

    def test_double_order_two_point(self):
        # y = 0 points double to infinity (none exist on BN254, but the
        # formula must be total).
        assert jac_double(FP_OPS, (5, 0, 1))[2] == 0

    def test_add_inverse_gives_infinity(self):
        g = G1Point.generator()._jac
        neg = (g[0], -g[1] % P, g[2])
        assert jac_add(FP_OPS, g, neg)[2] == 0

    def test_add_equal_points_falls_into_double(self):
        g = G1Point.generator()._jac
        assert jac_eq(FP_OPS, jac_add(FP_OPS, g, g), jac_double(FP_OPS, g))

    def test_scalar_mul_zero(self):
        g = G1Point.generator()._jac
        assert jac_scalar_mul(FP_OPS, g, 0, G1Point.order)[2] == 0

    def test_scalar_mul_of_infinity(self):
        infinity = (1, 1, 0)
        assert jac_scalar_mul(FP_OPS, infinity, 12345,
                              G1Point.order)[2] == 0

    def test_normalize_infinity_is_none(self):
        assert jac_normalize(FP_OPS, (1, 1, 0)) is None

    def test_projective_eq_scaled_representations(self):
        # (X, Y, Z) and (c^2 X, c^3 Y, c Z) are the same Jacobian point.
        g = G1Point.generator()._jac
        scaled = (g[0] * 4 % P, g[1] * 8 % P, g[2] * 2 % P)
        assert jac_eq(FP_OPS, g, scaled)

    def test_eq_infinity_cases(self):
        infinity = (1, 1, 0)
        g = G1Point.generator()._jac
        assert jac_eq(FP_OPS, infinity, (2, 3, 0))
        assert not jac_eq(FP_OPS, infinity, g)
