"""Group-law, subgroup and serialization tests for G1 and G2."""

import pytest

from repro.curves import bn254
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.hash_to_curve import (
    derive_generator_g1, derive_generator_g2, hash_to_g1,
    hash_to_g1_vector, hash_to_g2,
)
from repro.errors import NotOnCurveError, SerializationError

R = bn254.R


class TestG1GroupLaw:
    def test_generator_on_curve(self):
        assert G1Point.generator().is_on_curve()

    def test_generator_order(self):
        assert (G1Point.generator() * R).is_identity()

    def test_identity_neutral(self):
        g = G1Point.generator()
        assert g + G1Point.identity() == g
        assert G1Point.identity() + g == g

    def test_add_negation(self):
        g = G1Point.generator()
        assert (g + (-g)).is_identity()

    def test_sub(self):
        g = G1Point.generator()
        assert (g * 5 - g * 3) == g * 2

    def test_double_matches_add(self):
        g = G1Point.generator()
        assert g.double() == g + g

    def test_scalar_mult_small_cases(self):
        g = G1Point.generator()
        acc = G1Point.identity()
        for k in range(1, 12):
            acc = acc + g
            assert g * k == acc
            assert (g * k).is_on_curve()

    def test_scalar_mult_reduces_mod_order(self):
        g = G1Point.generator()
        assert g * (R + 5) == g * 5
        assert (g * 0).is_identity()

    def test_scalar_mult_distributes(self):
        g = G1Point.generator()
        a, b = 123456789, 987654321
        assert g * a + g * b == g * (a + b)

    def test_off_curve_rejected(self):
        with pytest.raises(NotOnCurveError):
            G1Point(1, 3)

    def test_hash_and_eq(self):
        g = G1Point.generator()
        assert hash(g * 7) == hash(g * 7)
        assert g * 7 != g * 8


class TestG1Serialization:
    def test_roundtrip(self):
        point = G1Point.generator() * 424242
        assert G1Point.from_bytes(point.to_bytes()) == point

    def test_roundtrip_negation(self):
        point = -(G1Point.generator() * 99)
        assert G1Point.from_bytes(point.to_bytes()) == point

    def test_identity_roundtrip(self):
        identity = G1Point.identity()
        assert G1Point.from_bytes(identity.to_bytes()).is_identity()

    def test_encoded_size(self):
        assert len(G1Point.generator().to_bytes()) == 32

    def test_wrong_length_rejected(self):
        with pytest.raises(SerializationError):
            G1Point.from_bytes(b"\x00" * 31)

    def test_x_out_of_range_rejected(self):
        data = (bn254.P).to_bytes(32, "big")
        with pytest.raises(SerializationError):
            G1Point.from_bytes(data)

    def test_invalid_x_rejected(self):
        # x = 5 gives a non-square RHS on BN254.
        candidates = 0
        for x in range(2, 40):
            data = x.to_bytes(32, "big")
            try:
                G1Point.from_bytes(data)
            except NotOnCurveError:
                candidates += 1
        assert candidates > 0


class TestG2GroupLaw:
    def test_generator_on_curve(self):
        assert G2Point.generator().is_on_curve()

    def test_generator_order(self):
        assert (G2Point.generator() * R).is_identity()

    def test_generator_in_subgroup(self):
        assert G2Point.generator().in_subgroup()

    def test_cofactor_value(self):
        assert bn254.G2_COFACTOR == 2 * bn254.P - bn254.R

    def test_add_negation(self):
        g = G2Point.generator()
        assert (g + (-g)).is_identity()

    def test_scalar_mult_consistency(self):
        g = G2Point.generator()
        assert g * 6 == (g * 2) * 3
        assert g * 6 == g.double() + g.double() + g.double()

    def test_scalar_mult_stays_on_curve(self):
        g = G2Point.generator()
        for k in (2, 3, 5, 1023):
            assert (g * k).is_on_curve()


class TestG2Serialization:
    def test_roundtrip(self):
        point = G2Point.generator() * 31337
        assert G2Point.from_bytes(point.to_bytes()) == point

    def test_identity_roundtrip(self):
        assert G2Point.from_bytes(
            G2Point.identity().to_bytes()).is_identity()

    def test_encoded_size(self):
        assert len(G2Point.generator().to_bytes()) == 64

    def test_wrong_length_rejected(self):
        with pytest.raises(SerializationError):
            G2Point.from_bytes(b"\x00" * 63)


class TestHashToCurve:
    def test_g1_determinism(self):
        assert hash_to_g1(b"m") == hash_to_g1(b"m")

    def test_g1_distinct_messages(self):
        assert hash_to_g1(b"m1") != hash_to_g1(b"m2")

    def test_g1_domain_separation(self):
        assert hash_to_g1(b"m", domain="a") != hash_to_g1(b"m", domain="b")

    def test_g1_vector_components_independent(self):
        h1, h2 = hash_to_g1_vector(b"m", 2)
        assert h1 != h2
        assert h1.is_on_curve() and h2.is_on_curve()

    def test_g1_in_subgroup(self):
        assert (hash_to_g1(b"subgroup") * R).is_identity()

    def test_g2_in_subgroup(self):
        point = hash_to_g2(b"m")
        assert point.in_subgroup()
        assert not point.is_identity()

    def test_g2_determinism(self):
        assert hash_to_g2(b"m") == hash_to_g2(b"m")

    def test_derived_generators_distinct(self):
        assert derive_generator_g1("a") != derive_generator_g1("b")
        assert derive_generator_g2("g_z") != derive_generator_g2("g_r")
