"""Shared fixtures for the test suite.

Two bilinear backends are exercised:

* ``toy`` — the discrete-log backend; algebra identical to BN254, runs in
  microseconds.  All protocol-logic tests use it.
* ``bn254`` — the real pairing.  A focused set of cryptographic-validity
  tests (marked ``bn254``) runs on it; they take a couple of seconds each.

Run ``pytest -m "not bn254"`` for the fast suite only.
"""

import random

import pytest

from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.groups import get_group


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "bn254: tests that run on the real BN254 pairing (slow)")


@pytest.fixture(scope="session")
def toy_group():
    return get_group("toy")


@pytest.fixture(scope="session")
def toy_symmetric_group():
    return get_group("toy-symmetric")


@pytest.fixture(scope="session")
def bn254_group():
    return get_group("bn254")


@pytest.fixture
def rng(session_seed):
    """Per-test randomness; ``--seed N`` reseeds the whole suite (the
    effective seed is printed in the terminal summary on failure)."""
    return random.Random(0xC0FFEE if session_seed is None else session_seed)


@pytest.fixture(scope="session")
def sim_seed(session_seed):
    """Seed for the simulation scenarios (``2026`` unless ``--seed``)."""
    return 2026 if session_seed is None else session_seed


@pytest.fixture
def toy_params(toy_group):
    return ThresholdParams.generate(toy_group, t=2, n=5)


@pytest.fixture
def toy_scheme(toy_params):
    return LJYThresholdScheme(toy_params)


@pytest.fixture
def toy_keys(toy_scheme, rng):
    """(public_key, shares, verification_keys) from a trusted dealer."""
    return toy_scheme.dealer_keygen(rng=rng)
