"""Cryptographic-validity tests for the optimal ate pairing (real BN254)."""

import pytest

from repro.curves import bn254
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.pairing import (
    GTElement, multi_pairing, pairing, pairing_product_is_one,
    PAIRING_COUNTERS, reset_pairing_counters,
)

pytestmark = pytest.mark.bn254

R = bn254.R


@pytest.fixture(scope="module")
def base_pairing():
    return pairing(G1Point.generator(), G2Point.generator())


class TestPairingProperties:
    def test_non_degenerate(self, base_pairing):
        assert not base_pairing.is_one()

    def test_order_r(self, base_pairing):
        assert (base_pairing ** R).is_one()

    def test_left_linear(self, base_pairing):
        g1, g2 = G1Point.generator(), G2Point.generator()
        a = 0xDEADBEEFCAFE
        assert pairing(g1 * a, g2) == base_pairing ** a

    def test_right_linear(self, base_pairing):
        g1, g2 = G1Point.generator(), G2Point.generator()
        b = 0xFEEDFACE1234
        assert pairing(g1, g2 * b) == base_pairing ** b

    def test_full_bilinearity(self, base_pairing):
        g1, g2 = G1Point.generator(), G2Point.generator()
        a, b = 123456789012345, 543210987654321
        assert pairing(g1 * a, g2 * b) == base_pairing ** (a * b % R)

    def test_identity_arguments(self):
        assert pairing(G1Point.identity(), G2Point.generator()).is_one()
        assert pairing(G1Point.generator(), G2Point.identity()).is_one()

    def test_inverse_argument(self, base_pairing):
        g1, g2 = G1Point.generator(), G2Point.generator()
        assert pairing(-g1, g2) == base_pairing.inverse()

    def test_gt_element_ops(self, base_pairing):
        e = base_pairing
        assert (e * e.inverse()).is_one()
        assert (e ** 2) / e == e
        assert GTElement.one().is_one()


class TestMultiPairing:
    def test_matches_product(self, base_pairing):
        g1, g2 = G1Point.generator(), G2Point.generator()
        product = multi_pairing([(g1 * 3, g2), (g1, g2 * 4)])
        assert product == base_pairing ** 7

    def test_empty_product_is_one(self):
        assert multi_pairing([]).is_one()

    def test_cancellation_shape(self):
        # e(aP, Q) * e(-aP, Q) = 1 — the shape of every verify equation.
        g1, g2 = G1Point.generator(), G2Point.generator()
        assert pairing_product_is_one([(g1 * 9, g2), (-(g1 * 9), g2)])

    def test_shares_final_exponentiation(self, base_pairing):
        g1, g2 = G1Point.generator(), G2Point.generator()
        reset_pairing_counters()
        multi_pairing([(g1, g2), (g1 * 2, g2), (g1 * 3, g2), (g1, g2 * 2)])
        assert PAIRING_COUNTERS["miller_loops"] == 4
        assert PAIRING_COUNTERS["final_exps"] == 1
        reset_pairing_counters()
