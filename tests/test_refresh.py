"""Proactive refresh (Section 3.3) and share recovery tests."""

import random

import pytest

from repro.core.keys import ThresholdParams
from repro.core.scheme import (
    LJYThresholdScheme, ServiceHandle, reconstruct_master_key,
)
from repro.dkg.refresh import recover_share, run_refresh
from repro.errors import ParameterError


@pytest.fixture
def deployed(toy_group, rng):
    params = ThresholdParams.generate(toy_group, t=2, n=5)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    return scheme, pk, shares, vks


class TestRefresh:
    def test_public_key_unchanged(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params
        new_shares, new_vks, _ = run_refresh(
            toy_group, p.g_z, p.g_r, p.t, p.n, shares, vks, rng=rng)
        message = b"epoch-2 message"
        partials = [scheme.share_sign(new_shares[i], message)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, new_vks, message, partials)
        assert scheme.verify(pk, message, signature)

    def test_master_key_preserved(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params
        before = reconstruct_master_key(
            list(shares.values()), toy_group.order, p.t)
        new_shares, _, _ = run_refresh(
            toy_group, p.g_z, p.g_r, p.t, p.n, shares, vks, rng=rng)
        after = reconstruct_master_key(
            list(new_shares.values()), toy_group.order, p.t)
        assert before == after

    def test_shares_actually_change(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params
        new_shares, _, _ = run_refresh(
            toy_group, p.g_z, p.g_r, p.t, p.n, shares, vks, rng=rng)
        assert all(new_shares[i] != shares[i] for i in shares)

    def test_old_share_fails_new_vk(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params
        _new_shares, new_vks, _ = run_refresh(
            toy_group, p.g_z, p.g_r, p.t, p.n, shares, vks, rng=rng)
        stale = scheme.share_sign(shares[1], b"m")
        assert not scheme.share_verify(pk, new_vks[1], b"m", stale)

    def test_mobile_adversary_cross_epoch_shares_useless(
            self, deployed, toy_group, rng):
        """t shares from epoch 1 plus t from epoch 2 never exceed the
        threshold in any single epoch, so the master key stays hidden."""
        scheme, pk, shares, vks = deployed
        p = scheme.params
        new_shares, _, _ = run_refresh(
            toy_group, p.g_z, p.g_r, p.t, p.n, shares, vks, rng=rng)
        # Mix t old shares and one new share: interpolation must NOT give
        # the master key.
        mixed = [shares[1], shares[2], new_shares[3]]
        recovered = reconstruct_master_key(mixed, toy_group.order, p.t)
        true_key = reconstruct_master_key(
            list(shares.values()), toy_group.order, p.t)
        assert recovered != true_key

    def test_multiple_epochs(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params
        current_shares, current_vks = shares, vks
        for _epoch in range(3):
            current_shares, current_vks, _ = run_refresh(
                toy_group, p.g_z, p.g_r, p.t, p.n,
                current_shares, current_vks, rng=rng)
        message = b"after three refreshes"
        partials = [scheme.share_sign(current_shares[i], message)
                    for i in (3, 4, 5)]
        signature = scheme.combine(pk, current_vks, message, partials)
        assert scheme.verify(pk, message, signature)


class TestShareRecovery:
    def test_recovered_share_matches(self, deployed, toy_group):
        scheme, pk, shares, vks = deployed
        helpers = {i: shares[i] for i in (2, 3, 4)}
        recovered = recover_share(scheme, index=1, helper_shares=helpers)
        assert recovered == shares[1].reduce(toy_group.order)

    def test_recovered_share_signs(self, deployed):
        scheme, pk, shares, vks = deployed
        helpers = {i: shares[i] for i in (2, 4, 5)}
        recovered = recover_share(scheme, index=3, helper_shares=helpers)
        partial = scheme.share_sign(recovered, b"m")
        assert scheme.share_verify(pk, vks[3], b"m", partial)


class TestServicePathRecovery:
    """``recover_share`` reached through the ``ServiceHandle`` lifecycle
    (the path the live service's ``retire_signer``/``recover_signer``
    take): drop a crashed holder, re-derive its share from the
    survivors, and have the recovered player sign again."""

    @pytest.fixture
    def handle(self, toy_group):
        return ServiceHandle.dealer(toy_group, 2, 5,
                                    rng=random.Random(17))

    def test_without_then_with_recovered_round_trip(self, handle):
        retired = handle.without_signer(4)
        assert 4 not in retired.shares
        assert 4 in retired.verification_keys  # kept for recovery
        assert retired.epoch == 1
        recovered = retired.with_recovered(4)
        assert recovered.epoch == 2
        # Lagrange interpolation at the victim's index reproduces the
        # exact share the dealer handed out.
        assert recovered.shares[4] == handle.shares[4].reduce(
            handle.scheme.group.order)

    def test_recovered_player_signs_in_next_window(self, handle):
        recovered = handle.without_signer(2).with_recovered(2)
        message = b"recovered window"
        signatures = recovered.sign_window(
            [message], signers=(1, 2, 3), rng=random.Random(18))
        assert recovered.verify(message, signatures[0])
        # Byte-identical to the pre-crash service's signature: the
        # recovered share is the original share.
        assert signatures[0].to_bytes() == handle.sign(message).to_bytes()

    def test_retire_below_quorum_refused(self, handle):
        shrunk = handle.without_signer(1).without_signer(2)
        # 3 holders left == t+1: dropping another would make recovery
        # (and signing) impossible, so the lifecycle refuses.
        with pytest.raises(ParameterError):
            shrunk.without_signer(3)

    def test_recover_requires_missing_share_and_present_vk(self, handle):
        with pytest.raises(ParameterError):
            handle.with_recovered(3)  # share still present
        with pytest.raises(ParameterError):
            handle.without_signer(3).with_recovered(9)  # never a member
