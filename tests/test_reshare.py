"""Resharing DKG tests: join/leave, threshold change, adversaries."""

import pytest

from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme, reconstruct_master_key
from repro.dkg.reshare import ResharePlayer, run_reshare
from repro.errors import ParameterError, ProtocolError
from repro.net.adversary import ScriptedAdversary
from repro.net.simulator import private


@pytest.fixture
def deployed(toy_group, rng):
    params = ThresholdParams.generate(toy_group, t=2, n=5)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    return scheme, pk, shares, vks


def reshare(deployed, toy_group, rng, new_t=2, new_indices=(1, 2, 3, 4, 5),
            **kwargs):
    scheme, pk, shares, vks = deployed
    p = scheme.params
    return run_reshare(
        toy_group, p.g_z, p.g_r, p.t, new_t, new_indices,
        kwargs.pop("shares", shares), vks, public_key=pk, rng=rng, **kwargs)


class TestReshareSameCommittee:
    def test_new_shares_sign_under_old_pk(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        new_shares, new_vks, _ = reshare(deployed, toy_group, rng)
        message = b"post-reshare"
        partials = [scheme.share_sign(new_shares[i], message)
                    for i in (1, 2, 3)]
        signature = scheme.combine(pk, new_vks, message, partials)
        assert scheme.verify(pk, message, signature)

    def test_master_key_preserved(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        before = reconstruct_master_key(
            list(shares.values()), toy_group.order, 2)
        new_shares, _, _ = reshare(deployed, toy_group, rng)
        after = reconstruct_master_key(
            list(new_shares.values()), toy_group.order, 2)
        assert before == after

    def test_shares_change_but_signatures_do_not(self, deployed, toy_group,
                                                 rng):
        scheme, pk, shares, vks = deployed
        new_shares, new_vks, _ = reshare(deployed, toy_group, rng)
        assert all(new_shares[i] != shares[i] for i in shares)
        message = b"deterministic"
        old_sig = scheme.combine(
            pk, vks, message,
            [scheme.share_sign(shares[i], message) for i in (1, 2, 3)])
        new_sig = scheme.combine(
            pk, new_vks, message,
            [scheme.share_sign(new_shares[i], message) for i in (3, 4, 5)])
        assert old_sig.to_bytes() == new_sig.to_bytes()

    def test_new_vks_verify_new_partials(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        new_shares, new_vks, _ = reshare(deployed, toy_group, rng)
        for i in new_shares:
            partial = scheme.share_sign(new_shares[i], b"m")
            assert scheme.share_verify(pk, new_vks[i], b"m", partial)
            assert not scheme.share_verify(pk, vks[i], b"m", partial)


class TestJoinLeave:
    def test_signer_out_signer_in(self, deployed, toy_group, rng):
        """Signer 1 leaves, signer 6 joins: committee {2..6}."""
        scheme, pk, shares, vks = deployed
        new_shares, new_vks, _ = reshare(
            deployed, toy_group, rng, new_indices=(2, 3, 4, 5, 6))
        assert sorted(new_shares) == [2, 3, 4, 5, 6]
        message = b"after churn"
        partials = [scheme.share_sign(new_shares[i], message)
                    for i in (2, 5, 6)]
        signature = scheme.combine(pk, new_vks, message, partials)
        assert scheme.verify(pk, message, signature)

    def test_departed_share_useless_in_new_committee(self, deployed,
                                                     toy_group, rng):
        scheme, pk, shares, vks = deployed
        _, new_vks, _ = reshare(
            deployed, toy_group, rng, new_indices=(2, 3, 4, 5, 6))
        stale = scheme.share_sign(shares[2], b"m")
        assert not scheme.share_verify(pk, new_vks[2], b"m", stale)

    def test_threshold_can_grow(self, deployed, toy_group, rng):
        """(2, 5) -> (3, 7): four partials now needed and sufficient."""
        scheme, pk, shares, vks = deployed
        p = scheme.params
        new_shares, new_vks, _ = reshare(
            deployed, toy_group, rng, new_t=3,
            new_indices=(1, 2, 3, 4, 5, 6, 7))
        # Combining is threshold-aware: the new committee runs a t'=3
        # scheme over the same generators and hash domain.
        grown = LJYThresholdScheme(ThresholdParams(
            group=toy_group, t=3, n=7, g_z=p.g_z, g_r=p.g_r,
            hash_domain=p.hash_domain))
        message = b"wider committee"
        partials = [grown.share_sign(new_shares[i], message)
                    for i in (1, 3, 5, 7)]
        signature = grown.combine(pk, new_vks, message, partials)
        assert grown.verify(pk, message, signature)
        assert scheme.verify(pk, message, signature)

    def test_crashed_holder_not_needed(self, deployed, toy_group, rng):
        """Only t+1 = 3 of 5 holders deal; the reshare still lands."""
        scheme, pk, shares, vks = deployed
        surviving = {i: shares[i] for i in (2, 4, 5)}
        new_shares, new_vks, _ = reshare(
            deployed, toy_group, rng, shares=surviving,
            new_indices=(1, 2, 3, 4, 5))
        partials = [scheme.share_sign(new_shares[i], b"m")
                    for i in (1, 2, 3)]
        assert scheme.verify(
            pk, b"m", scheme.combine(pk, new_vks, b"m", partials))

    def test_old_plus_new_shares_below_threshold_useless(
            self, deployed, toy_group, rng):
        """t old shares plus t new ones never meet the threshold in any
        single sharing, so the mobile adversary learns nothing."""
        scheme, pk, shares, vks = deployed
        new_shares, _, _ = reshare(deployed, toy_group, rng)
        mixed = [shares[1], shares[2], new_shares[3]]
        recovered = reconstruct_master_key(mixed, toy_group.order, 2)
        true_key = reconstruct_master_key(
            list(shares.values()), toy_group.order, 2)
        assert recovered != true_key


class TestReshareValidation:
    def test_committee_too_small(self, deployed, toy_group, rng):
        with pytest.raises(ParameterError):
            reshare(deployed, toy_group, rng, new_t=2,
                    new_indices=(1, 2, 3, 4))

    def test_too_few_holders(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        with pytest.raises(ParameterError):
            reshare(deployed, toy_group, rng,
                    shares={i: shares[i] for i in (1, 2)})

    def test_missing_dealer_vk_rejected(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params
        thin_vks = {i: vks[i] for i in (1, 2, 3, 4)}
        with pytest.raises(ParameterError):
            run_reshare(toy_group, p.g_z, p.g_r, 2, 2, (1, 2, 3, 4, 5),
                        shares, thin_vks, rng=rng)

    def test_wrong_public_key_rejected(self, deployed, toy_group, rng):
        """The recombined components are checked against the PK handed
        in — a transcript for a different key raises, never signs."""
        scheme, pk, shares, vks = deployed
        p = scheme.params
        other_pk, _, _ = scheme.dealer_keygen(rng=rng)
        with pytest.raises(ProtocolError):
            run_reshare(toy_group, p.g_z, p.g_r, 2, 2, (1, 2, 3, 4, 5),
                        shares, vks, public_key=other_pk, rng=rng)


class TestReshareAdversary:
    def test_substituted_secret_dealer_disqualified(self, deployed,
                                                    toy_group, rng):
        """A dealer subsharing a *different* value than its real share
        fails the public VK-binding check and is excluded — this is the
        check that makes 'PK never changes' a guarantee."""
        scheme, pk, shares, vks = deployed
        p = scheme.params

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                # Deal consistently, but for a fabricated share value.
                minion = ResharePlayer(
                    1, toy_group, p.g_z, p.g_r, 2, 2,
                    sorted(shares), [1, 2, 3, 4, 5], vks,
                    old_share=shares[1] + shares[1], rng=rng)
                return minion.on_round(0, [])
            return []

        new_shares, new_vks, network = run_reshare(
            toy_group, p.g_z, p.g_r, 2, 2, (1, 2, 3, 4, 5), shares, vks,
            public_key=pk, adversary=ScriptedAdversary(script), rng=rng)
        for result in network.players.values():
            if result.index != 1:
                assert 1 not in result.finalize().qualified
        partials = [scheme.share_sign(new_shares[i], b"m")
                    for i in (2, 3, 4)]
        assert scheme.verify(
            pk, b"m", scheme.combine(pk, new_vks, b"m", partials))

    def test_bad_subshare_answered_keeps_dealer(self, deployed, toy_group,
                                                rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(1)
                minion = ResharePlayer(
                    1, toy_group, p.g_z, p.g_r, 2, 2,
                    sorted(shares), [1, 2, 3, 4, 5], vks,
                    old_share=shares[1], rng=rng)
                adversary.minion = minion
                out = []
                for m in minion.on_round(0, []):
                    if m.kind == "shares" and m.recipient == 2:
                        bad = [(a + 1, b) for a, b in m.payload]
                        out.append(private(1, 2, "shares", bad))
                    else:
                        out.append(m)
                return out
            inbox = [m for m in deliveries
                     if m.is_broadcast or m.recipient == 1]
            adversary.minion.record_round(inbox)
            return adversary.minion.on_round(round_no, inbox)

        new_shares, new_vks, network = run_reshare(
            toy_group, p.g_z, p.g_r, 2, 2, (1, 2, 3, 4, 5), shares, vks,
            public_key=pk, adversary=ScriptedAdversary(script), rng=rng)
        honest = [w for i, w in network.players.items() if i != 1]
        assert all(1 in w.finalize().qualified for w in honest)
        # Player 2 adopted the published response share.
        partials = [scheme.share_sign(new_shares[i], b"m")
                    for i in (2, 3, 4)]
        assert scheme.verify(
            pk, b"m", scheme.combine(pk, new_vks, b"m", partials))

    def test_unanswered_complaint_disqualifies(self, deployed, toy_group,
                                               rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(3)
                minion = ResharePlayer(
                    3, toy_group, p.g_z, p.g_r, 2, 2,
                    sorted(shares), [1, 2, 3, 4, 5], vks,
                    old_share=shares[3], rng=rng)
                out = []
                for m in minion.on_round(0, []):
                    if m.kind == "shares":
                        bad = [(a + 1, b + 2) for a, b in m.payload]
                        out.append(private(3, m.recipient, "shares", bad))
                    else:
                        out.append(m)
                return out
            return []   # never responds

        new_shares, new_vks, network = run_reshare(
            toy_group, p.g_z, p.g_r, 2, 2, (1, 2, 3, 4, 5), shares, vks,
            public_key=pk, adversary=ScriptedAdversary(script), rng=rng)
        honest = [w for i, w in network.players.items() if i != 3]
        assert all(3 not in w.finalize().qualified for w in honest)
        partials = [scheme.share_sign(new_shares[i], b"m")
                    for i in (1, 2, 4)]
        assert scheme.verify(
            pk, b"m", scheme.combine(pk, new_vks, b"m", partials))

    def test_silent_dealer_tolerated(self, deployed, toy_group, rng):
        scheme, pk, shares, vks = deployed
        p = scheme.params

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(5)
            return []

        new_shares, new_vks, _ = run_reshare(
            toy_group, p.g_z, p.g_r, 2, 2, (1, 2, 3, 4, 5), shares, vks,
            public_key=pk, adversary=ScriptedAdversary(script), rng=rng)
        partials = [scheme.share_sign(new_shares[i], b"m")
                    for i in (1, 2, 3)]
        assert scheme.verify(
            pk, b"m", scheme.combine(pk, new_vks, b"m", partials))
