"""Cross-module integration tests: DKG -> scheme -> refresh -> attacks.

These exercise whole pipelines rather than single modules, including
adaptive corruption *during* the key-generation protocol — the scenario
Definition 1's first phase allows and the SIP-based prior work struggled
with.
"""

import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.dkg.pedersen_dkg import (
    PedersenDKGPlayer, dkg_result_to_keys, run_pedersen_dkg,
)
from repro.dkg.refresh import run_refresh
from repro.net.adversary import ScriptedAdversary

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


class TestDKGToSigningPipeline:
    def test_corruption_during_dkg_then_signing(self, toy_group, rng):
        """The adversary corrupts a player mid-DKG (after dealing), reads
        its full state, keeps it following the protocol, and the system
        still signs; the stolen share is one of the t tolerated."""
        params = ThresholdParams.generate(toy_group, t=2, n=5)
        scheme = LJYThresholdScheme(params)
        captured = {}

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 1:      # after dealing: erasure-free capture
                state = adversary.corrupt(4)
                captured["polynomials"] = state["dealings"]
                captured["received"] = dict(state["received_shares"])
                adversary.minion = PedersenDKGPlayer(
                    4, toy_group, params.g_z, params.g_r, 2, 5, rng=rng)
                # Keep following the protocol with the captured state.
                adversary.minion.__dict__.update(state)
            if round_no >= 1 and hasattr(adversary, "minion"):
                inbox = [m for m in deliveries
                         if m.is_broadcast or m.recipient == 4]
                adversary.minion.record_round(inbox)
                return adversary.minion.on_round(round_no, inbox)
            return []

        results, _ = run_pedersen_dkg(
            toy_group, params.g_z, params.g_r, 2, 5,
            adversary=ScriptedAdversary(script), rng=rng)
        # Erasure-free capture really contained the sharing polynomials.
        assert captured["polynomials"]
        # The remaining honest players can still run the system.
        pk, _, vks = dkg_result_to_keys(scheme, results[1])
        shares = {i: dkg_result_to_keys(scheme, results[i])[1]
                  for i in results}
        partials = [scheme.share_sign(shares[i], b"go") for i in (1, 2, 3)]
        signature = scheme.combine(pk, vks, b"go", partials)
        assert scheme.verify(pk, b"go", signature)

    def test_dkg_sign_refresh_sign(self, toy_group, rng):
        """Full lifecycle: distributed keygen, sign, refresh, sign again
        with a different quorum, signatures agree (determinism)."""
        params = ThresholdParams.generate(toy_group, t=2, n=5)
        scheme = LJYThresholdScheme(params)
        results, _ = run_pedersen_dkg(
            toy_group, params.g_z, params.g_r, 2, 5, rng=rng)
        pk, _, vks = dkg_result_to_keys(scheme, results[1])
        shares = {i: dkg_result_to_keys(scheme, results[i])[1]
                  for i in results}
        sig1 = scheme.combine(pk, vks, b"m", [
            scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
        new_shares, new_vks, _ = run_refresh(
            toy_group, params.g_z, params.g_r, 2, 5, shares, vks, rng=rng)
        sig2 = scheme.combine(pk, new_vks, b"m", [
            scheme.share_sign(new_shares[i], b"m") for i in (3, 4, 5)])
        assert sig1.to_bytes() == sig2.to_bytes()
        assert scheme.verify(pk, b"m", sig2)

    def test_disqualified_player_cannot_contribute(self, toy_group, rng):
        """A dealer disqualified during the DKG ends with the implicit
        zero share; its 'partial signatures' are rejected by Share-Verify
        against the all-ones VK."""
        params = ThresholdParams.generate(toy_group, t=1, n=4)
        scheme = LJYThresholdScheme(params)

        def script(adversary, round_no, honest_messages, deliveries):
            if round_no == 0:
                adversary.corrupt(2)   # stays silent: disqualified
            return []

        results, _ = run_pedersen_dkg(
            toy_group, params.g_z, params.g_r, 1, 4,
            adversary=ScriptedAdversary(script), rng=rng)
        assert all(2 not in r.qualified for r in results.values())
        pk, _, vks = dkg_result_to_keys(scheme, results[1])
        # VK_2 is the identity pair; an adversarial partial under any key
        # fails Share-Verify.
        from repro.core.keys import PartialSignature
        g = toy_group.g1_generator()
        fake = PartialSignature(index=2, z=g ** 5, r=g ** 7)
        assert not scheme.share_verify(pk, vks[2], b"m", fake)

    def test_two_independent_dkgs_different_keys(self, toy_group):
        params = ThresholdParams.generate(toy_group, t=1, n=3)
        r1, _ = run_pedersen_dkg(toy_group, params.g_z, params.g_r, 1, 3,
                                 rng=random.Random(1))
        r2, _ = run_pedersen_dkg(toy_group, params.g_z, params.g_r, 1, 3,
                                 rng=random.Random(2))
        assert r1[1].public_components[0] != r2[1].public_components[0]

    @pytest.mark.bn254
    def test_full_pipeline_on_real_curve(self, bn254_group, rng):
        params = ThresholdParams.generate(bn254_group, t=1, n=3)
        scheme = LJYThresholdScheme(params)
        results, network = run_pedersen_dkg(
            bn254_group, params.g_z, params.g_r, 1, 3, rng=rng)
        assert network.metrics.communication_rounds == 1
        pk, _, vks = dkg_result_to_keys(scheme, results[1])
        shares = {i: dkg_result_to_keys(scheme, results[i])[1]
                  for i in results}
        partials = [scheme.share_sign(shares[i], b"real") for i in (2, 3)]
        signature = scheme.combine(pk, vks, b"real", partials)
        assert scheme.verify(pk, b"real", signature)


class TestExampleScripts:
    """The shipped examples must actually run (toy backend, quickly)."""

    @pytest.mark.parametrize("script,args", [
        ("quickstart.py", ["-t", "1", "-n", "3"]),
        ("distributed_ca.py", []),
        ("proactive_storage.py", ["--epochs", "2"]),
        ("adaptive_adversary_demo.py", ["--trials", "20"]),
    ])
    def test_example_runs(self, script, args):
        result = subprocess.run(
            [sys.executable, str(EXAMPLES / script), *args],
            capture_output=True, text=True, timeout=300)
        assert result.returncode == 0, result.stderr[-2000:]
        assert result.stdout     # says something


class TestCrossSchemeConsistency:
    """The same DKG transcript drives both pair-based schemes."""

    def test_single_pair_dkg_feeds_standard_model(self, toy_group, rng):
        from repro.core.standard_model import (
            LJYStandardModelScheme, SMParams, SMPrivateKeyShare,
            SMPublicKey, SMVerificationKey,
        )
        sm_params = SMParams.generate(toy_group, t=2, n=5, bit_length=16)
        results, _ = run_pedersen_dkg(
            toy_group, sm_params.g_z, sm_params.g_r, 2, 5, num_pairs=1,
            rng=rng)
        scheme = LJYStandardModelScheme(sm_params)
        reference = results[1]
        pk = SMPublicKey(params=sm_params,
                         g_1=reference.public_components[0])
        vks = {
            j: SMVerificationKey(index=j, v=vals[0])
            for j, vals in reference.verification_keys.items()
        }
        shares = {
            i: SMPrivateKeyShare(
                index=i, a=results[i].share_pairs[0][0],
                b=results[i].share_pairs[0][1])
            for i in results
        }
        partials = [scheme.share_sign(shares[i], b"sm-dkg", rng=rng)
                    for i in (1, 2, 3)]
        for partial in partials:
            assert scheme.share_verify(pk, vks[partial.index], b"sm-dkg",
                                       partial)
        signature = scheme.combine(pk, vks, b"sm-dkg", partials, rng=rng)
        assert scheme.verify(pk, b"sm-dkg", signature)
