"""Tests for the Definition 1 game harness and the implemented attacks."""

import random

import pytest

from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.errors import SecurityGameError
from repro.security.attacks import (
    BiasAttackResult, default_predicate, gjkr_bias_experiment,
    honest_pedersen_baseline, pedersen_bias_experiment,
)
from repro.security.games import (
    AdaptiveChosenMessageGame, BelowThresholdAdversary,
    HonestThresholdAdversary, LagrangeForgeryAdversary,
    MauledSignatureAdversary,
)


@pytest.fixture
def game(toy_scheme, rng):
    return AdaptiveChosenMessageGame(toy_scheme, rng=rng)


class TestGameBookkeeping:
    def test_corruption_returns_share(self, game):
        result_share = game._corrupt(1)
        assert result_share == game.shares[1]
        assert 1 in game.corrupted

    def test_sign_query_tracks_message(self, game):
        game._sign_query(2, b"m")
        assert game.signed_by[b"m"] == {2}

    def test_sign_query_for_corrupted_rejected(self, game):
        game._corrupt(1)
        with pytest.raises(SecurityGameError):
            game._sign_query(1, b"m")

    def test_unknown_player_rejected(self, game):
        with pytest.raises(SecurityGameError):
            game._corrupt(42)
        with pytest.raises(SecurityGameError):
            game._sign_query(42, b"m")

    def test_abort_counts_as_loss(self, game):
        result = game.play(lambda api: None)
        assert not result.won
        assert result.reason == "adversary aborted"


class TestAdversariesLose:
    @pytest.mark.parametrize("adversary_cls", [
        BelowThresholdAdversary,
        LagrangeForgeryAdversary,
        MauledSignatureAdversary,
    ])
    def test_strategy_loses(self, toy_scheme, rng, adversary_cls):
        game = AdaptiveChosenMessageGame(toy_scheme, rng=rng)
        result = game.play(adversary_cls())
        assert not result.won
        assert result.reason == "signature rejected"

    def test_trivial_win_flagged(self, toy_scheme, rng):
        game = AdaptiveChosenMessageGame(toy_scheme, rng=rng)
        result = game.play(HonestThresholdAdversary())
        assert not result.won
        assert result.reason.startswith("trivial")

    def test_strategies_lose_with_dkg_keys(self, toy_scheme, rng):
        game = AdaptiveChosenMessageGame(toy_scheme, rng=rng, use_dkg=True)
        result = game.play(BelowThresholdAdversary())
        assert not result.won

    def test_mixed_corruption_and_signing_below_threshold(
            self, toy_scheme, rng):
        """Corrupt 1 player, query 1 partial on M*: V = 2 < t+1 = 3,
        and the resulting data cannot forge."""
        def adversary(api):
            share = api.corrupt(1)
            partial = api.sign_query(2, b"target")
            scheme = LJYThresholdScheme(api.public_key.params)
            own = scheme.share_sign(share, b"target")
            from repro.math.lagrange import lagrange_coefficients
            order = api.public_key.params.group.order
            coeffs = lagrange_coefficients([1, 2, 3], order)
            z = (own.z ** coeffs[1]) * (partial.z ** coeffs[2])
            r = (own.r ** coeffs[1]) * (partial.r ** coeffs[2])
            from repro.core.keys import Signature
            return b"target", Signature(z=z, r=r)

        game = AdaptiveChosenMessageGame(toy_scheme, rng=rng)
        result = game.play(adversary)
        assert not result.won
        assert result.reason == "signature rejected"

    def test_full_corruption_is_trivial(self, toy_scheme, rng):
        def adversary(api):
            shares = [api.corrupt(i) for i in (1, 2, 3)]
            scheme = LJYThresholdScheme(api.public_key.params)
            partials = [scheme.share_sign(s, b"m") for s in shares]
            signature = scheme.combine(
                api.public_key, api.verification_keys, b"m", partials)
            return b"m", signature

        game = AdaptiveChosenMessageGame(toy_scheme, rng=rng)
        result = game.play(adversary)
        assert not result.won
        assert result.reason.startswith("trivial")


class TestBiasAttack:
    TRIALS = 60

    def test_attack_biases_pedersen(self, toy_group):
        rng = random.Random(1000)
        result = pedersen_bias_experiment(
            toy_group, t=1, n=4, trials=self.TRIALS, num_corrupted=2,
            rng=rng)
        # Expected ~1 - 2^-4 = 93.75%; allow generous noise margin.
        assert result.success_rate > 0.80

    def test_single_corruption_weaker_bias(self, toy_group):
        rng = random.Random(1001)
        result = pedersen_bias_experiment(
            toy_group, t=1, n=4, trials=self.TRIALS, num_corrupted=1,
            rng=rng)
        # Expected ~75%.
        assert 0.55 < result.success_rate < 0.95

    def test_honest_baseline_unbiased(self, toy_group):
        rng = random.Random(1002)
        result = honest_pedersen_baseline(
            toy_group, t=1, n=4, trials=self.TRIALS, rng=rng)
        assert 0.3 < result.success_rate < 0.7

    def test_gjkr_immune(self, toy_group):
        rng = random.Random(1003)
        result = gjkr_bias_experiment(
            toy_group, t=1, n=4, trials=self.TRIALS, num_corrupted=2,
            rng=rng)
        assert 0.3 < result.success_rate < 0.7

    def test_result_dataclass(self):
        result = BiasAttackResult(trials=10, successes=7)
        assert result.success_rate == 0.7
        assert BiasAttackResult(0, 0).success_rate == 0.0

    def test_predicate_is_balanced(self, toy_group, rng):
        hits = sum(
            1 for i in range(200)
            if default_predicate([toy_group.g1_generator() ** (i + 1)]))
        assert 60 < hits < 140


class TestBiasedKeyStillSigns:
    """The paper's central point: the biased PK is still a working,
    secure public key for the Section 3 scheme."""

    def test_sign_under_biased_key(self, toy_group):
        rng = random.Random(2024)
        from repro.dkg.pedersen_dkg import dkg_result_to_keys, run_pedersen_dkg
        from repro.security.attacks import PedersenBiasAdversary

        g_z = toy_group.derive_g2("bias:g_z")
        g_r = toy_group.derive_g2("bias:g_r")
        adversary = PedersenBiasAdversary(
            corrupted_indices=[1], predicate=default_predicate,
            group=toy_group, g_z=g_z, g_r=g_r, t=1, n=4, rng=rng)
        results, _ = run_pedersen_dkg(
            toy_group, g_z, g_r, 1, 4, adversary=adversary, rng=rng)
        params = ThresholdParams(group=toy_group, t=1, n=4, g_z=g_z, g_r=g_r)
        scheme = LJYThresholdScheme(params)
        keys = {i: dkg_result_to_keys(scheme, results[i]) for i in results}
        honest = sorted(keys)
        pk = keys[honest[0]][0]
        vks = keys[honest[0]][2]
        partials = [scheme.share_sign(keys[i][1], b"biased")
                    for i in honest[:2]]
        signature = scheme.combine(pk, vks, b"biased", partials)
        assert scheme.verify(pk, b"biased", signature)
