"""Tests for the one-time LHSPS schemes (DP and SDP variants)."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.groups import get_group
from repro.lhsps.onetime import DPLHSPS, DPSecretKey, derive_signature
from repro.lhsps.sdp_onetime import SDPLHSPS
from repro.lhsps.template import OneTimeLHSPS

GROUP = get_group("toy")
small_scalars = st.integers(min_value=0, max_value=GROUP.order - 1)


def message_vector(seed: bytes, dimension: int):
    return GROUP.hash_to_g1_vector(seed, dimension)


@pytest.fixture(params=[DPLHSPS, SDPLHSPS])
def scheme(request):
    return request.param(GROUP, dimension=3)


class TestSignVerify:
    def test_roundtrip(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        msg = message_vector(b"v1", 3)
        sig = scheme.sign(kp.sk, msg)
        assert scheme.verify(kp.pk, msg, sig)

    def test_wrong_message_rejected(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        sig = scheme.sign(kp.sk, message_vector(b"v1", 3))
        assert not scheme.verify(kp.pk, message_vector(b"v2", 3), sig)

    def test_wrong_key_rejected(self, scheme, rng):
        kp1 = scheme.keygen(rng=rng)
        kp2 = scheme.keygen(rng=rng)
        msg = message_vector(b"v1", 3)
        sig = scheme.sign(kp1.sk, msg)
        assert not scheme.verify(kp2.pk, msg, sig)

    def test_all_identity_vector_rejected(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        ones = [GROUP.g1_identity()] * 3
        sig = scheme.sign(kp.sk, ones)
        assert not scheme.verify(kp.pk, ones, sig)

    def test_dimension_mismatch(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        with pytest.raises(ParameterError):
            scheme.sign(kp.sk, message_vector(b"v", 2))
        sig = scheme.sign(kp.sk, message_vector(b"v", 3))
        assert not scheme.verify(kp.pk, message_vector(b"v", 2)[:2], sig)

    def test_deterministic(self, scheme, rng):
        kp = scheme.keygen(rng=rng)
        msg = message_vector(b"v1", 3)
        s1 = scheme.sign(kp.sk, msg)
        s2 = scheme.sign(kp.sk, msg)
        assert s1.to_bytes() == s2.to_bytes()

    def test_invalid_dimension_rejected(self):
        with pytest.raises(ParameterError):
            DPLHSPS(GROUP, dimension=0)


class TestLinearHomomorphism:
    @given(w1=small_scalars, w2=small_scalars)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_derived_signature_verifies(self, scheme, w1, w2):
        # The scheme fixture is immutable, so reuse across examples is fine.
        kp = scheme.keygen()
        m1 = message_vector(b"m1", 3)
        m2 = message_vector(b"m2", 3)
        s1 = scheme.sign(kp.sk, m1)
        s2 = scheme.sign(kp.sk, m2)
        derived = scheme.sign_derive(kp.pk, [(w1, s1), (w2, s2)])
        combined = OneTimeLHSPS.combine_messages(
            GROUP, [(w1, m1), (w2, m2)])
        if all(c.is_identity() for c in combined):
            return   # excluded vector
        assert scheme.verify(kp.pk, combined, derived)

    def test_derived_equals_direct(self, scheme, rng):
        # Deriving on (3, 5) matches signing the combination directly.
        kp = scheme.keygen(rng=rng)
        m1 = message_vector(b"m1", 3)
        m2 = message_vector(b"m2", 3)
        derived = scheme.sign_derive(
            kp.pk, [(3, scheme.sign(kp.sk, m1)), (5, scheme.sign(kp.sk, m2))])
        combined = OneTimeLHSPS.combine_messages(GROUP, [(3, m1), (5, m2)])
        direct = scheme.sign(kp.sk, combined)
        assert derived.to_bytes() == direct.to_bytes()


class TestKeyHomomorphism:
    """Footnote 4: signatures under sk1 and sk2 multiply into a signature
    under sk1 + sk2 — the enabler of non-interactive threshold signing."""

    def test_dp_key_addition(self, rng):
        scheme = DPLHSPS(GROUP, dimension=2)
        kp1 = scheme.keygen(rng=rng)
        kp2 = scheme.keygen(rng=rng)
        sk_sum = kp1.sk + kp2.sk
        msg = message_vector(b"kh", 2)
        s1 = scheme.sign(kp1.sk, msg)
        s2 = scheme.sign(kp2.sk, msg)
        merged = derive_signature(GROUP, [(1, s1), (1, s2)])
        direct = scheme.sign(sk_sum, msg)
        assert merged.to_bytes() == direct.to_bytes()
        assert scheme.verify(scheme.public_key_for(sk_sum), msg, merged)

    def test_sdp_key_addition(self, rng):
        scheme = SDPLHSPS(GROUP, dimension=2)
        kp1 = scheme.keygen(rng=rng)
        kp2 = scheme.keygen(rng=rng)
        sk_sum = kp1.sk + kp2.sk
        msg = message_vector(b"kh", 2)
        direct = scheme.sign(sk_sum, msg)
        assert scheme.verify(scheme.public_key_for(sk_sum), msg, direct)

    def test_key_dimension_mismatch(self, rng):
        a = DPSecretKey(((1, 2),))
        b = DPSecretKey(((1, 2), (3, 4)))
        with pytest.raises(ParameterError):
            a + b


@pytest.mark.bn254
class TestOnRealCurve:
    def test_dp_roundtrip_bn254(self, bn254_group, rng):
        scheme = DPLHSPS(bn254_group, dimension=2)
        kp = scheme.keygen(rng=rng)
        msg = bn254_group.hash_to_g1_vector(b"real", 2)
        sig = scheme.sign(kp.sk, msg)
        assert scheme.verify(kp.pk, msg, sig)
        assert not scheme.verify(
            kp.pk, bn254_group.hash_to_g1_vector(b"fake", 2), sig)
