"""Property-based fuzz tests for the wire codec and the v3 frame layer.

No hypothesis dependency — the sweeps are deterministic, driven by the
session-seeded ``random.Random`` (rerun a failure with ``--seed N``;
the effective seed is printed in the terminal summary).  Three
properties, each swept over a corpus covering every wire type:

* **round trip** — ``decode(encode(x)) == x``, ``encode(decode(blob))
  == blob`` (canonicity), and :meth:`WireCodec.encoded_size` /
  :meth:`WireCodec.framed_size` exactly predict the real byte counts;
* **truncation** — every strict prefix of every blob is a typed
  :class:`~repro.errors.SerializationError`, at *every* boundary, not
  just "one byte short";
* **bit flips** — a single flipped bit anywhere in a blob either
  raises :class:`~repro.errors.SerializationError` or decodes to a
  well-typed value of the expected class.  Never a hang, never a
  foreign exception (``UnicodeDecodeError``, ``ValueError``, ...).

The bit-flip sweep deliberately does **not** assert canonical
re-encoding of a successfully decoded mutant: the toy backend's group
decoding is non-validating by design (``g1_from_bytes`` accepts any
fixed-width field, ``decode_scalar`` does not reduce mod the order),
so a flipped element byte can decode to a non-canonical value.  The
``bn254`` variant of the sweep runs the same corpus through the real
curve, where point decoding *does* validate.
"""

import random

import pytest

from repro.core.keys import PrivateKeyShare
from repro.core.scheme import ServiceHandle
from repro.errors import SerializationError
from repro.serialization import (
    FRAME_HEADER_BYTES, FRAME_KIND_JOB, FRAME_KINDS, FRAME_MAGIC,
    FRAME_VERSION, MAX_FRAME_BYTES, PartialSignJob, PartialSignOutcome,
    SignRequestJob, SignRequestOutcome, SignWindowJob, SignWindowOutcome,
    VerifyRequestJob, VerifyRequestOutcome, VerifyWindowJob,
    VerifyWindowOutcome, WalAdmitRecord, WalDoneRecord, WireCodec,
    decode_frame_header, encode_frame,
)


def _corpus(handle, codec, rng):
    """(value, encode, decode) triples covering every wire type, with
    messages sized to keep the quadratic truncation sweep fast."""
    messages = [b"", rng.randbytes(1), rng.randbytes(33),
                rng.randbytes(200), b"\xff\x00S V P q w"]
    message = rng.randbytes(48)
    partials = handle.partials_for(message)
    signature = handle.sign(message)
    vk = next(iter(handle.verification_keys.values()))
    share = next(iter(handle.shares.values()))
    quorum = tuple(handle.quorum())

    jobs = [
        SignWindowJob(shard_id=rng.randrange(1 << 16), messages=tuple(
            messages), quorum=quorum, epoch=rng.randrange(4)),
        SignWindowJob(shard_id=0, messages=(), quorum=()),
        VerifyWindowJob(shard_id=1, messages=(message,),
                        signatures=(signature,)),
        PartialSignJob(shard_id=2, message=messages[3], signers=quorum),
        SignRequestJob(shard_id=3, message=messages[2], quorum=quorum,
                       epoch=1),
        VerifyRequestJob(shard_id=4, message=messages[1],
                         signature=signature),
    ]
    outcomes = [
        SignWindowOutcome(signatures=(signature, None, signature),
                          flagged=(1, 2),
                          failures=((1, "no quorum: bad shares"),),
                          fallback_combines=2),
        VerifyWindowOutcome(verdicts=(True, False, True)),
        PartialSignOutcome(partials=tuple(partials)),
        SignRequestOutcome(signature=signature, flagged=True),
        SignRequestOutcome(signature=None, failure="shed: over quota"),
        VerifyRequestOutcome(verdict=False),
    ]
    wal_records = [
        WalAdmitRecord(request_id=rng.randrange(1 << 48),
                       message=messages[3], epoch=2),
        WalDoneRecord(request_id=7, signature=signature),
        WalDoneRecord(request_id=8, signature=None, reason="replayed"),
    ]

    triples = [(partials[0], codec.encode_partial, codec.decode_partial),
               (signature, codec.encode_signature, codec.decode_signature),
               (vk, codec.encode_verification_key,
                codec.decode_verification_key),
               (share, codec.encode_share, codec.decode_share)]
    triples += [(job, codec.encode_job, codec.decode_job) for job in jobs]
    triples += [(outcome, codec.encode_outcome, codec.decode_outcome)
                for outcome in outcomes]
    triples += [(record, codec.encode_wal_record, codec.decode_wal_record)
                for record in wal_records]
    return triples


def _wire(group, session_seed):
    seed = 0xF022 if session_seed is None else session_seed
    rng = random.Random(f"fuzz-wire:{seed}")
    handle = ServiceHandle.dealer(group, 2, 5, rng=rng)
    return _corpus(handle, WireCodec(group), rng), rng


@pytest.fixture
def toy_wire(toy_group, session_seed):
    return _wire(toy_group, session_seed)


@pytest.fixture
def bn254_wire(bn254_group, session_seed):
    return _wire(bn254_group, session_seed)


def _flip_bit(blob: bytes, bit: int) -> bytes:
    mutated = bytearray(blob)
    mutated[bit // 8] ^= 1 << (bit % 8)
    return bytes(mutated)


def _assert_round_trips(corpus, codec):
    for value, encode, decode in corpus:
        blob = encode(value)
        assert len(blob) == codec.encoded_size(value), type(value).__name__
        assert codec.framed_size(value) == FRAME_HEADER_BYTES + len(blob)
        decoded = decode(blob)
        if not isinstance(value, PrivateKeyShare):
            assert decoded == value
        else:
            # Shares decode reduced mod the group order.
            assert decoded == value.reduce(codec.group.order)
        assert encode(decoded) == blob  # canonical on both backends


def _assert_truncations_rejected(corpus):
    for value, encode, decode in corpus:
        blob = encode(value)
        for cut in range(len(blob)):
            with pytest.raises(SerializationError):
                decode(blob[:cut])
        with pytest.raises(SerializationError):
            decode(blob + b"\x00")


#: A flipped bit in the one-byte kind tag can lawfully turn one kind
#: into a *different valid kind* (``S`` and ``Q`` differ by one bit),
#: so a surviving mutant may be any type its decoder can emit.
_JOB_TYPES = (SignWindowJob, VerifyWindowJob, PartialSignJob,
              SignRequestJob, VerifyRequestJob)
_OUTCOME_TYPES = (SignWindowOutcome, VerifyWindowOutcome,
                  PartialSignOutcome, SignRequestOutcome,
                  VerifyRequestOutcome)
_WAL_TYPES = (WalAdmitRecord, WalDoneRecord)


def _allowed_types(value):
    for family in (_JOB_TYPES, _OUTCOME_TYPES, _WAL_TYPES):
        if isinstance(value, family):
            return family
    return (type(value),)


def _assert_bit_flips_typed(corpus, rng):
    for value, encode, decode in corpus:
        blob = encode(value)
        bits = len(blob) * 8
        # Every bit of the first 24 bytes (kind tags, counts, status
        # flags — the control plane), plus a seeded sample of the rest.
        positions = set(range(min(bits, 24 * 8)))
        positions.update(rng.sample(range(bits), min(bits, 256)))
        allowed = _allowed_types(value)
        for bit in sorted(positions):
            try:
                decoded = decode(_flip_bit(blob, bit))
            except SerializationError:
                continue
            # A surviving mutant must still be well-typed — a flipped
            # payload byte changes the value (or the kind tag, within
            # the decoder's family), never the shape, and never
            # escapes as a foreign exception.
            assert isinstance(decoded, allowed), (
                f"{type(value).__name__} bit {bit} decoded to "
                f"{type(decoded).__name__}")


class TestWireFuzzToy:
    def test_round_trip_and_size_accounting(self, toy_wire, toy_group):
        corpus, _rng = toy_wire
        _assert_round_trips(corpus, WireCodec(toy_group))

    def test_truncation_at_every_boundary(self, toy_wire):
        corpus, _rng = toy_wire
        _assert_truncations_rejected(corpus)

    def test_single_bit_flips_are_typed(self, toy_wire):
        corpus, rng = toy_wire
        _assert_bit_flips_typed(corpus, rng)


@pytest.mark.bn254
class TestWireFuzzBn254:
    def test_round_trip_and_size_accounting(self, bn254_wire, bn254_group):
        corpus, _rng = bn254_wire
        _assert_round_trips(corpus, WireCodec(bn254_group))

    def test_truncation_at_every_boundary(self, bn254_wire):
        corpus, _rng = bn254_wire
        _assert_truncations_rejected(corpus)

    def test_single_bit_flips_are_typed(self, bn254_wire):
        corpus, rng = bn254_wire
        _assert_bit_flips_typed(corpus, rng)


# ---------------------------------------------------------------------------
# the v3 frame layer
# ---------------------------------------------------------------------------

class TestFrameFuzz:
    def test_header_round_trip(self, session_seed):
        rng = random.Random(0xF033 if session_seed is None
                            else session_seed)
        for _ in range(64):
            kind = rng.choice(FRAME_KINDS)
            request_id = rng.randrange(1 << 64)
            payload = rng.randbytes(rng.randrange(64))
            frame = encode_frame(kind, payload, request_id=request_id)
            assert len(frame) == FRAME_HEADER_BYTES + len(payload)
            decoded = decode_frame_header(frame[:FRAME_HEADER_BYTES])
            assert decoded == (kind, request_id, len(payload))

    def test_header_wrong_length_rejected(self):
        frame = encode_frame(FRAME_KIND_JOB, b"payload")
        for cut in range(FRAME_HEADER_BYTES):
            with pytest.raises(SerializationError):
                decode_frame_header(frame[:cut])
        with pytest.raises(SerializationError):
            decode_frame_header(frame[:FRAME_HEADER_BYTES + 1])

    def test_header_bit_flips_are_typed(self, session_seed):
        rng = random.Random(0xF044 if session_seed is None
                            else session_seed)
        header = encode_frame(FRAME_KIND_JOB, b"x" * 100,
                              request_id=rng.randrange(1 << 64)
                              )[:FRAME_HEADER_BYTES]
        for bit in range(FRAME_HEADER_BYTES * 8):
            try:
                kind, request_id, length = decode_frame_header(
                    _flip_bit(header, bit))
            except SerializationError:
                # Magic, version, kind and the length cap are all
                # enforced; flips there must be refused.
                assert bit < 6 * 8 or bit >= 14 * 8
                continue
            # Flips in the request-id / length words survive (the
            # stream layer catches length mismatches) but the decoded
            # fields stay in-contract.
            assert kind in FRAME_KINDS
            assert 0 <= length <= MAX_FRAME_BYTES

    def test_unknown_kind_and_oversize_rejected(self):
        with pytest.raises(SerializationError):
            encode_frame(b"Z", b"")
        header = (FRAME_MAGIC + bytes([FRAME_VERSION]) + b"Z"
                  + (0).to_bytes(8, "big") + (0).to_bytes(4, "big"))
        with pytest.raises(SerializationError):
            decode_frame_header(header)
        oversize = (FRAME_MAGIC + bytes([FRAME_VERSION]) + FRAME_KIND_JOB
                    + (0).to_bytes(8, "big")
                    + (MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        with pytest.raises(SerializationError):
            decode_frame_header(oversize)

    def test_stale_version_refused(self):
        frame = bytearray(encode_frame(FRAME_KIND_JOB, b""))
        frame[4] = FRAME_VERSION - 1
        with pytest.raises(SerializationError, match="frame version"):
            decode_frame_header(bytes(frame[:FRAME_HEADER_BYTES]))
