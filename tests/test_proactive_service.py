"""Tests for the packaged proactive signing service."""

import pytest

from repro.core.proactive import ProactiveSigningService
from repro.errors import CombineError, ParameterError, ProtocolError


@pytest.fixture
def service(toy_group, rng):
    svc = ProactiveSigningService(toy_group, t=2, n=5, rng=rng)
    svc.bootstrap()
    return svc


class TestLifecycle:
    def test_bootstrap_one_round(self, service):
        assert service.public_key is not None
        assert service.reports[0].refresh_rounds == 1

    def test_double_bootstrap_rejected(self, service):
        with pytest.raises(ProtocolError):
            service.bootstrap()

    def test_sign_before_bootstrap_rejected(self, toy_group, rng):
        svc = ProactiveSigningService(toy_group, t=1, n=3, rng=rng)
        with pytest.raises(ProtocolError):
            svc.sign(b"m")

    def test_sign_and_verify(self, service):
        signature = service.sign(b"hello")
        assert service.verify(b"hello", signature)
        assert not service.verify(b"other", signature)
        assert service.reports[-1].signatures_issued == 1

    def test_explicit_signer_set(self, service):
        signature = service.sign(b"m", signers=(2, 4, 5))
        assert service.verify(b"m", signature)

    def test_advance_epoch_keeps_key(self, service):
        pk_before = service.public_key.to_bytes()
        sig_before = service.sign(b"stable")
        report = service.advance_epoch()
        assert report.epoch == 1
        assert report.refresh_rounds == 1
        assert service.public_key.to_bytes() == pk_before
        sig_after = service.sign(b"stable")
        assert sig_after.to_bytes() == sig_before.to_bytes()

    def test_multiple_epochs(self, service):
        for expected in (1, 2, 3):
            assert service.advance_epoch().epoch == expected
        assert service.verify(b"m", service.sign(b"m"))


class TestFailureHandling:
    def test_corrupt_share_dropped_and_recovered(self, service):
        service.corrupt_share_detected(3)
        assert 3 not in service.live_servers()
        assert 3 in service.reports[-1].flagged_servers
        # Still signs with the survivors.
        signature = service.sign(b"m", signers=(1, 2, 4))
        assert service.verify(b"m", signature)
        service.recover(3)
        assert 3 in service.live_servers()
        signature = service.sign(b"m2", signers=(3, 4, 5))
        assert service.verify(b"m2", signature)

    def test_corrupt_unknown_share_rejected(self, service):
        with pytest.raises(ParameterError):
            service.corrupt_share_detected(42)

    def test_recover_needs_helpers(self, toy_group, rng):
        svc = ProactiveSigningService(toy_group, t=2, n=5, rng=rng)
        svc.bootstrap()
        for index in (1, 2):
            svc.corrupt_share_detected(index)
        # 3 helpers remain = t+1: recovery works.
        svc.recover(1)
        svc.corrupt_share_detected(3)
        svc.corrupt_share_detected(1)
        with pytest.raises(CombineError):
            svc.recover(3)

    def test_too_few_signers_fails(self, service):
        with pytest.raises(CombineError):
            service.sign(b"m", signers=(1, 2))

    def test_optimistic_sign_path(self, service):
        signature = service.sign(b"m", robust=False)
        assert service.verify(b"m", signature)

    def test_recovered_share_survives_refresh(self, service):
        service.corrupt_share_detected(2)
        service.recover(2)
        service.advance_epoch()
        signature = service.sign(b"post", signers=(2, 3, 4))
        assert service.verify(b"post", signature)
