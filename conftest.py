"""Root pytest configuration: the session seed and the sim marker.

Every randomized fixture and simulation scenario in the repo derives
from one session-level seed so a failing run is reproducible verbatim:

* ``--seed N`` overrides it (``pytest --seed 1234``); without the flag
  each consumer keeps its historical default (``0xC0FFEE`` for the
  tests' ``rng`` fixture, ``0xBEEF`` for the benchmarks', ``2026`` for
  the simulation scenarios), so default runs are byte-for-byte the runs
  CI has always gated.
* On any failure the terminal summary prints the effective seed and the
  exact flag to replay it — randomized failures are report-and-rerun,
  never lost.

``tools/sim_run.py`` and ``tools/serve_smoke.py`` accept the same
``--seed`` flag with the same semantics for their own randomness.

The ``sim`` marker tags discrete-event simulation scenarios at large n
(``benchmarks/test_f7_sim.py``); ``make test-fast`` excludes them along
with ``bn254``.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--seed", type=int, default=None,
        help="session seed for randomized fixtures and simulation "
             "scenarios (default: each consumer's historical seed)")


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "sim: discrete-event simulation at large n (slow; excluded from "
        "test-fast, run by the full CI job)")


@pytest.fixture(scope="session")
def session_seed(request):
    """The ``--seed`` value, or ``None`` when the run uses defaults."""
    return request.config.getoption("--seed")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if exitstatus == 0:
        return
    seed = config.getoption("--seed")
    if seed is None:
        terminalreporter.write_line(
            "session seed: defaults (rng=0xC0FFEE, bench=0xBEEF, "
            "sim=2026); rerun a randomized failure with --seed N")
    else:
        terminalreporter.write_line(
            f"session seed: {seed} (rerun with --seed {seed})")
