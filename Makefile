PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-check serve-smoke smoke

## Full tier-1 suite (both backends).
test:
	$(PYTHON) -m pytest -x -q

## Protocol-logic tests only (toy backend; seconds, not minutes).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not bn254"

## Regenerate BENCH_t2_ops.json + benchmarks/results/t2_ops.txt.
bench:
	$(PYTHON) tools/bench_snapshot.py --rounds 5

## Re-run the micro-benchmarks and fail if any tracked op's speedup
## regressed beyond the tolerance vs the committed snapshot (does not
## overwrite it).  Tolerance defaults to 15%; widen on noisy runners
## with e.g. `BENCH_TOLERANCE=25 make bench-check`.
bench-check:
	$(PYTHON) tools/bench_snapshot.py --check --rounds 3

## Boot the async signing service, push 100+ requests through the load
## generator (in-process shards and the process-parallel worker tier)
## and fail on any rejected-valid request.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## CI smoke target: tier-1 tests, the perf-regression gate, and the
## signing-service contract check.
smoke: test bench-check serve-smoke
