PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-check serve-smoke docs-check smoke

## Full tier-1 suite (both backends).
test:
	$(PYTHON) -m pytest -x -q

## Protocol-logic tests only (toy backend; seconds, not minutes).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not bn254"

## Regenerate BENCH_t2_ops.json + benchmarks/results/t2_ops.txt.
bench:
	$(PYTHON) tools/bench_snapshot.py --rounds 5

## Re-run the micro-benchmarks and fail if any tracked op's speedup
## regressed beyond the tolerance vs the committed snapshot (does not
## overwrite it).  Tolerance defaults to 15%; widen on noisy runners
## with e.g. `BENCH_TOLERANCE=25 make bench-check`.
bench-check:
	$(PYTHON) tools/bench_snapshot.py --check --rounds 3

## Boot the async signing service, push 100+ requests through the load
## generator (in-process shards, the process-parallel worker tier and
## the loopback-TCP remote-worker tier — including a mid-window worker
## kill) and fail on any rejected-valid request.  The durability act
## SIGKILLs the service itself mid-window and requires a restart
## against the same write-ahead log to complete every admitted request
## exactly once.  The key-lifecycle act refreshes, reshares and grows
## the shard ring under open-loop load (public key never changes,
## nothing rejected), then SIGKILLs a victim mid-transition: stale
## shares must be refused, the persisted post-transition context must
## settle every admit.  The HTTP act drives the gateway over the wire
## (two tenants with different quotas, over-quota 429s at the edge, an
## admin reshare mid-load, a line-by-line Prometheus /metrics gate)
## and SIGKILLs the gateway's host process with admitted HTTP requests
## durable — the restart must settle them exactly once (leaves
## `.smoke-wal/` — WALs plus `epoch/epoch.log` — behind on failure for
## forensics).
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## Docs sanity: every internal link / anchor / code path reference in
## docs/*.md, README.md and benchmarks/README.md resolves.
docs-check:
	$(PYTHON) tools/check_docs.py

## CI smoke target: tier-1 tests, the perf-regression gate, the
## signing-service contract check and the docs sanity check.
smoke: test bench-check serve-smoke docs-check
