PYTHON ?= python
export PYTHONPATH := src

.PHONY: test test-fast bench bench-check serve-smoke smoke

## Full tier-1 suite (both backends).
test:
	$(PYTHON) -m pytest -x -q

## Protocol-logic tests only (toy backend; seconds, not minutes).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not bn254"

## Regenerate BENCH_t2_ops.json + benchmarks/results/t2_ops.txt.
bench:
	$(PYTHON) tools/bench_snapshot.py --rounds 5

## Re-run the micro-benchmarks and fail if any tracked op's speedup
## regressed >15% vs the committed snapshot (does not overwrite it).
bench-check:
	$(PYTHON) tools/bench_snapshot.py --check --rounds 3

## Boot the async signing service in-process, push 100 requests through
## the load generator and fail on any rejected-valid request.
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## CI smoke target: tier-1 tests, the perf-regression gate, and the
## signing-service contract check.
smoke: test bench-check serve-smoke
