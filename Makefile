PYTHON ?= python
export PYTHONPATH := src

## Single source of truth for what CI installs.  The fast/full jobs
## need pytest only (pytest-benchmark was installed for a while but
## nothing imports it); the lint job needs ruff only.
TEST_DEPS = -e . pytest
LINT_DEPS = ruff

.PHONY: test test-fast lint install-test install-lint bench \
	bench-check serve-smoke sim-smoke docs-check smoke

## Full tier-1 suite (both backends, including the `sim`-marked
## large-n discrete-event scenarios — minutes at n=1024).
test:
	$(PYTHON) -m pytest -x -q

## Protocol-logic tests only (toy backend, no large-n simulations;
## seconds, not minutes).
test-fast:
	$(PYTHON) -m pytest -x -q -m "not bn254 and not sim"

## Lint gate (the third fast CI gate).  Byte-compiles src/ and tools/
## unconditionally — a syntax error anywhere fails even without ruff —
## then runs `ruff check` (zero-warning baseline, rules in ruff.toml)
## when ruff is importable.  Environments without ruff (the dev
## container bakes in the Python toolchain only) still get the
## compileall gate; CI installs ruff via `make install-lint`.
lint:
	$(PYTHON) -m compileall -q src tools
	@if $(PYTHON) -c "import ruff" 2>/dev/null; then \
		$(PYTHON) -m ruff check .; \
	else \
		echo "lint: ruff not installed; compileall gate only"; \
	fi

## CI install targets, driven by the variables above.
install-test:
	$(PYTHON) -m pip install $(TEST_DEPS)

install-lint:
	$(PYTHON) -m pip install $(LINT_DEPS)

## Regenerate BENCH_t2_ops.json + benchmarks/results/t2_ops.txt +
## benchmarks/results/pipeline_sweep.txt (the wire-v2 depth sweep).
bench:
	$(PYTHON) tools/bench_snapshot.py --rounds 5

## Re-run the micro-benchmarks and fail if any tracked op's speedup
## regressed beyond the tolerance vs the committed snapshot (does not
## overwrite it).  Tolerance defaults to 15%; widen on noisy runners
## with e.g. `BENCH_TOLERANCE=25 make bench-check`.  The gate includes
## the wire-v2 ops: svc_robust_batch_shareverify holds the strict band
## (its committed speedup is real — one cross-message multi-pairing vs
## a per-share loop), while the svc_pipeline_* ops are overhead-bound
## on the loopback (committed near 1.0x, below OVERHEAD_REFERENCE) and
## get the wide OVERHEAD_TOLERANCE floor — their gate catches the
## pipelined path collapsing, not scheduler jitter.
bench-check:
	$(PYTHON) tools/bench_snapshot.py --check --rounds 3

## Boot the async signing service, push 100+ requests through the load
## generator (in-process shards, the process-parallel worker tier and
## the loopback-TCP remote-worker tier — including a mid-window worker
## kill) and fail on any rejected-valid request.  The durability act
## SIGKILLs the service itself mid-window and requires a restart
## against the same write-ahead log to complete every admitted request
## exactly once.  The key-lifecycle act refreshes, reshares and grows
## the shard ring under open-loop load (public key never changes,
## nothing rejected), then SIGKILLs a victim mid-transition: stale
## shares must be refused, the persisted post-transition context must
## settle every admit.  The HTTP act drives the gateway over the wire
## (two tenants with different quotas, over-quota 429s at the edge, an
## admin reshare mid-load, a line-by-line Prometheus /metrics gate)
## and SIGKILLs the gateway's host process with admitted HTTP requests
## durable — the restart must settle them exactly once.  The wire-v2
## act drives depth-4 pipelined request shipping over loopback TCP,
## kills a worker with a full pipeline in flight, and requires every
## in-flight request id to be resubmitted and settle exactly once
## (leaves `.smoke-wal/` — WALs plus `epoch/epoch.log` — behind on
## failure for forensics).
serve-smoke:
	$(PYTHON) tools/serve_smoke.py

## Simulation determinism gate: run the fixed-seed CI scenario (n=64
## WAN DKG under loss + a robust-combine run) twice in two separate
## processes and byte-compare the event-trace digests.  Catches any
## nondeterminism sneaking into the simulation stack — an unseeded
## RNG, dict-order dependence, wall-clock reads — the moment it lands.
## The rendered tables go to benchmarks/results/f7_sim_ci.txt.
sim-smoke:
	$(PYTHON) tools/sim_run.py --scenario ci --digest-file .sim-digest-a \
		> /dev/null
	$(PYTHON) tools/sim_run.py --scenario ci --digest-file .sim-digest-b \
		> /dev/null
	cmp .sim-digest-a .sim-digest-b
	@cat .sim-digest-a
	@rm -f .sim-digest-a .sim-digest-b

## Docs sanity: every internal link / anchor / code path reference in
## docs/*.md, README.md and benchmarks/README.md resolves.
docs-check:
	$(PYTHON) tools/check_docs.py

## CI smoke target: tier-1 tests, the perf-regression gate, the
## signing-service contract check, the simulation determinism gate and
## the docs sanity check.
smoke: test bench-check serve-smoke sim-smoke docs-check
