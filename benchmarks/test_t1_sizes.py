"""Experiment T1 — signature/key sizes at the 128-bit level.

Paper claims (Section 3.1, Section 4, Section 1):

* Section 3 scheme: 512-bit signatures on BN curves;
* RSA-based threshold signatures [Shoup'00 / ADN'06]: 3076 bits;
* Section 4 standard-model scheme: 2048 bits;
* Appendix F DLIN scheme: 3 G elements (768 bits);
* BLS baseline: 1 G element (256 bits);
* private key shares: O(1) scalars for all our schemes.

All sizes below are measured from real encodings (BN254 compressed points,
RSA residues at a 3072-bit modulus), not copied from the paper.
"""

import random

import pytest

from repro.baselines.bls_threshold import BoldyrevaThresholdBLS
from repro.baselines.rsa_threshold import ShoupThresholdRSA
from repro.bench.tables import Table
from repro.core.dlin_scheme import DLINParams, LJYDLINScheme
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.core.standard_model import LJYStandardModelScheme, SMParams
from repro.serialization import (
    measure_bls, measure_dlin, measure_ljy_rom, measure_ljy_standard,
    measure_shoup,
)

T, N = 1, 3


@pytest.fixture(scope="module")
def reports(bn254_group):
    rng = random.Random(1)
    rows = []

    params = ThresholdParams.generate(bn254_group, T, N)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    partial = scheme.share_sign(shares[1], b"m")
    sig = scheme.combine(pk, vks, b"m", [
        scheme.share_sign(shares[i], b"m") for i in (1, 2)])
    rows.append(measure_ljy_rom(scheme, pk, shares[1], partial, sig))

    sm_params = SMParams.generate(bn254_group, T, N, bit_length=8)
    sm_scheme = LJYStandardModelScheme(sm_params)
    sm_pk, sm_shares, sm_vks = sm_scheme.dealer_keygen(rng=rng)
    sm_partial = sm_scheme.share_sign(sm_shares[1], b"m", rng=rng)
    sm_sig = sm_scheme.combine(sm_pk, sm_vks, b"m", [
        sm_scheme.share_sign(sm_shares[i], b"m", rng=rng)
        for i in (1, 2)], rng=rng)
    rows.append(measure_ljy_standard(
        sm_scheme, sm_pk, sm_shares[1], sm_partial, sm_sig))

    dl_params = DLINParams.generate(bn254_group, T, N)
    dl_scheme = LJYDLINScheme(dl_params)
    dl_pk, dl_shares, dl_vks = dl_scheme.dealer_keygen(rng=rng)
    dl_partial = dl_scheme.share_sign(dl_shares[1], b"m")
    dl_sig = dl_scheme.combine(dl_pk, dl_vks, b"m", [
        dl_scheme.share_sign(dl_shares[i], b"m") for i in (1, 2)])
    rows.append(measure_dlin(dl_scheme, dl_pk, dl_shares[1], dl_partial,
                             dl_sig))

    bls = BoldyrevaThresholdBLS(bn254_group, T, N)
    bls_pk, bls_shares, bls_vks = bls.dealer_keygen(rng=rng)
    bls_partial = bls.share_sign(1, bls_shares[1], b"m")
    bls_sig = bls.combine(bls_vks, b"m", [
        bls.share_sign(i, bls_shares[i], b"m") for i in (1, 2)])
    rows.append(measure_bls(bn254_group, bls_pk, bls_partial, bls_sig))

    shoup = ShoupThresholdRSA(T, N, modulus_bits=3072)
    sh_pk, sh_shares = shoup.dealer_keygen(rng=rng)
    sh_partial = shoup.share_sign(sh_pk, 1, sh_shares[1], b"m", rng=rng)
    sh_sig = shoup.combine(sh_pk, b"m", [
        shoup.share_sign(sh_pk, i, sh_shares[i], b"m", rng=rng)
        for i in (1, 2)])
    rows.append(measure_shoup(shoup, sh_pk, sh_partial, sh_sig))
    return rows


def test_t1_size_table(reports, save_table, benchmark):
    table = Table(
        "T1: sizes at the 128-bit level (bits, measured on BN254 / "
        "3072-bit RSA)",
        ["scheme", "signature_bits", "public_key_bits", "share_bits",
         "partial_bits"])
    for report in reports:
        table.add_row(**report.as_row())
    save_table(table, "t1_sizes")

    by_scheme = {r.scheme: r for r in reports}
    rom = by_scheme["LJY14 Section 3 (ROM)"]
    std = by_scheme["LJY14 Section 4 (standard model)"]
    dlin = by_scheme["LJY14 Appendix F (DLIN)"]
    bls = by_scheme["Boldyreva'03 threshold BLS (static)"]
    shoup = by_scheme["Shoup'00 threshold RSA (3072-bit N)"]

    # The paper's exact size claims.
    assert rom.signature_bits == 512
    assert std.signature_bits == 2048
    assert dlin.signature_bits == 768
    assert bls.signature_bits == 256
    assert shoup.signature_bits == 3072          # paper quotes 3076 w/ encoding
    # Ordering claim: ours beats RSA by ~6x, standard model by ~1.5x.
    assert rom.signature_bits * 6 == shoup.signature_bits
    assert std.signature_bits < shoup.signature_bits
    # Shares are O(1) scalars.
    assert rom.share_bits == 4 * 256
    assert std.share_bits == 2 * 256

    benchmark(lambda: [r.as_row() for r in reports])


def test_t1_share_size_constant_in_n(bn254_group, save_table, benchmark):
    """Share bits for the Section 3 scheme do not grow with n."""
    table = Table("T1b: Section 3 share size vs n (bits)",
                  ["n", "share_bits"])
    rng = random.Random(2)
    sizes = []
    for n in (3, 7, 15):
        params = ThresholdParams.generate(bn254_group, (n - 1) // 2, n)
        scheme = LJYThresholdScheme(params)
        _pk, shares, _vks = scheme.dealer_keygen(rng=rng)
        size = shares[1].storage_bytes() * 8
        sizes.append(size)
        table.add_row(n=n, share_bits=size)
    save_table(table, "t1b_share_size")
    assert len(set(sizes)) == 1
    benchmark(lambda: None)
