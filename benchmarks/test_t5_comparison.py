"""Experiment T5 — the scheme comparison matrix of the paper's Section 1.

The introduction contrasts the new construction with prior threshold
signatures along five axes: interactivity of signing, adaptive vs static
security, reliance on erasures, need for a trusted dealer, and per-player
storage.  The static properties are facts of each construction; the
measured columns (signature bits, signing rounds, storage values) come
from running this library's implementations.
"""

import random

from repro.baselines.adn06 import ADN06ThresholdRSA
from repro.baselines.bls_threshold import BoldyrevaThresholdBLS
from repro.baselines.rsa_threshold import ShoupThresholdRSA
from repro.bench.tables import Table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.core.standard_model import LJYStandardModelScheme, SMParams

T, N = 2, 5


def test_t5_comparison_matrix(toy_group, bn254_group, save_table,
                              benchmark):
    rng = random.Random(25)
    rows = []

    # --- Section 3 scheme (measured on BN254 for sizes) -----------------
    params = ThresholdParams.generate(bn254_group, T, N)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    sig = scheme.combine(pk, vks, b"m", [
        scheme.share_sign(shares[i], b"m") for i in (1, 2, 3)])
    rows.append({
        "scheme": "LJY14 Sec.3 (this paper)", "adaptive": "yes",
        "non_interactive": "yes", "erasure_free": "yes",
        "no_dealer": "yes", "sign_rounds": 1,
        "storage_values": 4, "sig_bits": sig.size_bits,
    })

    sm_params = SMParams.generate(bn254_group, T, N, bit_length=8)
    sm = LJYStandardModelScheme(sm_params)
    sm_pk, sm_shares, sm_vks = sm.dealer_keygen(rng=rng)
    sm_sig = sm.combine(sm_pk, sm_vks, b"m", [
        sm.share_sign(sm_shares[i], b"m", rng=rng) for i in (1, 2, 3)],
        rng=rng)
    rows.append({
        "scheme": "LJY14 Sec.4 (standard model)", "adaptive": "yes",
        "non_interactive": "yes", "erasure_free": "yes",
        "no_dealer": "yes", "sign_rounds": 1,
        "storage_values": 2, "sig_bits": sm_sig.size_bits,
    })

    bls = BoldyrevaThresholdBLS(bn254_group, T, N)
    b_pk, b_shares, b_vks = bls.dealer_keygen(rng=rng)
    b_sig = bls.combine(b_vks, b"m", [
        bls.share_sign(i, b_shares[i], b"m") for i in (1, 2, 3)])
    rows.append({
        "scheme": "Boldyreva'03 BLS", "adaptive": "no (static)",
        "non_interactive": "yes", "erasure_free": "yes",
        "no_dealer": "yes*", "sign_rounds": 1,
        "storage_values": 1, "sig_bits": b_sig.size_bits,
    })

    shoup = ShoupThresholdRSA(T, N, modulus_bits=3072)
    s_pk, s_shares = shoup.dealer_keygen(rng=rng)
    s_sig = shoup.combine(s_pk, b"m", [
        shoup.share_sign(s_pk, i, s_shares[i], b"m", rng=rng)
        for i in (1, 2, 3)])
    rows.append({
        "scheme": "Shoup'00 RSA", "adaptive": "no (static)",
        "non_interactive": "yes", "erasure_free": "yes",
        "no_dealer": "no (safe primes)", "sign_rounds": 1,
        "storage_values": 1, "sig_bits": s_sig.size_bits,
    })

    adn = ADN06ThresholdRSA(T, N, modulus_bits=512)
    a_pk, a_states = adn.dealer_keygen(rng=rng)
    happy = adn.sign(a_pk, a_states, b"m")
    repair = adn.sign(a_pk, a_states, b"m", live_players={1, 2, 3, 4})
    rows.append({
        "scheme": "ADN'06-style RSA", "adaptive": "yes (SIP)",
        "non_interactive": "only if all honest", "erasure_free": "yes",
        "no_dealer": "no (safe primes)",
        "sign_rounds": f"{happy.rounds}-{repair.rounds}",
        "storage_values": a_states[1].storage_values(),
        "sig_bits": 3072,   # at the 128-bit level (512-bit run above)
    })

    table = Table(
        "T5: scheme comparison (static facts + measured columns; "
        "* = DKG exists but proof is static-only)",
        ["scheme", "adaptive", "non_interactive", "erasure_free",
         "no_dealer", "sign_rounds", "storage_values", "sig_bits"])
    for row in rows:
        table.add_row(**row)
    save_table(table, "t5_comparison")

    ours = rows[0]
    assert ours["adaptive"] == "yes"
    assert ours["storage_values"] == 4           # O(1)
    assert rows[4]["storage_values"] == N + 1     # Theta(n)
    benchmark(lambda: None)
