"""Experiment F2 — the Pedersen-DKG bias attack and why it is tolerable.

Reproduces the paper's Section 1 discussion quantitatively:

* a rushing adversary with c corrupted players biases a balanced
  predicate of the public key to ~1 - 2^(-2^c);
* the GJKR new-DKG is immune (contribution reconstruction);
* and — the paper's point — the biased key still signs and the adaptive
  security game cannot be won below the threshold.
"""

import random

from repro.bench.tables import Table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.security.attacks import (
    gjkr_bias_experiment, honest_pedersen_baseline,
    pedersen_bias_experiment,
)
from repro.security.games import (
    AdaptiveChosenMessageGame, BelowThresholdAdversary,
    LagrangeForgeryAdversary,
)

TRIALS = 80
T, N = 1, 4


def test_f2_bias_table(toy_group, save_table, benchmark):
    rng = random.Random(13)
    table = Table(
        "F2: empirical predicate rate on the DKG public key "
        f"({TRIALS} trials, t={T}, n={N})",
        ["strategy", "corrupted", "rate", "expected"])
    honest = honest_pedersen_baseline(toy_group, T, N, TRIALS, rng=rng)
    table.add_row(strategy="honest Pedersen", corrupted=0,
                  rate=honest.success_rate, expected=0.5)
    rates = {0: honest.success_rate}
    for corrupted in (1, 2):
        result = pedersen_bias_experiment(
            toy_group, T, N, TRIALS, num_corrupted=corrupted, rng=rng)
        rates[corrupted] = result.success_rate
        table.add_row(strategy="rushing bias attack", corrupted=corrupted,
                      rate=result.success_rate,
                      expected=1 - 0.5 ** (2 ** corrupted))
    gjkr = gjkr_bias_experiment(
        toy_group, T, N, TRIALS, num_corrupted=2, rng=rng)
    table.add_row(strategy="GJKR new-DKG + dropout", corrupted=2,
                  rate=gjkr.success_rate, expected=0.5)
    save_table(table, "f2_bias")

    # Shape assertions: monotone in c, GJKR unaffected.
    assert rates[1] > rates[0]
    assert rates[2] > rates[1] - 0.1   # noise tolerance
    assert rates[2] > 0.8
    assert 0.3 < gjkr.success_rate < 0.7
    benchmark(lambda: None)


def test_f2_unforgeability_under_biased_keys(toy_group, save_table,
                                             benchmark):
    """Run the Definition 1 game on DKG-generated (biasable) keys: all
    below-threshold strategies must keep losing."""
    rng = random.Random(14)
    params = ThresholdParams.generate(toy_group, t=2, n=5)
    scheme = LJYThresholdScheme(params)
    table = Table("F2b: Definition-1 game outcomes on DKG keys (20 runs "
                  "per strategy)", ["strategy", "wins", "runs"])
    for name, adversary_cls in [
            ("below-threshold interpolation", BelowThresholdAdversary),
            ("t partial signatures on M*", LagrangeForgeryAdversary)]:
        wins = 0
        runs = 20
        for _ in range(runs):
            game = AdaptiveChosenMessageGame(scheme, rng=rng, use_dkg=True)
            if game.play(adversary_cls()).won:
                wins += 1
        table.add_row(strategy=name, wins=wins, runs=runs)
        assert wins == 0
    save_table(table, "f2b_game")
    benchmark(lambda: None)


def test_f2_bias_attack_wallclock(toy_group, benchmark):
    rng = random.Random(15)
    benchmark.pedantic(
        pedersen_bias_experiment, args=(toy_group, T, N, 5),
        kwargs={"num_corrupted": 2, "rng": rng}, rounds=2, iterations=1)
