"""Experiment T2 — computational cost per operation (Section 3.1).

Paper claims: each server computes "two multi-exponentiations with two
base elements and two hash-on-curve operations"; the verifier computes "a
product of four pairings".  We measure wall-clock on the real BN254
backend and assert the operation counts (4 Miller loops + 1 shared final
exponentiation per verification), plus an ablation: multi-pairing versus
four naive pairings.
"""

import random
import time

import pytest

from repro.bench.tables import Table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme
from repro.curves.pairing import PAIRING_COUNTERS, reset_pairing_counters

T, N = 2, 5


@pytest.fixture(scope="module")
def deployment(bn254_group):
    rng = random.Random(3)
    params = ThresholdParams.generate(bn254_group, T, N)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    message = b"benchmark message"
    partials = [scheme.share_sign(shares[i], message) for i in (1, 2, 3)]
    signature = scheme.combine(pk, vks, message, partials)
    return scheme, pk, shares, vks, message, partials, signature


def test_t2_verify_is_four_pairings_one_final_exp(deployment, benchmark):
    scheme, pk, _shares, _vks, message, _partials, signature = deployment
    reset_pairing_counters()
    assert scheme.verify(pk, message, signature)
    assert PAIRING_COUNTERS["miller_loops"] == 4
    assert PAIRING_COUNTERS["final_exps"] == 1
    reset_pairing_counters()
    benchmark.pedantic(
        scheme.verify, args=(pk, message, signature), rounds=3, iterations=1)


def test_t2_share_sign(deployment, benchmark):
    scheme, _pk, shares, _vks, message, _partials, _signature = deployment
    benchmark.pedantic(
        scheme.share_sign, args=(shares[1], message), rounds=3, iterations=1)


def test_t2_share_verify(deployment, benchmark):
    scheme, pk, _shares, vks, message, partials, _signature = deployment
    reset_pairing_counters()
    assert scheme.share_verify(pk, vks[1], message, partials[0])
    assert PAIRING_COUNTERS["miller_loops"] == 4
    assert PAIRING_COUNTERS["final_exps"] == 1
    reset_pairing_counters()
    benchmark.pedantic(
        scheme.share_verify, args=(pk, vks[1], message, partials[0]),
        rounds=3, iterations=1)


def test_t2_combine(deployment, benchmark):
    scheme, pk, _shares, vks, message, partials, _signature = deployment
    benchmark.pedantic(
        scheme.combine, args=(pk, vks, message, partials),
        kwargs={"verify_shares": False}, rounds=3, iterations=1)


def test_t2_operation_table(deployment, save_table, benchmark):
    scheme, pk, shares, vks, message, partials, signature = deployment

    def timed(fn, repeats=3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats * 1000

    rows = [
        ("Share-Sign (2 multi-exps + 2 hash-on-curve)",
         timed(lambda: scheme.share_sign(shares[1], message))),
        ("Share-Verify (product of 4 pairings)",
         timed(lambda: scheme.share_verify(pk, vks[1], message,
                                           partials[0]))),
        ("Combine (t+1 = 3, optimistic)",
         timed(lambda: scheme.combine(pk, vks, message, partials,
                                      verify_shares=False))),
        ("Combine (robust, share-verifying)",
         timed(lambda: scheme.combine(pk, vks, message, partials))),
        ("Verify (product of 4 pairings)",
         timed(lambda: scheme.verify(pk, message, signature))),
    ]
    table = Table("T2: operation costs on BN254, pure Python (ms)",
                  ["operation", "ms"])
    for name, ms in rows:
        table.add_row(operation=name, ms=ms)
    save_table(table, "t2_ops")
    benchmark(lambda: None)


def test_t2_ablation_multi_pairing(bn254_group, save_table, benchmark):
    """Ablation: one 4-term multi-pairing vs four separate pairings."""
    group = bn254_group
    pairs = [
        (group.g1_generator() ** (i + 2), group.g2_generator() ** (i + 3))
        for i in range(4)
    ]

    def shared():
        return group.pairing_product(pairs)

    def naive():
        result = group.pair(*pairs[0])
        for a, b in pairs[1:]:
            result = result * group.pair(a, b)
        return result

    assert shared() == naive()

    def timed(fn, repeats=3):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats * 1000

    shared_ms = timed(shared)
    naive_ms = timed(naive)
    table = Table("T2b: shared vs naive final exponentiation (4 pairings)",
                  ["strategy", "ms"])
    table.add_row(strategy="multi-pairing (1 final exp)", ms=shared_ms)
    table.add_row(strategy="naive (4 final exps)", ms=naive_ms)
    save_table(table, "t2b_multipairing")
    assert shared_ms < naive_ms     # the optimization must actually win
    benchmark.pedantic(shared, rounds=3, iterations=1)
