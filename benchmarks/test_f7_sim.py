"""Experiment F7 — discrete-event WAN simulation of the full protocol.

Loopback benches (F1-F6) measure compute; these tables measure the
*network* story the paper's deployment model implies: real DKG /
sign / reshare code paths at committee sizes the lockstep simulator
cannot reach, over a 3-region WAN model with bandwidth contention,
latency jitter and i.i.d. loss (``repro.sims``; model and determinism
contract in ``docs/SIMULATION.md``).

Times in these tables are **virtual** (the event kernel's clock), so
the numbers are exactly reproducible: every table ends with the
kernel's event-trace digest, and re-running with the same seed must
reproduce the file byte for byte (``make sim-smoke`` gates this).

The big-n scenarios are marked ``sim`` (minutes of wall clock at
n=1024) and excluded from ``make test-fast``; the full suite and the
CI full job run them.
"""

import pathlib
import sys

import pytest

from repro.sims.scenarios import (
    run_churn_scenario, run_dkg_scenario, run_quorum_scenario,
    run_robust_scenario,
)

TOOLS_DIR = pathlib.Path(__file__).resolve().parent.parent / "tools"


@pytest.fixture(scope="module")
def sim_tables():
    """The table builders from ``tools/sim_run.py`` — the CLI and the
    benchmarks must render identical files for identical rows."""
    sys.path.insert(0, str(TOOLS_DIR))
    try:
        import sim_run
    finally:
        sys.path.remove(str(TOOLS_DIR))
    return sim_run


@pytest.fixture(scope="module")
def save_sim_table(results_dir):
    def _save(name: str, tables, digest: str) -> None:
        text = "\n\n".join(table.render() for table in tables)
        text += f"\n\ndigest: {digest}\n"
        (results_dir / f"f7_sim_{name}.txt").write_text(text)
        print("\n" + text)
    return _save


@pytest.mark.sim
def test_f7a_dkg_at_n1024(sim_tables, save_sim_table, sim_seed, benchmark):
    """Full Pedersen DKG at n=1024 over the WAN model: every honest
    player must finish, agree on the qualified set and public key, and
    a t+1 quorum of the resulting shares must sign end to end (the
    scenario asserts all of that internally)."""
    row = run_dkg_scenario(sim_seed, n=1024, t=5)
    assert row["qualified"] == 1024
    assert row["messages"] >= 2 * 1024 * 1023  # dealings + shares
    assert row["finalize_ms"] > row["deal_p95_ms"]
    save_sim_table("dkg", [sim_tables.dkg_table([row])], row["digest"])
    benchmark(lambda: None)


@pytest.mark.sim
def test_f7b_time_to_quorum_vs_n(sim_tables, save_sim_table, sim_seed,
                                 benchmark):
    """Time-to-quorum for one signing request as the committee grows
    64 -> 1024 under 1% loss: the combiner needs only t+1 partials, so
    latency grows with contention, not with n."""
    result = run_quorum_scenario(sim_seed)
    rows = result["rows"]
    assert [row["n"] for row in rows] == [64, 256, 1024]
    for row in rows:
        assert row["quorum_p50_ms"] <= row["signed_p50_ms"]
    # Quorum latency must stay sane as n grows 16x: the whole point of
    # t+1-of-n combining is that signing does not pay for n.
    assert rows[-1]["quorum_p50_ms"] < 3 * rows[0]["quorum_p50_ms"]
    save_sim_table("quorum", [sim_tables.quorum_table(rows)],
                   result["digest"])
    benchmark(lambda: None)


def test_f7c_robust_combine_under_adversity(sim_tables, save_sim_table,
                                            sim_seed, benchmark):
    """12% loss, 2 stragglers, 2 forgers: every request still settles
    with a verifying signature (Share-Verify localizes the forgers —
    ``flagged`` counts them being caught)."""
    row = run_robust_scenario(sim_seed)
    assert row["flagged"] > 0      # the forgers were actually caught
    assert row["drops"] > 0        # the loss model actually fired
    save_sim_table("robust", [sim_tables.robust_table([row])],
                   row["digest"])
    benchmark(lambda: None)


def test_f7d_reshare_and_ring_churn_under_load(sim_tables, save_sim_table,
                                               sim_seed, benchmark):
    """Resharing a 16-signer committee to a shifted one (member 1
    leaves, member 17 joins) with a 4 -> 6 shard-ring grow, while
    signing traffic keeps arriving: requests settle under both epochs
    and the ring remap stays proportional."""
    row = run_churn_scenario(sim_seed)
    assert row["epoch0_signed"] > 0 and row["epoch1_signed"] > 0
    assert 0.0 < row["remap_pct"] < 100.0
    save_sim_table("churn", [sim_tables.churn_table([row])],
                   row["digest"])
    benchmark(lambda: None)
