"""Experiment F5 — robustness: Combine under adversarial partial shares.

The scheme definition (Section 2.1) requires Combine to output a valid
signature whenever t+1 valid partials are among the inputs.  We inject
0..t garbage shares from corrupted servers and measure the robust
combiner, plus the ablation the DESIGN notes: eager share verification
versus optimistic combining with retry.
"""

import random
import time

from repro.bench.tables import Table
from repro.core.keys import PartialSignature, ThresholdParams
from repro.core.scheme import LJYThresholdScheme

T, N = 3, 7


def _deploy(group, rng):
    params = ThresholdParams.generate(group, T, N)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    return scheme, pk, shares, vks


def _garbage(scheme, index):
    g = scheme.group.g1_generator()
    return PartialSignature(index=index, z=g ** (7 * index), r=g ** 13)


def test_f5_robustness_table(toy_group, save_table, benchmark):
    rng = random.Random(22)
    scheme, pk, shares, vks = _deploy(toy_group, rng)
    message = b"robustness"
    table = Table(
        f"F5: robust Combine with b bad shares (t={T}, n={N})",
        ["bad_shares", "inputs", "combined_ok", "robust_ms"])
    for bad in range(T + 1):
        garbage = [_garbage(scheme, i) for i in range(1, bad + 1)]
        honest = [scheme.share_sign(shares[i], message)
                  for i in range(bad + 1, bad + T + 2)]
        inputs = garbage + honest
        start = time.perf_counter()
        signature = scheme.combine(pk, vks, message, inputs)
        robust_ms = (time.perf_counter() - start) * 1000
        ok = scheme.verify(pk, message, signature)
        table.add_row(bad_shares=bad, inputs=len(inputs), combined_ok=ok,
                      robust_ms=robust_ms)
        assert ok
    save_table(table, "f5_robustness")
    benchmark(lambda: None)


def test_f5_eager_vs_optimistic_ablation(toy_group, save_table, benchmark):
    """Ablation: always-verify combining vs optimistic combine that
    verifies shares only after the combined signature fails."""
    rng = random.Random(23)
    scheme, pk, shares, vks = _deploy(toy_group, rng)
    message = b"ablation"

    def optimistic_combine(inputs):
        try:
            signature = scheme.combine(pk, vks, message, inputs,
                                       verify_shares=False)
        except Exception:
            return scheme.combine(pk, vks, message, inputs)
        if scheme.verify(pk, message, signature):
            return signature
        return scheme.combine(pk, vks, message, inputs)

    def timed(fn, repeats=5):
        start = time.perf_counter()
        for _ in range(repeats):
            fn()
        return (time.perf_counter() - start) / repeats * 1000

    table = Table("F5b: eager vs optimistic combine (ms)",
                  ["scenario", "eager_ms", "optimistic_ms"])
    honest_inputs = [scheme.share_sign(shares[i], message)
                     for i in range(1, T + 2)]
    mixed_inputs = [_garbage(scheme, 1)] + [
        scheme.share_sign(shares[i], message) for i in range(2, T + 3)]
    for name, inputs in [("all honest", honest_inputs),
                         ("1 bad share", mixed_inputs)]:
        eager = timed(lambda: scheme.combine(pk, vks, message, inputs))
        optimistic = timed(lambda: optimistic_combine(inputs))
        table.add_row(scenario=name, eager_ms=eager,
                      optimistic_ms=optimistic)
        assert scheme.verify(pk, message, optimistic_combine(inputs))
    save_table(table, "f5b_ablation")
    benchmark(lambda: None)


def test_f5_robust_combine_wallclock(toy_group, benchmark):
    rng = random.Random(24)
    scheme, pk, shares, vks = _deploy(toy_group, rng)
    message = b"wallclock"
    inputs = [_garbage(scheme, 1)] + [
        scheme.share_sign(shares[i], message) for i in range(2, T + 3)]
    benchmark.pedantic(
        scheme.combine, args=(pk, vks, message, inputs),
        rounds=5, iterations=1)
