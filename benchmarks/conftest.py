"""Shared fixtures for the experiment benchmarks.

Each experiment (T1-T5, F1-F5 in DESIGN.md) lives in its own module,
produces a plain-text table under ``benchmarks/results/`` and registers at
least one pytest-benchmark measurement.  The tables are the
paper-vs-measured records that EXPERIMENTS.md references.

Timing experiments that need real cryptographic costs run on BN254; shape
experiments (rounds, storage, message counts, bias rates) run on the toy
backend where group operations are negligible.
"""

import pathlib
import random

import pytest

from repro.bench.tables import Table
from repro.groups import get_group

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "bn254: tests that run on the real BN254 pairing (slow)")


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    def _save(table: Table, name: str) -> str:
        text = table.render()
        (results_dir / f"{name}.txt").write_text(text + "\n")
        print("\n" + text)
        return text
    return _save


@pytest.fixture(scope="session")
def toy_group():
    return get_group("toy")


@pytest.fixture(scope="session")
def bn254_group():
    return get_group("bn254")


@pytest.fixture
def rng(session_seed):
    """Per-test randomness; ``--seed N`` reseeds the benchmarks too."""
    return random.Random(0xBEEF if session_seed is None else session_seed)


@pytest.fixture(scope="session")
def sim_seed(session_seed):
    """Seed for the F7 simulation scenarios (``2026`` unless ``--seed``
    is given); the committed tables are rendered with the default."""
    return 2026 if session_seed is None else session_seed
