"""Experiment F1 — non-interactive signing scalability.

Paper claims embodied here:

* Share-Sign is local and independent of n (non-interactivity);
* Combine interpolates t+1 partials, so its cost grows with t only;
* signature and share sizes stay constant throughout.
"""

import random
import time

from repro.bench.tables import Table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme

SWEEP = (3, 9, 17, 33, 65)


def _deploy(group, n, rng):
    t = (n - 1) // 2
    params = ThresholdParams.generate(group, t, n)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    return scheme, pk, shares, vks


def _timed(fn, repeats=5):
    start = time.perf_counter()
    for _ in range(repeats):
        fn()
    return (time.perf_counter() - start) / repeats * 1000


def test_f1_scaling_table(toy_group, save_table, benchmark):
    rng = random.Random(10)
    message = b"scaling message"
    table = Table(
        "F1: cost vs n (toy backend, group ops ~free; shows protocol "
        "overhead shape)",
        ["n", "t", "share_sign_ms", "combine_ms", "verify_ms",
         "sig_bits"])
    share_sign_times = []
    combine_times = []
    for n in SWEEP:
        scheme, pk, shares, vks = _deploy(toy_group, n, rng)
        t = scheme.params.t
        partials = [scheme.share_sign(shares[i], message)
                    for i in range(1, t + 2)]
        signature = scheme.combine(pk, vks, message, partials,
                                   verify_shares=False)
        sign_ms = _timed(lambda: scheme.share_sign(shares[1], message))
        combine_ms = _timed(
            lambda: scheme.combine(pk, vks, message, partials,
                                   verify_shares=False))
        verify_ms = _timed(lambda: scheme.verify(pk, message, signature))
        share_sign_times.append(sign_ms)
        combine_times.append(combine_ms)
        table.add_row(n=n, t=t, share_sign_ms=sign_ms,
                      combine_ms=combine_ms, verify_ms=verify_ms,
                      sig_bits=signature.size_bits)
    save_table(table, "f1_scaling")

    # Share-Sign must not grow with n (non-interactive, local).  Allow a
    # generous factor for timer noise.
    assert max(share_sign_times) < 20 * max(min(share_sign_times), 1e-4)
    # Combine grows with t (Lagrange over t+1 shares): largest sweep point
    # must dominate the smallest.
    assert combine_times[-1] > combine_times[0]
    benchmark(lambda: None)


def test_f1_combine_growth_is_linear_in_t(toy_group, save_table, benchmark):
    """Least-squares check: combine time vs t fits a line much better
    than a constant (ratio test on residuals)."""
    import numpy as np
    rng = random.Random(11)
    message = b"fit"
    ts, times = [], []
    for n in SWEEP:
        scheme, pk, shares, vks = _deploy(toy_group, n, rng)
        t = scheme.params.t
        partials = [scheme.share_sign(shares[i], message)
                    for i in range(1, t + 2)]
        ts.append(t)
        times.append(_timed(
            lambda: scheme.combine(pk, vks, message, partials,
                                   verify_shares=False), repeats=7))
    slope, intercept = np.polyfit(ts, times, 1)
    assert slope > 0
    table = Table("F1b: combine-time linear fit vs t",
                  ["t", "measured_ms", "fit_ms"])
    for t, measured in zip(ts, times):
        table.add_row(t=t, measured_ms=measured,
                      fit_ms=slope * t + intercept)
    save_table(table, "f1b_combine_fit")
    benchmark(lambda: None)


def test_f1_share_sign_bn254(bn254_group, benchmark):
    """Absolute per-server signing cost on the real curve."""
    rng = random.Random(12)
    scheme, _pk, shares, _vks = _deploy(bn254_group, 3, rng)
    benchmark.pedantic(
        scheme.share_sign, args=(shares[1], b"m"), rounds=3, iterations=1)
