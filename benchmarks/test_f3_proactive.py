"""Experiment F3 — proactive refresh cost and mobile-adversary security.

Section 3.3: shares can be refreshed each period by re-sharing zero; the
cost is one more Pedersen-DKG instance; a mobile adversary collecting up
to t shares per period never accumulates a usable set.
"""

import random

from repro.bench.tables import Table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme, reconstruct_master_key
from repro.dkg.refresh import run_refresh

SWEEP = (3, 5, 9, 13)


def test_f3_refresh_cost_table(toy_group, save_table, benchmark):
    rng = random.Random(16)
    table = Table("F3: proactive refresh communication cost vs n",
                  ["n", "rounds", "messages", "kilobytes"])
    for n in SWEEP:
        t = (n - 1) // 2
        params = ThresholdParams.generate(toy_group, t, n)
        scheme = LJYThresholdScheme(params)
        _pk, shares, vks = scheme.dealer_keygen(rng=rng)
        _new_shares, _new_vks, network = run_refresh(
            toy_group, params.g_z, params.g_r, t, n, shares, vks, rng=rng)
        summary = network.metrics.summary()
        table.add_row(n=n, rounds=summary["communication_rounds"],
                      messages=summary["messages"],
                      kilobytes=summary["bytes"] / 1024)
        assert summary["communication_rounds"] == 1   # optimistic refresh
    save_table(table, "f3_refresh")
    benchmark(lambda: None)


def test_f3_mobile_adversary_scenario(toy_group, save_table, benchmark):
    """A mobile adversary grabs t different shares in each of 3 periods
    (3t > t total!) yet never reconstructs the master key, while the
    service keeps signing across refreshes."""
    rng = random.Random(17)
    t, n = 2, 5
    params = ThresholdParams.generate(toy_group, t, n)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    true_master = reconstruct_master_key(
        list(shares.values()), toy_group.order, t)

    stolen = []
    table = Table("F3b: mobile adversary across refresh periods (t=2, n=5)",
                  ["period", "stolen_indices", "cumulative_stolen",
                   "master_key_recovered", "service_still_signs"])
    victims_by_period = [(1, 2), (3, 4), (5, 1)]
    current_shares, current_vks = shares, vks
    for period, victims in enumerate(victims_by_period, start=1):
        stolen.extend(current_shares[v] for v in victims)
        # Try every t+1-subset of everything stolen so far.
        recovered = False
        import itertools
        for subset in itertools.combinations(stolen, t + 1):
            if len({s.index for s in subset}) < t + 1:
                continue
            if reconstruct_master_key(
                    list(subset), toy_group.order, t) == true_master:
                recovered = True
        message = f"period-{period}".encode()
        partials = [scheme.share_sign(current_shares[i], message)
                    for i in (3, 4, 5)]
        signature = scheme.combine(pk, current_vks, message, partials)
        signs = scheme.verify(pk, message, signature)
        table.add_row(period=period,
                      stolen_indices=str(victims),
                      cumulative_stolen=len(stolen),
                      master_key_recovered=recovered,
                      service_still_signs=signs)
        assert not recovered
        assert signs
        current_shares, current_vks, _ = run_refresh(
            toy_group, params.g_z, params.g_r, t, n,
            current_shares, current_vks, rng=rng)
    save_table(table, "f3b_mobile")
    benchmark(lambda: None)


def test_f3_refresh_wallclock(toy_group, benchmark):
    rng = random.Random(18)
    t, n = 2, 5
    params = ThresholdParams.generate(toy_group, t, n)
    scheme = LJYThresholdScheme(params)
    _pk, shares, vks = scheme.dealer_keygen(rng=rng)
    benchmark.pedantic(
        run_refresh,
        args=(toy_group, params.g_z, params.g_r, t, n, shares, vks),
        kwargs={"rng": rng}, rounds=3, iterations=1)
