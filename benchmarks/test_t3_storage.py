"""Experiment T3 — per-player private storage: O(1) vs Theta(n).

Paper claim (abstract, Section 1): the new scheme keeps private key
shares of size O(1), "where certain solutions [ADN'06-style additive
sharing] incur O(n) storage costs at each server".
"""

import random

import pytest

from repro.baselines.adn06 import ADN06ThresholdRSA
from repro.bench.tables import Table
from repro.core.keys import ThresholdParams
from repro.core.scheme import LJYThresholdScheme

SWEEP = (3, 5, 9, 17, 33)


def test_t3_storage_table(toy_group, save_table, benchmark):
    rng = random.Random(4)
    table = Table(
        "T3: private storage per player (bytes) vs n",
        ["n", "ljy14_bytes", "adn06_values", "adn06_bytes_512bit_N"])
    ours = []
    theirs = []
    for n in SWEEP:
        t = (n - 1) // 2
        params = ThresholdParams.generate(toy_group, t, n)
        scheme = LJYThresholdScheme(params)
        _pk, shares, _vks = scheme.dealer_keygen(rng=rng)
        ljy_bytes = shares[1].storage_bytes()
        ours.append(ljy_bytes)

        adn = ADN06ThresholdRSA(t=t, n=n, modulus_bits=512)
        _apk, states = adn.dealer_keygen(rng=rng)
        adn_values = states[1].storage_values()
        adn_bytes = states[1].storage_bytes(512)
        theirs.append(adn_values)
        table.add_row(n=n, ljy14_bytes=ljy_bytes, adn06_values=adn_values,
                      adn06_bytes_512bit_N=adn_bytes)
    save_table(table, "t3_storage")

    # O(1): identical at every n.  Theta(n): exactly n + 1 values.
    assert len(set(ours)) == 1
    assert theirs == [n + 1 for n in SWEEP]
    benchmark(lambda: None)


def test_t3_dealer_keygen_cost(toy_group, benchmark):
    """Keygen cost for the largest sweep point (context for the table)."""
    rng = random.Random(5)
    params = ThresholdParams.generate(toy_group, 16, 33)
    scheme = LJYThresholdScheme(params)
    benchmark.pedantic(scheme.dealer_keygen, kwargs={"rng": rng},
                       rounds=3, iterations=1)
