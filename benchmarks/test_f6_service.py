"""Experiment F6 — serving-layer scaling: throughput vs batch window vs
shard count.

The async signing service (``repro.service``) amortizes verification
and window checks over batch windows; this experiment sweeps the two
scheduling knobs and records the resulting throughput and latency
percentiles.  The *shape* experiment runs on the toy backend (group
operations near-free, so the table isolates scheduling overheads); a
``bn254``-marked measurement pins the real-curve amortization factor for
verify traffic, the quantity the acceptance criterion tracks via
``tools/bench_snapshot.py`` (``svc_verify_req``).
"""

import asyncio
import random

import pytest

from repro.bench.tables import Table
from repro.core.scheme import ServiceHandle
from repro.service import LoadGenerator, ServiceConfig, SigningService

#: Requests per cell of the sweep (enough for three 16-windows).
REQUESTS = 48
CONCURRENCY = 16
WINDOW_SWEEP = (1, 4, 16, 32)
SHARD_SWEEP = (1, 2, 4)


def _drive(handle, num_shards, max_batch, requests=REQUESTS,
           workload="sign", seed=0, max_wait_ms=20.0, workers=0):
    """One closed-loop run; returns (LoadReport, ServiceStats)."""
    config = ServiceConfig(
        num_shards=num_shards, max_batch=max_batch,
        max_wait_ms=max_wait_ms if max_batch > 1 else 0.0,
        queue_depth=4 * requests, workers=workers, rng=random.Random(seed))
    if workload == "verify":
        messages = [b"f6 verify %d" % i for i in range(requests)]
        signatures = [handle.sign(message) for message in messages]

    async def scenario():
        async with SigningService(handle, config) as service:
            if workload == "verify":
                generator = LoadGenerator(
                    lambda i: service.verify(messages[i], signatures[i]))
            else:
                generator = LoadGenerator(
                    lambda i: service.sign(b"f6 sign %d" % i))
            report = await generator.run_closed(requests, CONCURRENCY)
        return report, service.snapshot_stats()

    return asyncio.run(scenario())


def test_f6_service_scaling_table(toy_group, save_table, benchmark):
    handle = ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(42))
    table = Table(
        "F6: signing-service scaling, toy backend "
        f"({REQUESTS} sign requests, {CONCURRENCY} closed-loop clients)",
        ["shards", "window", "windows used", "mean batch",
         "throughput rps", "p50 ms", "p99 ms"])
    windows_used = {}
    for num_shards in SHARD_SWEEP:
        for max_batch in WINDOW_SWEEP:
            # max_wait is kept at 2 ms: toy group operations are
            # near-free, so a production-sized straggler budget would
            # reduce every cell to the window timeout.
            report, stats = _drive(handle, num_shards, max_batch,
                                   seed=max_batch * 10 + num_shards,
                                   max_wait_ms=2.0)
            assert report.completed == REQUESTS
            assert report.rejected == 0
            total_windows = sum(
                s.windows for s in stats.shards.values())
            windows_used[(num_shards, max_batch)] = total_windows
            table.add_row(
                shards=num_shards, window=max_batch,
                **{"windows used": total_windows,
                   "mean batch": round(
                       REQUESTS / max(1, total_windows), 2),
                   "throughput rps": round(report.throughput_rps, 1),
                   "p50 ms": round(report.p50_ms, 3),
                   "p99 ms": round(report.p99_ms, 3)})
    save_table(table, "f6_service")
    # Shape claims (timing-free, so the toy backend cannot flake them):
    # batching actually batches, and single-request mode does not.
    for num_shards in SHARD_SWEEP:
        assert windows_used[(num_shards, 1)] == REQUESTS
        assert windows_used[(num_shards, 16)] <= REQUESTS // 2
    benchmark(lambda: None)


def test_f6_shards_partition_traffic(toy_group, save_table, benchmark):
    handle = ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(43))
    table = Table("F6b: per-shard request share (64 sign requests)",
                  ["shards", "per-shard requests"])
    for num_shards in SHARD_SWEEP:
        report, stats = _drive(handle, num_shards, 8, requests=64,
                               seed=num_shards, max_wait_ms=2.0)
        assert report.completed == 64
        loads = sorted(
            s.requests for s in stats.shards.values())
        table.add_row(**{"shards": num_shards,
                         "per-shard requests": str(loads)})
        assert sum(loads) == 64
        if num_shards > 1:
            # Consistent hashing spreads traffic: no shard is starved.
            assert loads[0] > 0
    save_table(table, "f6b_service_shards")
    benchmark(lambda: None)


def test_f6d_worker_scaling_curve(toy_group, save_table, benchmark):
    """F6d — throughput vs worker-process count at fixed offered load.

    The offered load is pinned (48 sign requests, 16 closed-loop
    clients, 4 shards, window 8); only the execution tier varies:
    workers=0 runs every window on the event loop, workers=N dispatches
    them to N processes.  The table is the *curve* the acceptance
    criterion reads; the tracked speedup number lives in
    ``BENCH_t2_ops.json`` (``svc_mp_*``, measured on BN254 where the
    crypto dominates the IPC).  On the toy backend group operations are
    near-free, so this table isolates dispatch overhead and the
    *contract* (everything completes, jobs actually run on the pool);
    wall-clock scaling with worker count needs both real crypto and
    real cores and is asserted nowhere timing-noise can flake it.
    """
    handle = ServiceHandle.dealer(toy_group, 2, 5, rng=random.Random(45))
    table = Table(
        "F6d: throughput vs worker processes, toy backend "
        f"({REQUESTS} sign requests, {CONCURRENCY} clients, 4 shards, "
        "window 8)",
        ["workers", "window jobs", "crashes", "throughput rps",
         "p50 ms", "p99 ms"])
    for workers in (0, 1, 2, 4):
        report, stats = _drive(handle, 4, 8, seed=50 + workers,
                               max_wait_ms=2.0, workers=workers)
        assert report.completed == REQUESTS
        assert report.rejected == 0 and report.failed == 0
        if workers:
            assert stats.workers is not None
            assert stats.workers.jobs > 0
            assert stats.workers.crashes == 0
            jobs, crashes = stats.workers.jobs, stats.workers.crashes
        else:
            assert stats.workers is None
            jobs, crashes = 0, 0
        table.add_row(
            workers=workers,
            **{"window jobs": jobs, "crashes": crashes,
               "throughput rps": round(report.throughput_rps, 1),
               "p50 ms": round(report.p50_ms, 3),
               "p99 ms": round(report.p99_ms, 3)})
    save_table(table, "f6d_service_workers")
    benchmark(lambda: None)


@pytest.mark.bn254
def test_f6_real_curve_window_amortization(bn254_group, save_table,
                                           benchmark):
    """Verify traffic on BN254: window 16 vs single-request mode.

    This is the measured form of the serving-layer acceptance bar
    (<= 0.25x; asserted loosely at 0.6x here so a loaded machine cannot
    flake the suite — the strict bar is enforced on the committed
    snapshot by ``tools/bench_snapshot.py --check``).
    """
    handle = ServiceHandle.dealer(bn254_group, 1, 3,
                                  rng=random.Random(44))
    requests = 24
    table = Table("F6c: verify cost per request on BN254 (24 requests)",
                  ["window", "ms per request", "p99 ms"])
    per_request = {}
    for max_batch in (1, 16):
        report, _stats = _drive(handle, 1, max_batch, requests=requests,
                                workload="verify", seed=max_batch)
        assert report.completed == requests
        assert report.invalid == 0
        per_request[max_batch] = (
            report.duration_s * 1000.0 / report.completed)
        table.add_row(window=max_batch,
                      **{"ms per request": round(per_request[max_batch], 3),
                         "p99 ms": round(report.p99_ms, 2)})
    save_table(table, "f6c_service_bn254")
    assert per_request[16] <= 0.6 * per_request[1]
    benchmark(lambda: None)
