"""Experiment F4 — signature aggregation (Appendix G).

Claims embodied here:

* l threshold signatures compress into one 512-bit aggregate (ratio l:1);
* Aggregate-Verify costs one product of 2 + 2l pairings plus l key sanity
  checks, versus 4l pairings for l separate verifications — so the
  aggregate path wins and the gap widens with l.
"""

import random
import time

import pytest

from repro.bench.tables import Table
from repro.core.aggregation import AggThresholdParams, LJYAggregateScheme
from repro.curves.pairing import PAIRING_COUNTERS, reset_pairing_counters

T, N = 1, 3


def _deploy(group, rng):
    params = AggThresholdParams.generate(group, T, N)
    scheme = LJYAggregateScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    return scheme, pk, shares, vks


def _signed_batch(scheme, pk, shares, vks, count):
    items = []
    for i in range(count):
        message = f"statement-{i}".encode()
        partials = [scheme.share_sign(pk, shares[j], message)
                    for j in (1, 2)]
        signature = scheme.combine(pk, vks, message, partials)
        items.append((pk, signature, message))
    return items


def test_f4_compression_table(toy_group, save_table, benchmark):
    rng = random.Random(19)
    scheme, pk, shares, vks = _deploy(toy_group, rng)
    table = Table("F4: aggregate size vs separate signatures",
                  ["l", "separate_bits", "aggregate_bits", "ratio"])
    for count in (1, 2, 4, 8, 16):
        items = _signed_batch(scheme, pk, shares, vks, count)
        aggregate = scheme.aggregate(items)
        separate = sum(s.size_bits for _pk, s, _m in items)
        table.add_row(l=count, separate_bits=separate,
                      aggregate_bits=aggregate.size_bits,
                      ratio=separate / aggregate.size_bits)
        assert aggregate.size_bits == 512
        assert scheme.aggregate_verify(
            [(k, m) for k, _s, m in items], aggregate)
    save_table(table, "f4_compression")
    benchmark(lambda: None)


def test_f4_pairing_counts(bn254_group, save_table, benchmark):
    """Aggregate-Verify pairing count: (2 + 2l) + 4l sanity pairings vs
    4l for separate verifies (sanity checks are per-key and cacheable;
    both raw and key-cached counts are reported)."""
    rng = random.Random(20)
    scheme, pk, shares, vks = _deploy(bn254_group, rng)
    table = Table(
        "F4b: Miller loops per verification strategy (BN254, measured)",
        ["l", "separate_loops", "aggregate_loops",
         "aggregate_loops_cached_key"])
    for count in (1, 2, 4):
        items = _signed_batch(scheme, pk, shares, vks, count)
        pairs = [(k, m) for k, _s, m in items]
        aggregate = scheme.aggregate(items)

        reset_pairing_counters()
        for key, signature, message in items:
            assert scheme.verify(key, message, signature)
        separate_loops = PAIRING_COUNTERS["miller_loops"]

        reset_pairing_counters()
        assert scheme.aggregate_verify(pairs, aggregate)
        aggregate_loops = PAIRING_COUNTERS["miller_loops"]

        # With the key sanity check cached (one key here), the marginal
        # cost is the 2 + 2l product alone.
        cached = 2 + 2 * count
        table.add_row(l=count, separate_loops=separate_loops,
                      aggregate_loops=aggregate_loops,
                      aggregate_loops_cached_key=cached)
        # Separate verification does 4 + 4 loops per item (verify +
        # embedded sanity); the cached aggregate path always wins.
        assert cached < separate_loops
    save_table(table, "f4b_pairings")
    reset_pairing_counters()
    benchmark(lambda: None)


def test_f4_wallclock_crossover(bn254_group, save_table, benchmark):
    """Measured wall-clock: aggregate-verify vs separate verifies."""
    rng = random.Random(21)
    scheme, pk, shares, vks = _deploy(bn254_group, rng)
    table = Table("F4c: verification wall-clock (BN254, ms)",
                  ["l", "separate_ms", "aggregate_ms"])
    for count in (1, 2, 4):
        items = _signed_batch(scheme, pk, shares, vks, count)
        pairs = [(k, m) for k, _s, m in items]
        aggregate = scheme.aggregate(items)

        start = time.perf_counter()
        for key, signature, message in items:
            scheme.verify(key, message, signature)
        separate_ms = (time.perf_counter() - start) * 1000

        start = time.perf_counter()
        scheme.aggregate_verify(pairs, aggregate)
        aggregate_ms = (time.perf_counter() - start) * 1000
        table.add_row(l=count, separate_ms=separate_ms,
                      aggregate_ms=aggregate_ms)
        if count >= 2:
            assert aggregate_ms < separate_ms
    save_table(table, "f4c_wallclock")
    benchmark.pedantic(
        scheme.aggregate_verify, args=(pairs, aggregate),
        rounds=2, iterations=1)
