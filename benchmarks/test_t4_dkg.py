"""Experiment T4 — DKG communication cost: rounds, messages, bytes.

Paper claims: Pedersen's DKG "only takes one round optimistically (in the
absence of faulty player)"; complaint handling adds rounds only under
faults; the uniform-output GJKR DKG needs an extra extraction phase.
"""

import random

import pytest

from repro.bench.tables import Table
from repro.dkg.gjkr_dkg import run_gjkr_dkg
from repro.dkg.pedersen_dkg import PedersenDKGPlayer, run_pedersen_dkg
from repro.net.adversary import ScriptedAdversary
from repro.net.simulator import private

SWEEP = (3, 5, 9, 13)


def _faulty_adversary(group, g_z, g_r, t, n, rng):
    """Dealer 1 sends one bad share, then responds to the complaint."""

    def script(adversary, round_no, honest_messages, deliveries):
        if round_no == 0:
            adversary.corrupt(1)
            minion = PedersenDKGPlayer(1, group, g_z, g_r, t, n, rng=rng)
            adversary.minion = minion
            out = []
            for message in minion.on_round(0, []):
                if message.kind == "shares" and message.recipient == 2:
                    bad = [(a + 1, b) for a, b in message.payload]
                    out.append(private(1, 2, "shares", bad))
                else:
                    out.append(message)
            return out
        inbox = [m for m in deliveries
                 if m.is_broadcast or m.recipient == 1]
        adversary.minion.record_round(inbox)
        return adversary.minion.on_round(round_no, inbox)

    return ScriptedAdversary(script)


def test_t4_dkg_cost_table(toy_group, save_table, benchmark):
    rng = random.Random(6)
    g_z = toy_group.derive_g2("t4:g_z")
    g_r = toy_group.derive_g2("t4:g_r")
    table = Table(
        "T4: DKG communication cost vs n (toy backend, sizes as on BN254)",
        ["n", "protocol", "rounds", "messages", "kilobytes"])
    pedersen_rounds = {}
    gjkr_rounds = {}
    for n in SWEEP:
        t = (n - 1) // 2
        _results, network = run_pedersen_dkg(
            toy_group, g_z, g_r, t, n, rng=rng)
        summary = network.metrics.summary()
        pedersen_rounds[n] = summary["communication_rounds"]
        table.add_row(n=n, protocol="Pedersen (paper)",
                      rounds=summary["communication_rounds"],
                      messages=summary["messages"],
                      kilobytes=summary["bytes"] / 1024)
        _results, network = run_gjkr_dkg(
            toy_group, g_z, g_r, t, n, rng=rng)
        summary = network.metrics.summary()
        gjkr_rounds[n] = summary["communication_rounds"]
        table.add_row(n=n, protocol="GJKR new-DKG",
                      rounds=summary["communication_rounds"],
                      messages=summary["messages"],
                      kilobytes=summary["bytes"] / 1024)
    save_table(table, "t4_dkg")

    # The paper's round claims.
    assert all(rounds == 1 for rounds in pedersen_rounds.values())
    assert all(rounds == 2 for rounds in gjkr_rounds.values())
    benchmark(lambda: None)


def test_t4_faulty_run_adds_rounds(toy_group, save_table, benchmark):
    rng = random.Random(7)
    g_z = toy_group.derive_g2("t4:g_z")
    g_r = toy_group.derive_g2("t4:g_r")
    table = Table("T4b: Pedersen DKG, fault-free vs faulty run (n = 5)",
                  ["scenario", "rounds", "messages"])
    _results, clean = run_pedersen_dkg(toy_group, g_z, g_r, 2, 5, rng=rng)
    adversary = _faulty_adversary(toy_group, g_z, g_r, 2, 5, rng)
    _results, faulty = run_pedersen_dkg(
        toy_group, g_z, g_r, 2, 5, adversary=adversary, rng=rng)
    table.add_row(scenario="fault-free (optimistic)",
                  rounds=clean.metrics.communication_rounds,
                  messages=clean.metrics.total_messages)
    table.add_row(scenario="one bad share + complaint + response",
                  rounds=faulty.metrics.communication_rounds,
                  messages=faulty.metrics.total_messages)
    save_table(table, "t4b_dkg_faulty")
    assert clean.metrics.communication_rounds == 1
    assert faulty.metrics.communication_rounds == 3
    benchmark(lambda: None)


def test_t4_pedersen_dkg_wallclock(toy_group, benchmark):
    rng = random.Random(8)
    g_z = toy_group.derive_g2("t4:g_z")
    g_r = toy_group.derive_g2("t4:g_r")
    benchmark.pedantic(
        run_pedersen_dkg, args=(toy_group, g_z, g_r, 4, 9),
        kwargs={"rng": rng}, rounds=3, iterations=1)


@pytest.mark.benchmark(group="t4-dkg-bn254")
def test_t4_pedersen_dkg_bn254(bn254_group, benchmark):
    """One real-curve DKG run for absolute-cost context (n = 3)."""
    rng = random.Random(9)
    g_z = bn254_group.derive_g2("t4:g_z")
    g_r = bn254_group.derive_g2("t4:g_r")
    benchmark.pedantic(
        run_pedersen_dkg, args=(bn254_group, g_z, g_r, 1, 3),
        kwargs={"rng": rng}, rounds=1, iterations=1)


LARGE_SWEEP = (33, 65, 129)


def test_t4c_dkg_communication_large_n(toy_group, save_table, benchmark):
    """T4c — DKG communication at n in the hundreds-ish.

    The original T4 sweep stops at n = 13; the serving-layer roadmap
    targets committees two orders larger, where the quadratic
    point-to-point share traffic dominates.  The round claims must hold
    unchanged at scale (one optimistic round regardless of n)."""
    rng = random.Random(10)
    g_z = toy_group.derive_g2("t4:g_z")
    g_r = toy_group.derive_g2("t4:g_r")
    table = Table(
        "T4c: Pedersen DKG at large n (toy backend, sizes as on BN254)",
        ["n", "rounds", "messages", "megabytes", "bytes per player"])
    for n in LARGE_SWEEP:
        t = (n - 1) // 2
        _results, network = run_pedersen_dkg(
            toy_group, g_z, g_r, t, n, rng=rng)
        summary = network.metrics.summary()
        assert summary["communication_rounds"] == 1
        table.add_row(
            n=n, rounds=summary["communication_rounds"],
            messages=summary["messages"],
            megabytes=round(summary["bytes"] / (1024 * 1024), 3),
            **{"bytes per player": summary["bytes"] // n})
    save_table(table, "t4c_dkg_large_n")
    benchmark(lambda: None)


@pytest.mark.bn254
def test_t4d_share_verify_msm_large_n(bn254_group, save_table, benchmark):
    """T4d — the per-share DKG check on the real curve at large n.

    Each DKG participant verifies every dealer's share against the
    broadcast commitments: a (t+2)-term multi-scalar multiplication.
    At n in the hundreds (t ~ n/2) that MSM crosses the Straus ->
    Pippenger crossover the PR-2 window heuristic re-tuned, so this
    measurement tracks exactly the op the tuning targeted."""
    import time

    from repro.sharing.pedersen_vss import PedersenVSS

    rng = random.Random(11)
    g_z = bn254_group.derive_g2("t4:g_z")
    g_r = bn254_group.derive_g2("t4:g_r")
    table = Table(
        "T4d: per-share commitment check on BN254 vs committee size",
        ["n", "commitment terms", "ms per share check"])
    for n in (64, 128, 256):
        t = (n - 1) // 2
        dealing = PedersenVSS.deal(bn254_group, g_z, g_r, t, n, rng=rng)
        share = dealing.share_for(2)
        best = None
        for _ in range(3):
            start = time.perf_counter()
            ok = PedersenVSS.verify_share(
                bn254_group, g_z, g_r, dealing.commitments, 2, share)
            elapsed = time.perf_counter() - start
            best = elapsed if best is None else min(best, elapsed)
            assert ok
        table.add_row(n=n, **{"commitment terms": t + 1,
                              "ms per share check": round(best * 1000, 2)})
    save_table(table, "t4d_share_check_large_n")
    benchmark(lambda: None)
