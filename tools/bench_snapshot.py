#!/usr/bin/env python
"""Machine-readable perf snapshot of the T2 hot-path operations.

Runs the T2-style micro-benchmarks (Share-Sign, Share-Verify, optimistic
and robust Combine, Verify on BN254 with t=2, n=5) twice: once through the
current fast paths (prepared pairings, MSM, batch verification, hash
memoization) and once through the retained seed-equivalent naive
implementations (inline Miller loops, blind final exponentiation, per-term
double-and-add, per-share verification).  Because both sides run in the
same process on the same machine, the resulting speedups are hardware-
independent and can be asserted by future PRs.

Writes ``BENCH_t2_ops.json`` at the repository root (the perf trajectory
record) and regenerates ``benchmarks/results/t2_ops.txt``.

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py [--rounds N] [--skip-naive]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import random
import sys
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.tables import Table                       # noqa: E402
from repro.core.keys import PartialSignature, ThresholdParams  # noqa: E402
from repro.core.scheme import LJYThresholdScheme           # noqa: E402
from repro.curves.g1 import FP_OPS, G1Point                # noqa: E402
from repro.curves.pairing import multi_pairing_naive       # noqa: E402
from repro.curves.weierstrass import jac_scalar_mul        # noqa: E402
from repro.groups import get_group                         # noqa: E402
from repro.math.lagrange import lagrange_coefficients      # noqa: E402

T, N = 2, 5
MESSAGE = b"benchmark message"

#: Seed-commit T2 numbers (benchmarks/results/t2_ops.txt at PR 0), kept for
#: context only — cross-machine comparisons are apples to oranges, which is
#: why the JSON also records same-process naive timings.
SEED_REFERENCE_MS = {
    "share_sign": 8.897,
    "share_verify": 60.183,
    "combine_optimistic": 5.223,
    "combine_robust": 212.7,
    "verify": 70.336,
}


def timed(fn, rounds):
    best = None
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
    return best * 1000.0


class NaiveReference:
    """The seed implementations of the five T2 operations.

    Reconstructed from the retained naive primitives: fresh hash-to-curve
    on every call, double-and-add exponentiation, inline Miller loops with
    full F_p12 multiplications and a blind final exponentiation, and
    per-share verification in robust Combine.
    """

    def __init__(self, scheme):
        self.scheme = scheme
        self.params = scheme.params
        self.group = scheme.group

    def _hash(self):
        return self.group.hash_to_g1_vector(
            MESSAGE, 2, self.params.hash_domain)

    def _exp(self, element, scalar):
        # Seed-style double-and-add on the underlying point.
        return type(element)(G1Point(_jac=jac_scalar_mul(
            FP_OPS, element.point._jac, scalar, self.group.order)))

    def share_sign(self, share):
        h_1, h_2 = self._hash()
        z = self._exp(h_1, -share.a_1 % self.group.order) * \
            self._exp(h_2, -share.a_2 % self.group.order)
        r = self._exp(h_1, -share.b_1 % self.group.order) * \
            self._exp(h_2, -share.b_2 % self.group.order)
        return PartialSignature(index=share.index, z=z, r=r)

    def share_verify(self, public_key, vk, partial):
        if partial.index != vk.index:
            return False
        h_1, h_2 = self._hash()
        p = self.params
        return multi_pairing_naive([
            (partial.z.point, p.g_z.point),
            (partial.r.point, p.g_r.point),
            (h_1.point, vk.v_1.point),
            (h_2.point, vk.v_2.point),
        ]).is_one()

    def combine(self, public_key, vks, partials, verify_shares):
        t = self.params.t
        usable = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares:
                vk = vks.get(partial.index)
                if vk is None or not self.share_verify(
                        public_key, vk, partial):
                    continue
            usable[partial.index] = partial
            if len(usable) == t + 1:
                break
        coefficients = lagrange_coefficients(
            usable.keys(), self.group.order)
        z = r = None
        for index, partial in usable.items():
            weight = coefficients[index]
            z_term = self._exp(partial.z, weight)
            r_term = self._exp(partial.r, weight)
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
        return z, r

    def verify(self, public_key, signature):
        h_1, h_2 = self._hash()
        p = self.params
        return multi_pairing_naive([
            (signature.z.point, p.g_z.point),
            (signature.r.point, p.g_r.point),
            (h_1.point, public_key.g_1.point),
            (h_2.point, public_key.g_2.point),
        ]).is_one()


def run_snapshot(rounds: int, include_naive: bool = True) -> dict:
    group = get_group("bn254")
    rng = random.Random(3)
    params = ThresholdParams.generate(group, T, N)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    partials = [scheme.share_sign(shares[i], MESSAGE) for i in (1, 2, 3)]
    signature = scheme.combine(pk, vks, MESSAGE, partials)
    assert scheme.verify(pk, MESSAGE, signature)

    fast_ms = {
        "share_sign": timed(
            lambda: scheme.share_sign(shares[1], MESSAGE), rounds),
        "share_verify": timed(
            lambda: scheme.share_verify(pk, vks[1], MESSAGE, partials[0]),
            rounds),
        "combine_optimistic": timed(
            lambda: scheme.combine(pk, vks, MESSAGE, partials,
                                   verify_shares=False), rounds),
        "combine_robust": timed(
            lambda: scheme.combine(pk, vks, MESSAGE, partials), rounds),
        "verify": timed(
            lambda: scheme.verify(pk, MESSAGE, signature), rounds),
    }

    snapshot = {
        "meta": {
            "backend": group.name,
            "t": T,
            "n": N,
            "rounds": rounds,
            "message": MESSAGE.decode(),
            "python": sys.version.split()[0],
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "fast_ms": fast_ms,
        "seed_reference_ms": SEED_REFERENCE_MS,
    }

    if include_naive:
        naive = NaiveReference(scheme)
        assert naive.share_verify(pk, vks[1], partials[0])
        assert naive.verify(pk, signature)
        naive_ms = {
            "share_sign": timed(
                lambda: naive.share_sign(shares[1]), rounds),
            "share_verify": timed(
                lambda: naive.share_verify(pk, vks[1], partials[0]), rounds),
            "combine_optimistic": timed(
                lambda: naive.combine(pk, vks, partials,
                                      verify_shares=False), rounds),
            "combine_robust": timed(
                lambda: naive.combine(pk, vks, partials,
                                      verify_shares=True), rounds),
            "verify": timed(lambda: naive.verify(pk, signature), rounds),
        }
        snapshot["naive_ms"] = naive_ms
        snapshot["speedup"] = {
            op: round(naive_ms[op] / fast_ms[op], 2) for op in fast_ms
        }
    return snapshot


def render_table(snapshot: dict) -> Table:
    labels = {
        "share_sign": "Share-Sign (2 multi-exps + 2 hash-on-curve)",
        "share_verify": "Share-Verify (product of 4 pairings)",
        "combine_optimistic": f"Combine (t+1 = {T + 1}, optimistic)",
        "combine_robust": "Combine (robust, share-verifying)",
        "verify": "Verify (product of 4 pairings)",
    }
    has_naive = "naive_ms" in snapshot
    columns = ["operation", "ms"]
    if has_naive:
        columns += ["naive ms", "speedup"]
    table = Table(
        "T2: operation costs on BN254, pure Python (ms)", columns)
    for op, label in labels.items():
        row = {"operation": label, "ms": snapshot["fast_ms"][op]}
        if has_naive:
            row["naive ms"] = snapshot["naive_ms"][op]
            row["speedup"] = f"{snapshot['speedup'][op]:.2f}x"
        table.add_row(**row)
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per operation (best-of)")
    parser.add_argument("--skip-naive", action="store_true",
                        help="skip the seed-equivalent baseline timings")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_t2_ops.json")
    parser.add_argument("--table", type=pathlib.Path,
                        default=REPO_ROOT / "benchmarks" / "results"
                        / "t2_ops.txt")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")

    snapshot = run_snapshot(args.rounds, include_naive=not args.skip_naive)
    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    table = render_table(snapshot)
    args.table.parent.mkdir(parents=True, exist_ok=True)
    args.table.write_text(table.render() + "\n")
    print(table.render())
    print(f"\nwrote {args.output} and {args.table}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
