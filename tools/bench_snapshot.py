#!/usr/bin/env python
"""Machine-readable perf snapshot of the T2 hot-path operations.

Runs the T2-style micro-benchmarks (Share-Sign, Share-Verify, optimistic
and robust Combine, Verify, cross-message batch Verify, GT
exponentiation and the final exponentiation on BN254 with t=2, n=5)
twice: once through the current fast paths (prepared pairings with a
shared Miller-loop squaring chain, mixed-coordinate MSM, cyclotomic GT
arithmetic, batch verification, hash memoization) and once through the
retained seed-equivalent naive implementations (inline Miller loops,
blind final exponentiation, per-term double-and-add, per-share and
per-message verification).  Because both sides run in the same process on
the same machine, the resulting speedups are hardware-independent and can
be asserted by future PRs.

The ``svc_*`` ops additionally measure the async signing service
end to end: the same closed-loop workload through the same pipeline,
batched (window = BATCH_K) versus single-request mode (window = 1), so
their speedups isolate the batch-window amortization of the serving
layer.  The ``svc_mp_*`` ops measure the process-parallel worker tier
(MP_WORKERS worker processes vs the same batched pipeline on one
process, same offered load) — the multi-core scaling knob.  The
``svc_tcp_*`` ops measure the TCP remote-worker tier the same way
(TCP_WORKERS standalone worker processes on the loopback vs the
batched event-loop pipeline), isolating the framing/socket overhead of
the multi-machine transport.  ``svc_wal_throughput`` measures the
durability overhead: the same sign-only pipeline with the write-ahead
log on versus off (fsync batched per closed window), so its ratio is
the cost of crash safety — expected slightly below 1.0x.
``svc_epoch_pause`` measures the key-lifecycle overhead the same way:
the identical sign-only workload with one live epoch transition
(``begin_epoch`` barrier: drain in-flight windows, swap shares, resume)
fired mid-run versus none — the cost of zero-downtime share refresh.
The ``svc_http_*`` ops measure the HTTP front door: the identical
sign-only workload entering through the asyncio gateway (HTTP/1.1
keep-alive, JSON bodies, API-key tenant admission, a loopback socket
round trip per request) versus calling ``service.sign`` directly — the
cost of serving over the wire, also expected below 1.0x.
``svc_robust_batch_shareverify`` measures the combiner's window-level
Share-Verify: one window of BATCH_K partial signatures across BATCH_K
distinct messages checked under ONE cross-message multi-pairing versus
one seed-equivalent naive Share-Verify per share.  The ``svc_pipeline_*``
ops measure wire-format v2's request shipping: the identical sign-only
workload over the same TCP workers with shards shipping single requests
down a pipelined connection (depth = meta.pipeline_depth, the worker
re-batches across shards) versus dispatcher-built windows (depth 1, the
v1 behavior) — overhead-bound on the loopback, so its --check floor is
the wide ``OVERHEAD_TOLERANCE`` band; the full depth sweep lands in
``benchmarks/results/pipeline_sweep.txt`` for real-network
interpretation.  See ``benchmarks/README.md`` for the methodology.

Writes ``BENCH_t2_ops.json`` at the repository root (the perf trajectory
record) and regenerates ``benchmarks/results/t2_ops.txt``.

``--check`` re-runs the micro-benchmarks and fails (exit 1) when any
tracked op's same-process speedup regresses more than the tolerance
below the committed ``BENCH_t2_ops.json`` — the CI guard that a fast
path has not silently fallen back to a naive implementation.  The
tolerance defaults to 15% and is overridable via the
``BENCH_TOLERANCE`` environment variable (a percentage), so noisy
shared runners can widen it without editing code.  See
``benchmarks/README.md`` for the snapshot format and how to add an op.

Usage::

    PYTHONPATH=src python tools/bench_snapshot.py [--rounds N]
        [--skip-naive] [--check]
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import random
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.bench.tables import Table                       # noqa: E402
from repro.core.keys import PartialSignature, ThresholdParams  # noqa: E402
from repro.core.scheme import (                            # noqa: E402
    LJYThresholdScheme, ServiceHandle, reconstruct_master_key,
)
from repro.service import (                                # noqa: E402
    GatewayClient, HttpGateway, LoadGenerator, ServiceConfig,
    SigningService, TenantConfig,
)
from repro.curves.g1 import FP_OPS, G1Point                # noqa: E402
from repro.curves.pairing import (                         # noqa: E402
    final_exponentiation, final_exponentiation_naive,
    multi_pairing_naive, prepare_g2, _miller_loop_prepared_multi,
)
from repro.curves.weierstrass import jac_scalar_mul        # noqa: E402
from repro.groups import get_group                         # noqa: E402
from repro.math.lagrange import lagrange_coefficients      # noqa: E402
from repro.math.tower import f12_cyclotomic_pow            # noqa: E402

T, N = 2, 5
MESSAGE = b"benchmark message"
#: Cross-message batch size for the amortized server-side verification op.
BATCH_K = 16
#: Requests per service measurement (3 full windows, so the pipeline is
#: warm and p50 reflects steady state rather than the first window).
SVC_TOTAL = 3 * BATCH_K
#: Closed-loop client concurrency driving the service ops.
SVC_CONCURRENCY = BATCH_K
#: Worker processes for the ``svc_mp_*`` ops (the process-parallel tier).
MP_WORKERS = 4
#: Shards for the ``svc_mp_*`` ops — at least MP_WORKERS, so that many
#: window jobs can be in flight at once (one per shard).
MP_SHARDS = 4
#: Service passes per ``svc_*``/``svc_mp_*``/``svc_tcp_*`` side.  Each
#: op's value is the **median** across passes (see
#: ``interleaved_best``) — the service ops are single-pass aggregates,
#: so variance is tamed by repeating the whole pass, and an odd pass
#: count gives the median a true middle sample.
SVC_PASSES = 3
MP_PASSES = 3
#: Requests per ``svc_mp_*`` workload — larger than SVC_TOTAL so every
#: shard sees several full windows (4 shards split the traffic; a small
#: total would make the window-fill dynamics, and thus the measured
#: ratio, noisy).
MP_TOTAL = 2 * SVC_TOTAL
#: Remote TCP workers for the ``svc_tcp_*`` ops (the multi-machine
#: tier, measured over the loopback — real sockets, framing and
#: handshake, no real network latency).
TCP_WORKERS = 2
TCP_PASSES = 3
#: Pipelining depths swept for the ``svc_pipeline_*`` ops.  Depth 1 is
#: the wire-v1 behavior (dispatcher-built windows, one job in flight
#: per connection) and doubles as the checked ratio's baseline; the
#: checked fast side is PIPELINE_DEPTH.  The other depths are recorded
#: for the committed sweep table only.
PIPELINE_SWEEP_DEPTHS = (1, 2, 4, 8)
PIPELINE_DEPTH = 4
#: Passes for the two *checked* depths (1 and PIPELINE_DEPTH); the
#: sweep-only depths run one pass each — they inform the table, not
#: the --check gate, so they do not pay for median stability.
PIPELINE_PASSES = 3

#: Seed-commit T2 numbers (benchmarks/results/t2_ops.txt at PR 0), kept for
#: context only — cross-machine comparisons are apples to oranges, which is
#: why the JSON also records same-process naive timings.  Ops introduced
#: after the seed (batch_verify_msg, gt_exp, final_exp) have no entry.
SEED_REFERENCE_MS = {
    "share_sign": 8.897,
    "share_verify": 60.183,
    "combine_optimistic": 5.223,
    "combine_robust": 212.7,
    "verify": 70.336,
}

#: Tolerated fractional slack before ``--check`` flags a speedup
#: regression against the committed snapshot.  Overridable through the
#: ``BENCH_TOLERANCE`` environment variable (a percentage: ``15`` means
#: 15%), so noisy shared CI runners can widen the gate without a code
#: edit.
CHECK_TOLERANCE = 0.15
#: Ops whose committed speedup sits below this are *overhead-bound*:
#: the worker-tier ratios (``svc_mp_*``, ``svc_tcp_*``) hover near
#: 1.0x on a single-core recorder, where their run-to-run scheduling
#: noise (±10-15%) rivals the default tolerance.  For them the check's
#: documented purpose is catching the tier *collapsing* (a reconnect
#: storm, per-job re-dials, pickling whole handles — 0.3-0.5x events),
#: so the floor widens to ``OVERHEAD_TOLERANCE`` instead of flaking on
#: scheduler jitter.  Ops with real committed speedups keep the strict
#: band (the threshold sits just under ``gt_exp``'s ~1.23x so a
#: genuine fast path falling back to naive, a ~1.0x event, stays
#: caught by the strict floor).
OVERHEAD_REFERENCE = 1.2
OVERHEAD_TOLERANCE = 0.40


def check_tolerance() -> float:
    """The active --check tolerance as a fraction (env-overridable)."""
    raw = os.environ.get("BENCH_TOLERANCE")
    if raw is None:
        return CHECK_TOLERANCE
    try:
        percent = float(raw)
    except ValueError:
        raise SystemExit(
            f"BENCH_TOLERANCE must be a percentage, got {raw!r}")
    if percent < 0:
        raise SystemExit(
            f"BENCH_TOLERANCE must be non-negative, got {raw!r}")
    return percent / 100.0


def timed(fn, rounds, min_total_s=0.25):
    """Best-of timing with a minimum measurement budget.

    Runs at least ``rounds`` samples, then keeps sampling until
    ``min_total_s`` of wall clock has been spent (capped at 10x rounds).
    Sub-millisecond-scale ops would otherwise hand their best-of-3 to
    scheduler noise, which turns into speedup-ratio flake in --check on
    shared runners; expensive ops hit the budget after ``rounds`` and
    pay nothing extra.
    """
    best = None
    spent = 0.0
    samples = 0
    while samples < rounds or (spent < min_total_s
                               and samples < 10 * rounds):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        best = elapsed if best is None else min(best, elapsed)
        spent += elapsed
        samples += 1
    return best * 1000.0


def interleaved_best(drive_fast, drive_naive, passes: int,
                     include_naive: bool):
    """Median-of-``passes`` per side, with the sides interleaved.

    Service-level ratios are noisier than micro-ops, and running all
    fast passes before all naive passes would put slow machine-load
    drift inside the speedup ratio; alternating
    (fast, naive, fast, naive, ...) lands it on both sides instead.

    Per-op values are the **median** across passes, not the minimum:
    a minimum is right for micro-op cost (the true cost plus
    never-negative noise), but the worker-tier ops track *ratios* that
    sit near 1.0x on a single core, and a ratio of two minima inherits
    a high-side bias from either side's one lucky pass — which then
    becomes an unreproducible committed floor for ``--check``.  The
    median is symmetric, so committed and fresh runs agree to within
    the tolerance.  Returns ``(fast, naive-or-None)`` dicts.
    """
    from statistics import median
    fast_reports, naive_reports = [], []
    for _ in range(passes):
        fast_reports.append(drive_fast())
        if include_naive:
            naive_reports.append(drive_naive())

    def representative(reports) -> dict:
        return {op: median(report[op] for report in reports)
                for op in reports[0]}

    return representative(fast_reports), \
        (representative(naive_reports) if include_naive else None)


class NaiveReference:
    """The seed implementations of the five T2 operations.

    Reconstructed from the retained naive primitives: fresh hash-to-curve
    on every call, double-and-add exponentiation, inline Miller loops with
    full F_p12 multiplications and a blind final exponentiation, and
    per-share verification in robust Combine.
    """

    def __init__(self, scheme):
        self.scheme = scheme
        self.params = scheme.params
        self.group = scheme.group

    def _hash(self, message=MESSAGE):
        # Bypass the module-scope hash memo: the seed hashed from scratch
        # on every call, so the naive baseline must too.
        from repro.curves.hash_to_curve import hash_to_g1_uncached
        from repro.groups.bn254_backend import BNG1
        return [
            BNG1(hash_to_g1_uncached(
                message, domain=f"repro:{self.params.hash_domain}:{k}"))
            for k in range(2)
        ]

    def _exp(self, element, scalar):
        # Seed-style double-and-add on the underlying point.
        return type(element)(G1Point(_jac=jac_scalar_mul(
            FP_OPS, element.point._jac, scalar, self.group.order)))

    def share_sign(self, share):
        h_1, h_2 = self._hash()
        z = self._exp(h_1, -share.a_1 % self.group.order) * \
            self._exp(h_2, -share.a_2 % self.group.order)
        r = self._exp(h_1, -share.b_1 % self.group.order) * \
            self._exp(h_2, -share.b_2 % self.group.order)
        return PartialSignature(index=share.index, z=z, r=r)

    def share_verify(self, public_key, vk, partial, message=MESSAGE):
        if partial.index != vk.index:
            return False
        h_1, h_2 = self._hash(message)
        p = self.params
        return multi_pairing_naive([
            (partial.z.point, p.g_z.point),
            (partial.r.point, p.g_r.point),
            (h_1.point, vk.v_1.point),
            (h_2.point, vk.v_2.point),
        ]).is_one()

    def combine(self, public_key, vks, partials, verify_shares):
        t = self.params.t
        usable = {}
        for partial in partials:
            if partial.index in usable:
                continue
            if verify_shares:
                vk = vks.get(partial.index)
                if vk is None or not self.share_verify(
                        public_key, vk, partial):
                    continue
            usable[partial.index] = partial
            if len(usable) == t + 1:
                break
        coefficients = lagrange_coefficients(
            usable.keys(), self.group.order)
        z = r = None
        for index, partial in usable.items():
            weight = coefficients[index]
            z_term = self._exp(partial.z, weight)
            r_term = self._exp(partial.r, weight)
            z = z_term if z is None else z * z_term
            r = r_term if r is None else r * r_term
        return z, r

    def verify(self, public_key, signature, message=MESSAGE):
        h_1, h_2 = self._hash(message)
        p = self.params
        return multi_pairing_naive([
            (signature.z.point, p.g_z.point),
            (signature.r.point, p.g_r.point),
            (h_1.point, public_key.g_1.point),
            (h_2.point, public_key.g_2.point),
        ]).is_one()


def _drive_service(handle: ServiceHandle, max_batch: int,
                   sign_messages, verify_pairs, num_shards: int = 1,
                   workers: int = 0, remote_workers=()) -> dict:
    """Push one closed-loop workload through the signing service.

    ``max_batch=BATCH_K`` is the batched serving mode; ``max_batch=1``
    is single-request mode (every window degenerates to one request) —
    the baseline the batch-window amortization is measured against.
    ``workers=N`` additionally dispatches the windows to N worker
    processes (the ``svc_mp_*`` ops); ``remote_workers=[...]``
    dispatches them to standalone TCP workers (the ``svc_tcp_*`` ops).
    Returns per-request sign/verify/mixed costs and the sign p50.
    """
    total = len(sign_messages)
    config = ServiceConfig(
        num_shards=num_shards, max_batch=max_batch,
        max_wait_ms=25.0 if max_batch > 1 else 0.0,
        queue_depth=4 * total, workers=workers,
        remote_workers=remote_workers, rng=random.Random(77))

    async def scenario():
        async with SigningService(handle, config) as service:
            sign_report = await LoadGenerator(
                lambda i: service.sign(sign_messages[i])).run_closed(
                    len(sign_messages), SVC_CONCURRENCY)
            verify_report = await LoadGenerator(
                lambda i: service.verify(*verify_pairs[i])).run_closed(
                    len(verify_pairs), SVC_CONCURRENCY)

            def mixed(ordinal):
                if ordinal % 2:
                    return service.verify(*verify_pairs[ordinal // 2])
                return service.sign(sign_messages[ordinal // 2])

            mixed_report = await LoadGenerator(mixed).run_closed(
                2 * (total // 2), SVC_CONCURRENCY)
        return sign_report, verify_report, mixed_report

    sign_report, verify_report, mixed_report = asyncio.run(scenario())
    assert sign_report.completed == len(sign_messages)
    assert verify_report.completed == len(verify_pairs)
    assert verify_report.invalid == 0
    return {
        "svc_sign_p50": sign_report.p50_ms,
        "svc_verify_req": (verify_report.duration_s * 1000.0
                           / verify_report.completed),
        "svc_throughput": (mixed_report.duration_s * 1000.0
                           / mixed_report.completed),
    }


def run_service_ops(scheme: LJYThresholdScheme, pk, shares, vks, master,
                    include_naive: bool = True) -> "tuple[dict, dict | None]":
    """The ``svc_*`` ops: service-measured request costs.

    Both sides run the *same* service code path; only the batch-window
    size differs (BATCH_K vs 1), so the speedups isolate exactly the
    batch-window amortization the serving layer exists for.  Hashes are
    pre-warmed for every message so neither mode pays the one-time
    hash-to-curve seeding inside the timed section.  The single-request
    baseline is skipped under ``--skip-naive`` (it is the slowest
    configuration of the whole snapshot).
    """
    handle = ServiceHandle(scheme, pk, shares, vks)
    sign_messages = [b"svc sign %d" % i for i in range(SVC_TOTAL)]
    verify_messages = [b"svc verify %d" % i for i in range(SVC_TOTAL)]
    verify_pairs = [
        (message, scheme.sign_with_master(master, message))
        for message in verify_messages
    ]
    for message in sign_messages + verify_messages:
        scheme.params.hash_message(message)
    return interleaved_best(
        lambda: _drive_service(handle, BATCH_K, sign_messages,
                               verify_pairs),
        lambda: _drive_service(handle, 1, sign_messages, verify_pairs),
        SVC_PASSES, include_naive)


def run_mp_service_ops(scheme: LJYThresholdScheme, pk, shares, vks, master,
                       include_naive: bool = True
                       ) -> "tuple[dict, dict | None]":
    """The ``svc_mp_*`` ops: the process-parallel tier vs one process.

    Both sides run the batched pipeline over ``MP_SHARDS`` shards at the
    same offered load (closed loop, ``SVC_CONCURRENCY`` clients); the
    fast side dispatches windows to ``MP_WORKERS`` worker processes, the
    baseline runs them on the event loop.  The speedup is therefore the
    multi-core scaling of the worker tier — it approaches
    min(MP_WORKERS, cores) on idle multi-core hardware and ~1x on a
    single core, where process parallelism cannot add CPU time (the
    committed snapshot records whatever the recording machine provides;
    ``--check`` only guards against *regressions* from that baseline).
    """
    handle = ServiceHandle(scheme, pk, shares, vks)
    sign_messages = [b"svc mp sign %d" % i for i in range(MP_TOTAL)]
    verify_messages = [b"svc mp verify %d" % i for i in range(MP_TOTAL)]
    verify_pairs = [
        (message, scheme.sign_with_master(master, message))
        for message in verify_messages
    ]
    for message in sign_messages + verify_messages:
        scheme.params.hash_message(message)

    def rekey(report: dict) -> dict:
        return {
            "svc_mp_verify_req": report["svc_verify_req"],
            "svc_mp_throughput": report["svc_throughput"],
        }

    def drive(workers: int) -> dict:
        return rekey(_drive_service(handle, BATCH_K, sign_messages,
                                    verify_pairs, num_shards=MP_SHARDS,
                                    workers=workers))

    return interleaved_best(lambda: drive(MP_WORKERS), lambda: drive(0),
                            MP_PASSES, include_naive)


def run_tcp_service_ops(scheme: LJYThresholdScheme, pk, shares, vks,
                        master, include_naive: bool = True
                        ) -> "tuple[dict, dict | None]":
    """The ``svc_tcp_*`` ops: the TCP remote-worker tier vs one process.

    Same methodology as the ``svc_mp_*`` ops — the batched pipeline
    over ``MP_SHARDS`` shards at the same closed-loop offered load —
    but the fast side dispatches windows to ``TCP_WORKERS`` standalone
    worker processes over loopback sockets (framed wire jobs, HELLO
    handshake, warm per-process caches) instead of a
    ``ProcessPoolExecutor``.  On the loopback the measurement isolates
    the transport's framing/socket overhead against the identical
    event-loop baseline; the multi-core caveat of ``svc_mp_*`` applies
    unchanged (``meta.cpu_count`` keeps the committed ratio
    interpretable).  The worker processes are spawned once and reused
    by every fast pass, mirroring a deployment's long-lived workers.
    """
    from repro.serialization import encode_service_context
    from repro.service.transport import start_worker_process

    handle = ServiceHandle(scheme, pk, shares, vks)
    sign_messages = [b"svc tcp sign %d" % i for i in range(MP_TOTAL)]
    verify_messages = [b"svc tcp verify %d" % i for i in range(MP_TOTAL)]
    verify_pairs = [
        (message, scheme.sign_with_master(master, message))
        for message in verify_messages
    ]
    for message in sign_messages + verify_messages:
        scheme.params.hash_message(message)

    def rekey(report: dict) -> dict:
        return {
            "svc_tcp_verify_req": report["svc_verify_req"],
            "svc_tcp_throughput": report["svc_throughput"],
        }

    with tempfile.TemporaryDirectory() as tcp_dir:
        context_path = pathlib.Path(tcp_dir) / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))
        processes, addresses = [], []
        try:
            for _ in range(TCP_WORKERS):
                process, address = start_worker_process(context_path)
                processes.append(process)
                addresses.append(address)

            def drive(remote: bool) -> dict:
                return rekey(_drive_service(
                    handle, BATCH_K, sign_messages, verify_pairs,
                    num_shards=MP_SHARDS,
                    remote_workers=tuple(addresses) if remote else ()))

            return interleaved_best(
                lambda: drive(True), lambda: drive(False),
                TCP_PASSES, include_naive)
        finally:
            for process in processes:
                process.terminate()
            for process in processes:
                process.wait(timeout=10)


def run_pipeline_service_ops(scheme: LJYThresholdScheme, pk, shares,
                             vks, include_naive: bool = True
                             ) -> "tuple[dict, dict | None, dict]":
    """The ``svc_pipeline_*`` ops and depth sweep: wire-format v2's
    request shipping vs dispatcher-built windows.

    Every side runs the identical sign-only closed-loop workload over
    the same long-lived TCP workers; only ``pipeline_depth`` differs.
    At depth 1 each shard closes its own batch window and ships it
    whole (the wire-v1 behavior); at depth > 1 the shards ship single
    requests down a pipelined connection and the *worker* re-batches
    across all shards.  On the loopback the checked ratio
    (depth PIPELINE_DEPTH vs depth 1) is overhead-bound — both sides
    run the same crypto on the same cores, so it hovers near 1.0x and
    lands in the wide ``OVERHEAD_TOLERANCE`` --check band.  The gate
    exists to catch the pipelined path *collapsing* (head-of-line
    blocking on the reader, per-request dials, windows degenerating to
    size 1); the sweep table records how per-request cost moves with
    depth for real-network interpretation, where pipelining hides the
    round-trip latency the loopback does not have.

    Returns ``(fast, naive-or-None, sweep)``; ``sweep`` maps each
    swept depth to its ``{"sign_req", "sign_p50"}`` medians in ms.
    """
    from statistics import median

    from repro.serialization import encode_service_context
    from repro.service.transport import start_worker_process

    handle = ServiceHandle(scheme, pk, shares, vks)
    sign_messages = [b"svc pipe sign %d" % i for i in range(MP_TOTAL)]
    for message in sign_messages:
        scheme.params.hash_message(message)
    total = len(sign_messages)

    with tempfile.TemporaryDirectory() as pipe_dir:
        context_path = pathlib.Path(pipe_dir) / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))
        processes, addresses = [], []
        try:
            for _ in range(TCP_WORKERS):
                process, address = start_worker_process(context_path)
                processes.append(process)
                addresses.append(address)

            def drive(depth: int) -> dict:
                config = ServiceConfig(
                    num_shards=MP_SHARDS, max_batch=BATCH_K,
                    max_wait_ms=25.0, queue_depth=4 * total,
                    remote_workers=tuple(addresses),
                    pipeline_depth=depth, rng=random.Random(77))

                async def scenario():
                    async with SigningService(handle, config) as service:
                        return await LoadGenerator(
                            lambda i: service.sign(
                                sign_messages[i])).run_closed(
                                    total, SVC_CONCURRENCY)

                report = asyncio.run(scenario())
                assert report.completed == total and report.failed == 0
                return {
                    "sign_req": report.duration_s * 1000.0 / total,
                    "sign_p50": report.p50_ms,
                }

            checked = {1, PIPELINE_DEPTH}
            samples = {depth: [] for depth in PIPELINE_SWEEP_DEPTHS}
            for ordinal in range(PIPELINE_PASSES):
                for depth in PIPELINE_SWEEP_DEPTHS:
                    if ordinal and depth not in checked:
                        continue
                    samples[depth].append(drive(depth))
        finally:
            for process in processes:
                process.terminate()
            for process in processes:
                process.wait(timeout=10)

    sweep = {
        depth: {key: median(sample[key] for sample in passes)
                for key in passes[0]}
        for depth, passes in samples.items()
    }
    fast = {
        "svc_pipeline_sign_req": sweep[PIPELINE_DEPTH]["sign_req"],
        "svc_pipeline_sign_p50": sweep[PIPELINE_DEPTH]["sign_p50"],
    }
    naive = ({
        "svc_pipeline_sign_req": sweep[1]["sign_req"],
        "svc_pipeline_sign_p50": sweep[1]["sign_p50"],
    } if include_naive else None)
    return fast, naive, sweep


def _drive_wal_service(handle: ServiceHandle, sign_messages,
                       wal_path) -> dict:
    """One sign-only closed-loop pass, with or without the WAL.

    Sign-only because the write-ahead log records sign requests only
    (verify is a stateless read); mixing verifies in would dilute the
    measured overhead.  Returns the per-request wall-clock cost.
    """
    total = len(sign_messages)
    config = ServiceConfig(
        num_shards=1, max_batch=BATCH_K, max_wait_ms=25.0,
        queue_depth=4 * total, wal_path=wal_path, rng=random.Random(77))

    async def scenario():
        async with SigningService(handle, config) as service:
            return await LoadGenerator(
                lambda i: service.sign(sign_messages[i])).run_closed(
                    total, SVC_CONCURRENCY)

    report = asyncio.run(scenario())
    assert report.completed == total
    return {"svc_wal_throughput": report.duration_s * 1000.0 / total}


def run_wal_service_ops(scheme: LJYThresholdScheme, pk, shares, vks,
                        include_naive: bool = True
                        ) -> "tuple[dict, dict | None]":
    """The ``svc_wal_throughput`` op: the cost of crash-safe durability.

    Both sides run the identical batched sign-only pipeline; the fast
    side appends every admitted request to a write-ahead log and fsyncs
    once per closed batch window (``meta.wal_sync`` records the
    batching), the baseline runs with the WAL off.  The committed ratio
    is therefore the durability overhead — expected slightly *below*
    1.0x, landing in the overhead-bound ``--check`` band — and the gate
    exists to catch the overhead blowing up (an fsync per request
    instead of per window is a 0.2x-scale event on real disks).  Each
    WAL pass writes a fresh log file so no pass pays replay for the
    previous one.
    """
    handle = ServiceHandle(scheme, pk, shares, vks)
    sign_messages = [b"svc wal sign %d" % i for i in range(SVC_TOTAL)]
    for message in sign_messages:
        scheme.params.hash_message(message)

    with tempfile.TemporaryDirectory() as wal_dir:
        passes = iter(range(SVC_PASSES))

        def drive(with_wal: bool) -> dict:
            path = (pathlib.Path(wal_dir) / f"pass-{next(passes)}.wal"
                    if with_wal else None)
            return _drive_wal_service(handle, sign_messages, path)

        return interleaved_best(
            lambda: drive(True), lambda: drive(False),
            SVC_PASSES, include_naive)


def _drive_epoch_service(handle: ServiceHandle, next_handle,
                         sign_messages) -> dict:
    """One sign-only closed-loop pass, with or without a live epoch
    transition fired mid-run.

    ``next_handle`` is a pre-computed refresh of ``handle`` (epoch 1);
    passing it fires ``begin_epoch`` — the drain/swap/resume barrier —
    once half the workload has been admitted.  The DKG math itself is
    computed *outside* the timed section (a deployment overlaps it with
    serving; only the barrier pause is unavoidable), so the measured
    delta is exactly the zero-downtime transition cost.  Returns the
    per-request wall-clock cost.
    """
    total = len(sign_messages)
    config = ServiceConfig(
        num_shards=1, max_batch=BATCH_K, max_wait_ms=25.0,
        queue_depth=4 * total, rng=random.Random(77))

    async def scenario():
        async with SigningService(handle, config) as service:
            load = asyncio.ensure_future(LoadGenerator(
                lambda i: service.sign(sign_messages[i])).run_closed(
                    total, SVC_CONCURRENCY))
            if next_handle is not None:
                while service.stats.accepted < total // 2:
                    await asyncio.sleep(0)
                await service.begin_epoch(next_handle)
            return await load

    report = asyncio.run(scenario())
    assert report.completed == total and report.failed == 0
    return {"svc_epoch_pause": report.duration_s * 1000.0 / total}


def run_epoch_service_ops(scheme: LJYThresholdScheme, pk, shares, vks,
                          include_naive: bool = True
                          ) -> "tuple[dict, dict | None]":
    """The ``svc_epoch_pause`` op: the cost of a live epoch transition.

    Both sides run the identical batched sign-only pipeline; the fast
    side performs one proactive share refresh mid-run through the
    ``begin_epoch`` barrier (drain in-flight windows behind per-shard
    locks, swap shares/quorums, resume — no request is rejected), the
    baseline never transitions.  The committed ratio is therefore the
    pause overhead amortized over the workload — expected slightly
    *below* 1.0x, landing in the overhead-bound ``--check`` band — and
    the gate exists to catch the barrier blowing up (a transition that
    drops the queues and forces client retries, or a swap that holds
    the barrier across the DKG math, is a 0.2x-scale event).  The
    post-refresh handle is computed once, outside every timed pass.
    """
    handle = ServiceHandle(scheme, pk, shares, vks)
    next_handle = handle.refreshed(rng=random.Random(99))
    sign_messages = [b"svc epoch sign %d" % i for i in range(SVC_TOTAL)]
    for message in sign_messages:
        scheme.params.hash_message(message)
    return interleaved_best(
        lambda: _drive_epoch_service(handle, next_handle, sign_messages),
        lambda: _drive_epoch_service(handle, None, sign_messages),
        SVC_PASSES, include_naive)


def _drive_http_service(handle: ServiceHandle, sign_messages,
                        over_http: bool) -> dict:
    """One sign-only closed-loop pass, over the HTTP gateway or direct.

    The HTTP side boots the gateway on an ephemeral loopback port and
    drives the workload through ``GatewayClient`` (keep-alive connection
    pool, hex-encoded JSON bodies, API-key auth on every request); the
    direct side awaits ``service.sign`` on the same event loop.  Both
    sides run the identical batched service configuration, so the delta
    is exactly the front-door cost: HTTP/1.1 framing, JSON
    encode/decode, tenant admission and the loopback round trip.
    Returns the per-request wall-clock cost and the sign p50.
    """
    total = len(sign_messages)
    config = ServiceConfig(
        num_shards=1, max_batch=BATCH_K, max_wait_ms=25.0,
        queue_depth=4 * total, rng=random.Random(77))

    async def scenario():
        async with SigningService(handle, config) as service:
            gateway = client = None
            if over_http:
                gateway = HttpGateway(service, tenants=[
                    TenantConfig(name="bench", api_key="bench-key")])
                await gateway.start()
                client = GatewayClient(
                    gateway.host, gateway.port, "bench-key")
            try:
                workload = (
                    (lambda i: client.sign(sign_messages[i]))
                    if over_http else
                    (lambda i: service.sign(sign_messages[i])))
                return await LoadGenerator(workload).run_closed(
                    total, SVC_CONCURRENCY)
            finally:
                if client is not None:
                    await client.close()
                if gateway is not None:
                    await gateway.stop()

    report = asyncio.run(scenario())
    assert report.completed == total and report.failed == 0
    return {
        "svc_http_sign_p50": report.p50_ms,
        "svc_http_throughput": report.duration_s * 1000.0 / total,
    }


def run_http_service_ops(scheme: LJYThresholdScheme, pk, shares, vks,
                         include_naive: bool = True
                         ) -> "tuple[dict, dict | None]":
    """The ``svc_http_*`` ops: the cost of the HTTP front door.

    Both sides run the identical batched sign-only pipeline at the same
    offered load; the fast side enters through the asyncio HTTP gateway
    (request parsing, tenant auth, JSON bodies, a loopback socket round
    trip per request), the baseline calls ``service.sign`` directly.
    The committed ratio is therefore the gateway overhead — expected
    below 1.0x, landing in the overhead-bound ``--check`` band — and
    the gate exists to catch the front door becoming the bottleneck
    (per-request reconnects instead of keep-alive, or head-of-line
    blocking in the connection handler, is a 0.2x-scale event).
    """
    handle = ServiceHandle(scheme, pk, shares, vks)
    sign_messages = [b"svc http sign %d" % i for i in range(SVC_TOTAL)]
    for message in sign_messages:
        scheme.params.hash_message(message)
    return interleaved_best(
        lambda: _drive_http_service(handle, sign_messages, True),
        lambda: _drive_http_service(handle, sign_messages, False),
        SVC_PASSES, include_naive)


def run_snapshot(rounds: int, include_naive: bool = True) -> dict:
    group = get_group("bn254")
    rng = random.Random(3)
    params = ThresholdParams.generate(group, T, N)
    scheme = LJYThresholdScheme(params)
    pk, shares, vks = scheme.dealer_keygen(rng=rng)
    partials = [scheme.share_sign(shares[i], MESSAGE) for i in (1, 2, 3)]
    signature = scheme.combine(pk, vks, MESSAGE, partials)
    assert scheme.verify(pk, MESSAGE, signature)

    # Cross-message batch: K distinct messages signed by the master key.
    master = reconstruct_master_key(
        list(shares.values()), group.order, T)
    batch_messages = [b"batch message %d" % i for i in range(BATCH_K)]
    batch_signatures = [
        scheme.sign_with_master(master, message)
        for message in batch_messages
    ]
    assert scheme.batch_verify(pk, batch_messages, batch_signatures)

    # One worker-side window of K partial signatures across K distinct
    # messages (signers rotate through a quorum) for the window-level
    # Share-Verify op.
    window_items = [
        (batch_messages[i],
         scheme.share_sign(shares[(i % (T + 1)) + 1], batch_messages[i]))
        for i in range(BATCH_K)
    ]
    assert scheme.batch_share_verify_window(pk, vks, window_items)

    # GT / final-exponentiation micro-ops share one Miller-loop value.
    gt_element = group.pair(group.g1_generator(), group.g2_generator())
    gt_exponent = random.Random(11).randrange(group.order)
    miller_value = _miller_loop_prepared_multi([
        (signature.z.point.affine(), prepare_g2(params.g_z.point)),
        (signature.r.point.affine(), prepare_g2(params.g_r.point)),
    ])

    naive = NaiveReference(scheme) if include_naive else None
    if naive is not None:
        assert naive.share_verify(pk, vks[1], partials[0])
        assert naive.verify(pk, signature)
        assert all(
            naive.verify(pk, sig, msg)
            for msg, sig in zip(batch_messages, batch_signatures))
        naive_gt = f12_cyclotomic_pow(gt_element.element.value, gt_exponent)
        assert naive_gt == (gt_element.element ** gt_exponent).value

    # (op, scale, fast fn, seed-equivalent naive fn).  Amortized ops
    # divide by their batch size via ``scale``.
    micro_ops = [
        ("share_sign", 1,
         lambda: scheme.share_sign(shares[1], MESSAGE),
         lambda: naive.share_sign(shares[1])),
        ("share_verify", 1,
         lambda: scheme.share_verify(pk, vks[1], MESSAGE, partials[0]),
         lambda: naive.share_verify(pk, vks[1], partials[0])),
        ("combine_optimistic", 1,
         lambda: scheme.combine(pk, vks, MESSAGE, partials,
                                verify_shares=False),
         lambda: naive.combine(pk, vks, partials, verify_shares=False)),
        ("combine_robust", 1,
         lambda: scheme.combine(pk, vks, MESSAGE, partials),
         lambda: naive.combine(pk, vks, partials, verify_shares=True)),
        ("verify", 1,
         lambda: scheme.verify(pk, MESSAGE, signature),
         lambda: naive.verify(pk, signature)),
        # Seed-equivalent server: one full naive Verify per message.
        ("batch_verify_msg", BATCH_K,
         lambda: scheme.batch_verify(pk, batch_messages, batch_signatures),
         lambda: all(naive.verify(pk, sig, msg)
                     for msg, sig in zip(batch_messages,
                                         batch_signatures))),
        # The combiner's window-level Share-Verify: K shares across K
        # messages under ONE multi-pairing, vs one full naive
        # Share-Verify (4 inline pairings) per share.
        ("svc_robust_batch_shareverify", BATCH_K,
         lambda: scheme.batch_share_verify_window(pk, vks, window_items),
         lambda: all(
             naive.share_verify(pk, vks[partial.index], partial, msg)
             for msg, partial in window_items)),
        # Seed GT ladder: generic-squaring NAF exponentiation.
        ("gt_exp", 1,
         lambda: gt_element.element ** gt_exponent,
         lambda: f12_cyclotomic_pow(gt_element.element.value,
                                    gt_exponent)),
        # Seed final exponentiation: blind 2540-bit hard part.
        ("final_exp", 1,
         lambda: final_exponentiation(miller_value),
         lambda: final_exponentiation_naive(miller_value)),
    ]
    # Each op's two sides are timed back to back (not all-fast then
    # all-naive): on a shared machine, load drift between two distant
    # phases would land in the speedup ratio instead of cancelling out.
    fast_ms, naive_ms = {}, {}
    for op, scale, fast_fn, naive_fn in micro_ops:
        fast_ms[op] = timed(fast_fn, rounds) / scale
        if naive is not None:
            naive_ms[op] = timed(naive_fn, rounds) / scale

    # Service ops: passes, not rounds (the workloads already aggregate
    # whole request populations; see run_service_ops).
    svc_fast, svc_naive = run_service_ops(
        scheme, pk, shares, vks, master, include_naive=include_naive)
    fast_ms.update(svc_fast)
    mp_fast, mp_naive = run_mp_service_ops(
        scheme, pk, shares, vks, master, include_naive=include_naive)
    fast_ms.update(mp_fast)
    tcp_fast, tcp_naive = run_tcp_service_ops(
        scheme, pk, shares, vks, master, include_naive=include_naive)
    fast_ms.update(tcp_fast)
    pipe_fast, pipe_naive, pipe_sweep = run_pipeline_service_ops(
        scheme, pk, shares, vks, include_naive=include_naive)
    fast_ms.update(pipe_fast)
    wal_fast, wal_naive = run_wal_service_ops(
        scheme, pk, shares, vks, include_naive=include_naive)
    fast_ms.update(wal_fast)
    epoch_fast, epoch_naive = run_epoch_service_ops(
        scheme, pk, shares, vks, include_naive=include_naive)
    fast_ms.update(epoch_fast)
    http_fast, http_naive = run_http_service_ops(
        scheme, pk, shares, vks, include_naive=include_naive)
    fast_ms.update(http_fast)

    snapshot = {
        "meta": {
            "backend": group.name,
            "t": T,
            "n": N,
            "rounds": rounds,
            "batch_k": BATCH_K,
            "svc_total": SVC_TOTAL,
            "svc_concurrency": SVC_CONCURRENCY,
            "mp_workers": MP_WORKERS,
            "mp_shards": MP_SHARDS,
            "tcp_workers": TCP_WORKERS,
            "pipeline_depth": PIPELINE_DEPTH,
            "pipeline_sweep_depths": list(PIPELINE_SWEEP_DEPTHS),
            "wal_sync": "fsync batched per closed window, not per request",
            "cpu_count": os.cpu_count(),
            "message": MESSAGE.decode(),
            "python": sys.version.split()[0],
            "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        },
        "fast_ms": fast_ms,
        "seed_reference_ms": SEED_REFERENCE_MS,
        # The full depth sweep behind the svc_pipeline_* ops; rendered
        # into benchmarks/results/pipeline_sweep.txt by main().
        "pipeline_sweep_ms": {str(depth): values
                              for depth, values in pipe_sweep.items()},
    }

    if include_naive:
        # Service baselines: the same pipeline in single-request mode
        # (max_batch=1), i.e. what a caller driving the scheme one
        # request at a time pays.
        naive_ms.update(svc_naive)
        # MP baselines: the same batched pipeline, same shard count and
        # offered load, windows run on the event loop (workers=0).
        naive_ms.update(mp_naive)
        # TCP baselines: identical methodology, remote_workers=() side.
        naive_ms.update(tcp_naive)
        # Pipeline baselines: depth 1 over the same TCP workers — the
        # ratio is request shipping vs dispatcher-built windows.
        naive_ms.update(pipe_naive)
        # WAL baseline: the same sign-only pipeline with the WAL off —
        # the ratio is the durability overhead (expected < 1.0x).
        naive_ms.update(wal_naive)
        # Epoch baseline: the same sign-only pipeline with no mid-run
        # transition — the ratio is the live-refresh pause overhead.
        naive_ms.update(epoch_naive)
        # HTTP baseline: the same sign-only pipeline called directly
        # (no gateway) — the ratio is the front-door overhead.
        naive_ms.update(http_naive)
        snapshot["naive_ms"] = naive_ms
        snapshot["speedup"] = {
            op: round(naive_ms[op] / fast_ms[op], 2) for op in fast_ms
        }
    return snapshot


def render_table(snapshot: dict) -> Table:
    labels = {
        "share_sign": "Share-Sign (2 multi-exps + 2 hash-on-curve)",
        "share_verify": "Share-Verify (product of 4 pairings)",
        "combine_optimistic": f"Combine (t+1 = {T + 1}, optimistic)",
        "combine_robust": "Combine (robust, share-verifying)",
        "verify": "Verify (product of 4 pairings)",
        "batch_verify_msg": f"Batch-Verify, per message (k = {BATCH_K})",
        "svc_robust_batch_shareverify": (
            f"Window Share-Verify, per share (k = {BATCH_K})"),
        "gt_exp": "GT exponentiation (254-bit)",
        "final_exp": "Final exponentiation",
        "svc_sign_p50": f"Service sign p50 (window {BATCH_K} vs 1)",
        "svc_verify_req": f"Service verify, per request (window {BATCH_K})",
        "svc_throughput": "Service mixed load, per request",
        "svc_mp_verify_req": (
            f"Service verify/request ({MP_WORKERS} worker procs vs 1)"),
        "svc_mp_throughput": (
            f"Service mixed load/request ({MP_WORKERS} worker procs vs 1)"),
        "svc_tcp_verify_req": (
            f"Service verify/request ({TCP_WORKERS} TCP workers vs 1)"),
        "svc_tcp_throughput": (
            f"Service mixed load/request ({TCP_WORKERS} TCP workers vs 1)"),
        "svc_pipeline_sign_req": (
            f"Service sign/request (pipeline depth {PIPELINE_DEPTH} "
            f"vs windows)"),
        "svc_pipeline_sign_p50": (
            f"Service sign p50 (pipeline depth {PIPELINE_DEPTH} "
            f"vs windows)"),
        "svc_wal_throughput": "Service sign/request (WAL on vs off)",
        "svc_epoch_pause": "Service sign/request (live refresh vs none)",
        "svc_http_sign_p50": "Service sign p50 (HTTP gateway vs direct)",
        "svc_http_throughput": (
            "Service sign/request (HTTP gateway vs direct)"),
    }
    has_naive = "naive_ms" in snapshot
    columns = ["operation", "ms"]
    if has_naive:
        columns += ["naive ms", "speedup"]
    table = Table(
        "T2: operation costs on BN254, pure Python (ms)", columns)
    for op, label in labels.items():
        if op not in snapshot["fast_ms"]:
            continue
        row = {"operation": label, "ms": snapshot["fast_ms"][op]}
        if has_naive:
            row["naive ms"] = snapshot["naive_ms"][op]
            row["speedup"] = f"{snapshot['speedup'][op]:.2f}x"
        table.add_row(**row)
    return table


def render_pipeline_sweep(snapshot: dict) -> Table:
    """The committed depth-sweep table behind the svc_pipeline_* ops.

    Depth 1 is dispatcher-built windows (wire v1 behavior); every other
    row ships single requests down a pipelined connection at that
    depth.  Loopback numbers are overhead-bound by construction — the
    table exists so a reader can see the trend, and CI uploads it as an
    artifact next to the check log.
    """
    meta = snapshot["meta"]
    table = Table(
        f"Pipelining-depth sweep: sign cost over {meta['tcp_workers']} "
        f"TCP workers, {meta['mp_shards']} shards (loopback)",
        ["depth", "mode", "ms/request", "p50 ms"])
    for depth in meta["pipeline_sweep_depths"]:
        values = snapshot["pipeline_sweep_ms"][str(depth)]
        table.add_row(
            depth=depth,
            mode=("windows (v1)" if depth == 1
                  else "requests, pipelined"),
            **{"ms/request": values["sign_req"],
               "p50 ms": values["sign_p50"]})
    return table


def run_check(snapshot: dict, committed_path: pathlib.Path) -> int:
    """Compare fresh speedups against the committed snapshot.

    Speedups (naive_ms / fast_ms measured in the same process) are the
    hardware-independent quantity, so the check ports across machines;
    raw milliseconds do not.  Fails (returns 1 — every caller must
    propagate this as the process exit code, CI depends on it) when any
    tracked op's fresh speedup drops more than the tolerance below the
    committed one.  The tolerance defaults to ``CHECK_TOLERANCE`` and
    can be widened on noisy shared runners via ``BENCH_TOLERANCE`` (a
    percentage); overhead-bound ops (committed speedup below
    ``OVERHEAD_REFERENCE``) use at least ``OVERHEAD_TOLERANCE`` — their
    near-1.0x ratios carry scheduler noise comparable to the strict
    band, and their gate exists to catch collapse, not jitter.
    """
    tolerance = check_tolerance()
    if not committed_path.exists():
        print(f"check: no committed snapshot at {committed_path}")
        return 1
    committed = json.loads(committed_path.read_text())
    tracked = committed.get("speedup", {})
    if not tracked:
        print("check: committed snapshot has no speedup section")
        return 1
    regressions = []
    worst = None   # (shortfall fraction, op, fresh, floor)
    for op, reference in sorted(tracked.items()):
        fresh = snapshot.get("speedup", {}).get(op)
        if fresh is None:
            regressions.append(f"{op}: missing from fresh run")
            continue
        op_tolerance = (max(tolerance, OVERHEAD_TOLERANCE)
                        if reference < OVERHEAD_REFERENCE else tolerance)
        floor = reference * (1.0 - op_tolerance)
        status = "ok" if fresh >= floor else "REGRESSED"
        print(f"check: {op:20s} committed {reference:6.2f}x  "
              f"fresh {fresh:6.2f}x  floor {floor:6.2f}x  {status}")
        if fresh < floor:
            regressions.append(
                f"{op}: {fresh:.2f}x < floor {floor:.2f}x "
                f"(committed {reference:.2f}x)")
            shortfall = (floor - fresh) / floor if floor > 0 else 1.0
            if worst is None or shortfall > worst[0]:
                worst = (shortfall, op, fresh, floor)
    if regressions:
        print("\ncheck FAILED:")
        for line in regressions:
            print(f"  - {line}")
        if worst is not None:
            print(f"worst regressing op: {worst[1]} "
                  f"({worst[2]:.2f}x, {worst[0]:.0%} below its "
                  f"{worst[3]:.2f}x floor)")
        return 1
    print("\ncheck passed: no tracked op regressed "
          f">{tolerance:.0%} vs {committed_path.name}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rounds", type=int, default=3,
                        help="timing rounds per operation (best-of)")
    parser.add_argument("--skip-naive", action="store_true",
                        help="skip the seed-equivalent baseline timings")
    parser.add_argument("--check", action="store_true",
                        help="compare against the committed snapshot and "
                        "exit 1 on any speedup regression beyond the "
                        "tolerance (default 15%%, override with the "
                        "BENCH_TOLERANCE env var; does not overwrite the "
                        "snapshot)")
    parser.add_argument("--output", type=pathlib.Path,
                        default=REPO_ROOT / "BENCH_t2_ops.json")
    parser.add_argument("--table", type=pathlib.Path,
                        default=REPO_ROOT / "benchmarks" / "results"
                        / "t2_ops.txt")
    parser.add_argument("--sweep-table", type=pathlib.Path,
                        default=REPO_ROOT / "benchmarks" / "results"
                        / "pipeline_sweep.txt")
    args = parser.parse_args(argv)
    if args.rounds < 1:
        parser.error("--rounds must be at least 1")
    if args.check and args.skip_naive:
        parser.error("--check needs the naive baselines (drop --skip-naive)")

    snapshot = run_snapshot(args.rounds, include_naive=not args.skip_naive)
    table = render_table(snapshot)
    print(table.render())
    if args.check:
        print()
        return run_check(snapshot, args.output)
    args.output.write_text(json.dumps(snapshot, indent=2) + "\n")
    args.table.parent.mkdir(parents=True, exist_ok=True)
    args.table.write_text(table.render() + "\n")
    sweep_table = render_pipeline_sweep(snapshot)
    args.sweep_table.parent.mkdir(parents=True, exist_ok=True)
    args.sweep_table.write_text(sweep_table.render() + "\n")
    print(f"\nwrote {args.output}, {args.table} and {args.sweep_table}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
