#!/usr/bin/env python
"""CI smoke test for the async signing service.

Boots the service in-process, pushes requests through the load generator
(half closed-loop signs, half open-loop verifies, one fault-injected
window) and asserts the service contract:

* **zero rejected-valid requests** — the queues are provisioned for the
  offered load, so nothing is shed and nothing fails;
* every signature produced is valid under the public key;
* verify traffic returns the right verdicts (including for the one
  deliberately forged signature);
* the forged-partial window is localized and still completes;
* the process-parallel worker tier (``workers=N``) serves the same
  contract over the wire format: signatures produced in worker
  processes verify in the parent, nothing is rejected or failed;
* the TCP transport tier (``remote_workers=[...]``) serves the same
  contract over loopback sockets: a window routed through a standalone
  remote worker process completes every request, and killing that
  worker mid-window (it ``os._exit``\\ s on its first partial, then a
  supervisor-style respawn brings a replacement up on the same port)
  still completes every request via reconnect + resubmission;
* the durability layer survives a SIGKILL of the *service process
  itself*: a victim subprocess signs one batch cleanly, admits a second
  batch into a window that will not close, forces the admits durable,
  and is SIGKILLed mid-window; a fresh service started against the same
  write-ahead log (with a simulated torn tail appended) must replay
  every unacknowledged request, and the final log must show every admit
  settled **exactly once** with a signature that verifies under the
  unchanged public key.  The WAL lives at ``.smoke-wal/`` in the repo
  root so CI can upload it as an artifact when this act fails; a clean
  run removes it;
* the key lifecycle is live: under open-loop load the service refreshes
  its shares, reshares one signer out and a new one in, and grows the
  shard ring 4 -> 6 with queued requests migrated — every admitted
  request completes with a verifying signature, the public key bytes
  never change, and nothing is rejected because of a transition (the
  transition log lands in ``.smoke-wal/epoch/`` for CI artifacts); a
  second victim subprocess is SIGKILLed *mid-transition* (durable
  admits from both the old and new epoch): a restart holding the
  pre-transition shares must be refused (the WAL proves a newer epoch
  was admitting), and a restart with the persisted post-transition
  context must settle every admit exactly once;
* the HTTP front door serves the same contract over the wire: two
  tenants with different quotas drive the gateway while an admin key
  reshares the committee mid-load — over-quota requests are answered
  ``429`` at the edge (they never cost a queue slot), the Prometheus
  ``GET /metrics`` exposition parses line-by-line and reconciles
  exactly with ``snapshot_stats()`` and the tenant registry, and
  SIGKILLing the gateway's host process with admitted-but-unanswered
  HTTP requests durable in the WAL leaves a log a restart settles
  **exactly once** with verifying signatures (artifacts in
  ``.smoke-wal/http/``);
* the wire-v2 pipelined tier serves the same contract: with
  ``pipeline_depth=4`` the shards ship individual requests over
  loopback TCP (the remote workers accumulate their own windows) and a
  worker killed with a full pipeline in flight (``os._exit`` on its
  first partial) forces every in-flight request id to be resubmitted to
  the surviving worker — each request settles **exactly once** with a
  verifying signature for its own message, and the pool's high-water
  in-flight mark proves the pipelining actually engaged.

Exit-code contract (CI depends on it): **every** failure path exits
nonzero — contract violations return 1 with a reason per line, and any
unexpected exception propagates (Python exits 1).  Only a fully clean
run exits 0.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--backend bn254]
        [--requests 100] [--shards 2] [--workers 2]
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import random
import select
import shutil
import subprocess
import sys
import tempfile
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ServiceHandle, get_group                 # noqa: E402
from repro.serialization import (                          # noqa: E402
    WalAdmitRecord, WireCodec, decode_service_context,
    encode_service_context,
)
from repro.service import (                                # noqa: E402
    CorruptSignerFault, GatewayClient, HttpGateway, LoadGenerator,
    ServiceConfig, ServiceError, SigningService, TenantConfig,
    TenantQuotaError,
)
from repro.service.transport import (                      # noqa: E402
    parse_address, start_worker_process,
)
from repro.service.wal import scan_records                 # noqa: E402

#: Session seed set by ``--seed`` (same semantics as the pytest flag in
#: the root ``conftest.py``): ``0`` keeps the historical per-act streams
#: so the default run is exactly the run CI has always gated.
_SEED_BASE = 0


def _rng(stream: int) -> random.Random:
    """Randomness for one act, derived from the session seed."""
    return random.Random(stream if _SEED_BASE == 0
                         else (_SEED_BASE << 16) + stream)


#: Act 6 batch sizes: requests settled before the kill / left durable
#: but unprocessed when the SIGKILL lands.
WAL_PHASE1 = 4
WAL_PENDING = 6
#: Act 7 batch sizes: durable admits carried across the SIGKILLed
#: epoch transition — stamped with the old epoch / the new one.
EPOCH_PHASE0 = 3
EPOCH_PHASE1 = 3
#: Act 8 batch size: HTTP requests admitted (durable in the WAL) but
#: unanswered when the gateway's host process is SIGKILLed.
HTTP_PENDING = 5


async def run_wal_victim(wal_dir: pathlib.Path, backend: str) -> int:
    """Act 6's SIGKILL victim (spawned by ``--wal-victim``).

    Phase 1 signs a batch cleanly (admits *and* settlements reach the
    log).  Phase 2 admits a second batch into a window that will not
    close for a minute, forces the admits durable, prints the marker
    the parent waits for, and parks until the SIGKILL arrives — the
    admitted-but-unserved state a real service crash leaves behind.
    """
    handle = decode_service_context((wal_dir / "ctx.bin").read_bytes())
    wal_path = wal_dir / "service.wal"
    config = ServiceConfig(num_shards=1, max_batch=4, max_wait_ms=10.0,
                           wal_path=wal_path)
    async with SigningService(handle, config) as service:
        await asyncio.gather(*(service.sign(b"wal done %d" % i)
                               for i in range(WAL_PHASE1)))
    print(f"wal-victim phase1 {WAL_PHASE1}", flush=True)

    stalled = ServiceConfig(num_shards=1, max_batch=64,
                            max_wait_ms=60_000.0, wal_path=wal_path)
    service = SigningService(handle, stalled)
    await service.start()
    obligations = [asyncio.ensure_future(
        service.sign(b"wal pending %d" % i)) for i in range(WAL_PENDING)]
    while service.wal.stats.admits < WAL_PENDING:
        await asyncio.sleep(0.01)
    service.wal.sync()
    print(f"wal-victim durable {WAL_PENDING}", flush=True)
    await asyncio.sleep(300.0)      # the parent SIGKILLs us here
    for obligation in obligations:
        obligation.cancel()
    return 1                        # unreachable in a passing run


async def run_epoch_victim(epoch_dir: pathlib.Path, backend: str) -> int:
    """Act 7's SIGKILL victim (spawned by ``--epoch-victim``).

    Admits a batch into a window that will not close, performs a *live*
    share refresh while those admits are in flight, persists the
    post-transition context (the artifact a real deployment would hand
    the restarted service), admits a second batch under the new epoch,
    forces everything durable and parks for the SIGKILL — leaving a WAL
    whose obligations straddle the transition.
    """
    handle = decode_service_context((epoch_dir / "ctx.bin").read_bytes())
    wal_path = epoch_dir / "service.wal"
    stalled = ServiceConfig(num_shards=1, max_batch=64,
                            max_wait_ms=60_000.0, wal_path=wal_path)
    service = SigningService(handle, stalled)
    await service.start()
    obligations = [asyncio.ensure_future(
        service.sign(b"epoch pending 0/%d" % i))
        for i in range(EPOCH_PHASE0)]
    while service.wal.stats.admits < EPOCH_PHASE0:
        await asyncio.sleep(0.01)
    await service.refresh(rng=_rng(12))
    (epoch_dir / "ctx-epoch1.bin").write_bytes(
        encode_service_context(service.handle))
    obligations += [asyncio.ensure_future(
        service.sign(b"epoch pending 1/%d" % i))
        for i in range(EPOCH_PHASE1)]
    while service.wal.stats.admits < EPOCH_PHASE0 + EPOCH_PHASE1:
        await asyncio.sleep(0.01)
    service.wal.sync()
    print(f"epoch-victim durable {EPOCH_PHASE0 + EPOCH_PHASE1}",
          flush=True)
    await asyncio.sleep(300.0)      # the parent SIGKILLs us here
    for obligation in obligations:
        obligation.cancel()
    return 1                        # unreachable in a passing run


async def run_http_victim(http_dir: pathlib.Path, backend: str) -> int:
    """Act 8's SIGKILL victim (spawned by ``--http-victim``).

    Boots the service on a stalled window (it will not close for a
    minute) behind an HTTP gateway on an ephemeral port, prints the
    port for the parent, waits until the parent's HTTP sign requests
    are durable in the WAL, prints the durable marker and parks for
    the SIGKILL — a real front-door crash with admitted-but-unanswered
    HTTP requests."""
    handle = decode_service_context((http_dir / "ctx.bin").read_bytes())
    stalled = ServiceConfig(num_shards=1, max_batch=64,
                            max_wait_ms=60_000.0,
                            wal_path=http_dir / "service.wal")
    service = SigningService(handle, stalled)
    await service.start()
    gateway = HttpGateway(service, tenants=[
        TenantConfig(name="alpha", api_key="alpha-key")])
    await gateway.start()
    print(f"http-victim port {gateway.port}", flush=True)
    while service.wal.stats.admits < HTTP_PENDING:
        await asyncio.sleep(0.01)
    service.wal.sync()
    print(f"http-victim durable {HTTP_PENDING}", flush=True)
    await asyncio.sleep(300.0)      # the parent SIGKILLs us here
    return 1                        # unreachable in a passing run


def await_marker(process: subprocess.Popen, marker: str,
                 timeout_s: float = 120.0):
    """Block until the victim prints a line starting with ``marker``;
    returns the line, or None on exit/timeout (the caller fails the
    act — a victim that dies early is itself a contract violation)."""
    deadline = time.monotonic() + timeout_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        if process.poll() is not None:
            return None
        readable, _, _ = select.select([process.stdout], [], [],
                                       min(remaining, 0.25))
        if readable:
            line = process.stdout.readline()
            if not line:
                return None
            if line.startswith(marker):
                return line.strip()


def parse_prometheus_text(text: str, check) -> dict:
    """Line-by-line Prometheus text-format gate for ``GET /metrics``.

    Validates the exposition structure (every sample preceded by its
    family's HELP and TYPE lines, known types, no duplicates, parseable
    values, trailing newline) and returns ``{sample-name-with-labels:
    value}`` for the counter reconciliation checks."""
    samples = {}
    current = None
    seen = set()
    check(text.endswith("\n"), "metrics: missing trailing newline")
    for line in text.splitlines():
        check(bool(line), "metrics: blank line in exposition")
        if line.startswith("# HELP "):
            name = line.split(" ", 3)[2]
            check(name not in seen, f"metrics: duplicate family {name}")
            seen.add(name)
            current = name
        elif line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            check(parts[2] == current,
                  f"metrics: TYPE for {parts[2]} does not follow its HELP")
            check(parts[3] in ("counter", "gauge", "histogram"),
                  f"metrics: unknown type {parts[3]!r}")
        else:
            name_part, _, value_part = line.rpartition(" ")
            base = name_part.split("{", 1)[0]
            stripped = base
            for suffix in ("_bucket", "_sum", "_count"):
                if base.endswith(suffix):
                    stripped = base[:-len(suffix)]
            check(current in (base, stripped),
                  f"metrics: sample {base} outside its family block")
            try:
                float(value_part.replace("+Inf", "inf"))
            except ValueError:
                check(False, f"metrics: unparseable sample {line!r}")
                continue
            check(name_part not in samples,
                  f"metrics: duplicate sample {name_part}")
            samples[name_part] = float(value_part.replace("+Inf", "inf"))
    return samples


async def run_smoke(backend: str, requests: int, shards: int,
                    workers: int) -> int:
    group = get_group(backend)
    handle = ServiceHandle.dealer(group, 2, 5, rng=_rng(1))
    failures = []

    def check(condition: bool, reason: str) -> None:
        if not condition:
            failures.append(reason)

    # -- act 1: closed-loop signing, amply provisioned queues -----------
    config = ServiceConfig(num_shards=shards, max_batch=16,
                           max_wait_ms=10.0, queue_depth=4 * requests,
                           rng=_rng(2))
    signed = {}
    async with SigningService(handle, config) as service:

        async def sign(ordinal):
            result = await service.sign(b"smoke doc %d" % ordinal)
            signed[ordinal] = result
            return result

        report = await LoadGenerator(sign).run_closed(requests, 16)
        check(report.rejected == 0,
              f"{report.rejected} valid sign requests rejected")
        check(report.failed == 0,
              f"{report.failed} sign requests failed")
        check(report.completed == requests,
              f"only {report.completed}/{requests} signs completed")
        for ordinal, result in signed.items():
            check(handle.verify(result.message, result.signature),
                  f"service returned an invalid signature for #{ordinal}")

        # -- act 2: open-loop verification with one forgery ------------
        forged_at = requests // 2
        if forged_at not in signed:
            # Act 1 already recorded the failure above; bail out rather
            # than crash on the missing signature (the exit code would
            # still be nonzero either way — this keeps the reason list
            # readable).
            print("serve-smoke FAILED:")
            for reason in failures:
                print(f"  - {reason}")
            return 1
        good = signed[forged_at].signature
        forged = type(good)(z=good.z * good.z, r=good.r)

        def verify(ordinal):
            result = signed[ordinal]
            signature = forged if ordinal == forged_at else result.signature
            return service.verify(result.message, signature)

        verify_report = await LoadGenerator(
            verify, rng=_rng(3)).run_open(requests, 2000.0)
        check(verify_report.rejected == 0,
              f"{verify_report.rejected} valid verify requests rejected")
        check(verify_report.completed == requests,
              f"only {verify_report.completed}/{requests} verifies "
              f"completed")
        check(verify_report.invalid == 1,
              f"expected exactly 1 invalid verdict, got "
              f"{verify_report.invalid}")
    stats = service.snapshot_stats()
    check(stats.rejected == 0, "service counted rejections")
    windows = sum(s.windows for s in stats.shards.values())
    check(windows < stats.accepted,
          "no batching happened (windows == requests)")

    # -- act 3: a forged partial inside a full window ------------------
    fault = CorruptSignerFault(signer_index=1, shard_id=0)
    faulty = ServiceConfig(num_shards=1, max_batch=8, max_wait_ms=10.0,
                           queue_depth=64, fault_injector=fault,
                           rng=_rng(4))
    async with SigningService(handle, faulty) as service:
        report = await LoadGenerator(
            lambda i: service.sign(b"contested doc %d" % i)
        ).run_closed(8, 8)
        check(report.completed == 8 and report.failed == 0,
              "fault-injected window dropped requests")
    faulty_stats = service.snapshot_stats()
    shard = faulty_stats.shards[0]
    check(len(fault.injected) > 0, "fault injector never fired")
    check(shard.faults_localized > 0, "forged partials not localized")

    # -- act 4: the process-parallel worker tier -----------------------
    mp_requests = min(requests, 16)
    mp_config = ServiceConfig(num_shards=max(2, shards), max_batch=8,
                              max_wait_ms=10.0, queue_depth=4 * requests,
                              workers=workers)
    async with SigningService(handle, mp_config) as service:
        mp_signed = {}

        async def mp_sign(ordinal):
            result = await service.sign(b"mp doc %d" % ordinal)
            mp_signed[ordinal] = result
            return result

        mp_report = await LoadGenerator(mp_sign).run_closed(
            mp_requests, 8)
        check(mp_report.rejected == 0 and mp_report.failed == 0,
              f"worker tier shed/failed requests "
              f"({mp_report.rejected} rejected, {mp_report.failed} failed)")
        for ordinal, result in mp_signed.items():
            check(handle.verify(result.message, result.signature),
                  f"worker tier produced an invalid signature for "
                  f"#{ordinal}")
        mp_verify = await LoadGenerator(
            lambda i: service.verify(mp_signed[i].message,
                                     mp_signed[i].signature)
        ).run_closed(mp_requests, 8)
        check(mp_verify.completed == mp_requests
              and mp_verify.invalid == 0,
              "worker tier returned wrong verify verdicts")
    mp_stats = service.snapshot_stats()
    check(mp_stats.workers is not None and mp_stats.workers.jobs > 0,
          "worker tier dispatched no jobs")
    check(mp_stats.workers is not None and mp_stats.workers.crashes == 0,
          "worker processes crashed during the smoke run")

    # -- act 5: the TCP transport tier (loopback remote workers) -------
    loop = asyncio.get_running_loop()
    tcp_requests = min(requests, 8)
    with tempfile.TemporaryDirectory() as tcp_dir:
        context_path = pathlib.Path(tcp_dir) / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))

        # 5a: a clean window routed through one remote worker process.
        process, address = await loop.run_in_executor(
            None, lambda: start_worker_process(context_path))
        tcp_config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=10.0,
                                   queue_depth=4 * requests,
                                   remote_workers=[address])
        try:
            async with SigningService(handle, tcp_config) as service:
                tcp_signed = {}

                async def tcp_sign(ordinal):
                    result = await service.sign(b"tcp doc %d" % ordinal)
                    tcp_signed[ordinal] = result
                    return result

                tcp_report = await LoadGenerator(tcp_sign).run_closed(
                    tcp_requests, 8)
                check(tcp_report.rejected == 0 and tcp_report.failed == 0,
                      f"TCP tier shed/failed requests "
                      f"({tcp_report.rejected} rejected, "
                      f"{tcp_report.failed} failed)")
                for ordinal, result in tcp_signed.items():
                    check(handle.verify(result.message, result.signature),
                          f"TCP tier produced an invalid signature for "
                          f"#{ordinal}")
                tcp_verify = await LoadGenerator(
                    lambda i: service.verify(tcp_signed[i].message,
                                             tcp_signed[i].signature)
                ).run_closed(tcp_requests, 8)
                check(tcp_verify.completed == tcp_requests
                      and tcp_verify.invalid == 0,
                      "TCP tier returned wrong verify verdicts")
        finally:
            process.terminate()
            process.wait(timeout=10)
        tcp_stats = service.snapshot_stats()
        check(tcp_stats.workers is not None
              and tcp_stats.workers.jobs > 0,
              "TCP tier dispatched no jobs")
        check(tcp_stats.workers is not None
              and tcp_stats.workers.crashes == 0,
              "TCP tier dropped connections during the clean act")

        # 5b: kill the worker mid-window; a supervisor-style respawn
        # brings a replacement up on the same port, and reconnect +
        # resubmission must complete every request.  The worker
        # os._exits on the first partial it signs while the sentinel
        # file does not exist (the WorkerCrashFault pattern).
        sentinel = pathlib.Path(tcp_dir) / "crashed.sentinel"
        process, address = await loop.run_in_executor(
            None, lambda: start_worker_process(
                context_path, crash_sentinel=sentinel))
        port = parse_address(address)[1]
        replacements = []

        async def respawn_when_dead():
            while process.poll() is None:
                await asyncio.sleep(0.05)
            replacement, _ = await loop.run_in_executor(
                None, lambda: start_worker_process(
                    context_path, port=port, crash_sentinel=sentinel))
            replacements.append(replacement)

        crash_config = ServiceConfig(num_shards=1, max_batch=8,
                                     max_wait_ms=10.0,
                                     queue_depth=4 * requests,
                                     remote_workers=[address])
        try:
            async with SigningService(handle, crash_config) as service:
                watcher = asyncio.ensure_future(respawn_when_dead())
                crash_report = await LoadGenerator(
                    lambda i: service.sign(b"tcp crash doc %d" % i)
                ).run_closed(tcp_requests, tcp_requests)
                await watcher
                check(crash_report.rejected == 0
                      and crash_report.failed == 0
                      and crash_report.completed == tcp_requests,
                      f"TCP crash act dropped requests "
                      f"({crash_report.completed}/{tcp_requests} "
                      f"completed, {crash_report.failed} failed)")
        finally:
            # terminate() is a no-op on the already-crashed worker but
            # keeps an act-5b failure *before* the crash from hanging
            # in wait() and masking the real error.
            process.terminate()
            process.wait(timeout=10)
            for replacement in replacements:
                replacement.terminate()
                replacement.wait(timeout=10)
        crash_stats = service.snapshot_stats()
        check(sentinel.exists(), "TCP crash act: worker never crashed")
        check(crash_stats.workers is not None
              and crash_stats.workers.crashes >= 1,
              "TCP crash act: dropped connection not detected")
        check(crash_stats.workers is not None
              and crash_stats.workers.resubmissions >= 1,
              "TCP crash act: no job was resubmitted")
        check(crash_stats.workers is not None
              and crash_stats.workers.reconnects >= 1,
              "TCP crash act: the respawned worker was never reconnected")

    # -- act 6: SIGKILL the service mid-window; recover from the WAL ---
    # Fixed repo-root location (not a tempdir) so CI can upload the log
    # as an artifact when this act fails; removed on a clean run.
    wal_dir = REPO_ROOT / ".smoke-wal"
    if wal_dir.exists():
        shutil.rmtree(wal_dir)
    wal_dir.mkdir()
    (wal_dir / "ctx.bin").write_bytes(encode_service_context(handle))
    wal_path = wal_dir / "service.wal"
    victim = subprocess.Popen(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--wal-victim", str(wal_dir), "--backend", backend],
        stdout=subprocess.PIPE, text=True)
    try:
        phase1_line = await loop.run_in_executor(
            None, lambda: await_marker(victim, "wal-victim phase1"))
        durable_line = await loop.run_in_executor(
            None, lambda: await_marker(victim, "wal-victim durable"))
        check(phase1_line is not None and durable_line is not None,
              "WAL act: the victim service never reached its durable "
              "marker")
    finally:
        victim.kill()       # SIGKILL: no atexit, no flush, no close
        victim.wait(timeout=10)
    phase1_count = int(phase1_line.split()[-1]) if phase1_line else 0
    pending_count = int(durable_line.split()[-1]) if durable_line else 0
    # A SIGKILL mid-append leaves a torn record; simulate the worst
    # case on top of whatever the kill itself left behind.
    with open(wal_path, "ab") as log:
        log.write(b"\x00\x00\x01\x00torn mid-append by SIGKILL")
    recovery_config = ServiceConfig(num_shards=shards, max_batch=8,
                                    max_wait_ms=10.0, wal_path=wal_path)
    async with SigningService(handle, recovery_config) as service:
        wal_recovered = service.stats.recovered
        wal_torn = service.wal.stats.torn_bytes
    check(wal_torn > 0, "WAL act: the torn tail was not detected")
    check(wal_recovered == pending_count,
          f"WAL act: replayed {wal_recovered} of {pending_count} "
          "unacknowledged requests")
    check(service.stats.completed == pending_count,
          f"WAL act: only {service.stats.completed}/{pending_count} "
          "replayed requests completed")
    # Audit the log itself: every admit settled exactly once, every
    # settlement a signature verifying under the unchanged public key.
    records, _, torn_after = scan_records(wal_path, WireCodec(group))
    wal_admits, wal_dones = {}, {}
    for record in records:
        if isinstance(record, WalAdmitRecord):
            check(record.request_id not in wal_admits,
                  f"WAL act: duplicate admit id {record.request_id}")
            wal_admits[record.request_id] = record.message
        else:
            wal_dones.setdefault(record.request_id, []).append(record)
    check(torn_after == 0, "WAL act: the torn tail survived recovery")
    check(len(wal_admits) == phase1_count + pending_count,
          f"WAL act: expected {phase1_count + pending_count} admits in "
          f"the log, found {len(wal_admits)}")
    for request_id, message in wal_admits.items():
        settlements = wal_dones.get(request_id, [])
        check(len(settlements) == 1,
              f"WAL act: request {request_id} settled "
              f"{len(settlements)} times (exactly-once violated)")
        if len(settlements) == 1:
            done = settlements[0]
            check(done.signature is not None
                  and handle.verify(message, done.signature),
                  f"WAL act: request {request_id} has no verifying "
                  "signature under the unchanged public key")
    # A second restart against the settled log must replay nothing.
    async with SigningService(handle, recovery_config) as service:
        check(service.stats.recovered == 0,
              "WAL act: a second restart replayed settled requests")

    # -- act 7: live key lifecycle under churn -------------------------
    # 7a: refresh + reshare + ring growth while open-loop load flows.
    epoch_dir = wal_dir / "epoch"
    epoch_dir.mkdir()
    pk_before = handle.public_key.to_bytes()
    lifecycle_lines = []
    lc_requests = min(requests, 48)
    lc_config = ServiceConfig(num_shards=4, max_batch=8,
                              max_wait_ms=10.0, queue_depth=4 * requests,
                              wal_path=epoch_dir / "service.wal",
                              rng=_rng(7))
    async with SigningService(handle, lc_config) as service:
        lc_signed = {}

        async def lc_sign(ordinal):
            result = await service.sign(b"lifecycle doc %d" % ordinal)
            lc_signed[ordinal] = result
            return result

        load = asyncio.ensure_future(LoadGenerator(
            lc_sign, rng=_rng(8)).run_open(lc_requests, 400.0))
        pause = await service.refresh(rng=_rng(9))
        lifecycle_lines.append(
            f"refresh  -> epoch {service.handle.epoch} "
            f"(pause {pause:.3f}ms)")
        pause = await service.reshare(2, (2, 3, 4, 5, 6),
                                      rng=_rng(10))
        lifecycle_lines.append(
            f"reshare  -> epoch {service.handle.epoch} committee "
            f"{sorted(service.handle.shares)} (pause {pause:.3f}ms)")
        # A burst admitted one loop turn before the resize is still
        # queued when the barrier drains the ring — the migration path.
        burst = [asyncio.ensure_future(
            service.sign(b"lifecycle burst %d" % i)) for i in range(24)]
        await asyncio.sleep(0)
        migrated = await service.resize(6)
        lifecycle_lines.append(
            f"resize   -> 6 shards ({migrated} queued requests migrated)")
        lc_report = await load
        burst_results = await asyncio.gather(*burst)
        lc_stats = service.snapshot_stats()
    pk_after = service.handle.public_key.to_bytes()
    check(pk_after == pk_before,
          "epoch act: the public key changed across the lifecycle")
    check(lc_report.rejected == 0 and lc_report.failed == 0
          and lc_report.completed == lc_requests,
          f"epoch act: load shed under churn "
          f"({lc_report.completed}/{lc_requests} completed, "
          f"{lc_report.rejected} rejected, {lc_report.failed} failed)")
    for ordinal, result in lc_signed.items():
        check(handle.verify(result.message, result.signature),
              f"epoch act: invalid signature for lifecycle doc "
              f"#{ordinal}")
    for i, result in enumerate(burst_results):
        check(handle.verify(b"lifecycle burst %d" % i, result.signature),
              f"epoch act: invalid signature for migrated burst #{i}")
    check(lc_stats.epochs.transitions == 2
          and lc_stats.epochs.resizes == 1,
          f"epoch act: expected 2 transitions + 1 resize, counted "
          f"{lc_stats.epochs.transitions}/{lc_stats.epochs.resizes}")
    check(migrated > 0,
          "epoch act: the resize migrated no queued requests")
    lifecycle_lines.append(
        f"summary  -> pause p99 {lc_stats.epochs.pause_p99_ms:.3f}ms, "
        f"{lc_stats.epochs.requests_carried} requests carried")

    # 7b: SIGKILL mid-transition; only the new epoch may resume the WAL.
    victim_dir = epoch_dir / "victim"
    victim_dir.mkdir()
    (victim_dir / "ctx.bin").write_bytes(encode_service_context(handle))
    epoch_victim = subprocess.Popen(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--epoch-victim", str(victim_dir), "--backend", backend],
        stdout=subprocess.PIPE, text=True)
    try:
        ev_line = await loop.run_in_executor(
            None, lambda: await_marker(epoch_victim,
                                       "epoch-victim durable"))
        check(ev_line is not None,
              "epoch act: the victim never reached its durable marker")
    finally:
        epoch_victim.kill()
        epoch_victim.wait(timeout=10)
    ev_pending = int(ev_line.split()[-1]) if ev_line else 0
    ev_wal = victim_dir / "service.wal"
    restart_config = ServiceConfig(num_shards=2, max_batch=8,
                                   max_wait_ms=10.0, wal_path=ev_wal)
    stale_service = SigningService(handle, restart_config)
    stale_refused = False
    try:
        await stale_service.start()
        await stale_service.stop()
    except ServiceError:
        stale_refused = True
    check(stale_refused,
          "epoch act: a restart holding pre-transition shares was not "
          "refused")
    lifecycle_lines.append("restart  -> stale epoch-0 shares refused")
    new_context = victim_dir / "ctx-epoch1.bin"
    check(new_context.exists(),
          "epoch act: the victim never persisted its new context")
    if new_context.exists():
        new_handle = decode_service_context(new_context.read_bytes())
        check(new_handle.epoch == 1
              and new_handle.public_key.to_bytes() == pk_before,
              "epoch act: the persisted context is not epoch 1 under "
              "the same public key")
        async with SigningService(new_handle, restart_config) as service:
            ev_recovered = service.stats.recovered
        check(ev_recovered == ev_pending,
              f"epoch act: replayed {ev_recovered} of {ev_pending} "
              "admits carried across the killed transition")
        check(service.stats.completed == ev_pending,
              f"epoch act: only {service.stats.completed}/{ev_pending} "
              "carried admits completed")
        ev_records, _, _ = scan_records(ev_wal, WireCodec(group))
        ev_admits, ev_dones = {}, {}
        for record in ev_records:
            if isinstance(record, WalAdmitRecord):
                ev_admits[record.request_id] = record.message
            else:
                ev_dones.setdefault(record.request_id, []).append(record)
        check(len(ev_admits) == ev_pending,
              f"epoch act: expected {ev_pending} admits in the victim "
              f"log, found {len(ev_admits)}")
        for request_id, message in ev_admits.items():
            settlements = ev_dones.get(request_id, [])
            check(len(settlements) == 1,
                  f"epoch act: request {request_id} settled "
                  f"{len(settlements)} times (exactly-once violated)")
            if len(settlements) == 1 and settlements[0].signature \
                    is not None:
                check(handle.verify(message, settlements[0].signature),
                      f"epoch act: request {request_id} settled without "
                      "a verifying signature")
            else:
                check(False,
                      f"epoch act: request {request_id} settled without "
                      "a signature")
        lifecycle_lines.append(
            f"restart  -> epoch-1 context settled all {ev_pending} "
            f"carried admits exactly once")
    (epoch_dir / "epoch.log").write_text(
        "\n".join(lifecycle_lines) + "\n")

    # -- act 8: the HTTP front door ------------------------------------
    # 8a: two tenants with different quotas drive the gateway; an
    # admin-triggered reshare lands mid-load; the Prometheus exposition
    # must parse line-by-line and reconcile exactly with
    # snapshot_stats() and the tenant registry.
    http_dir = wal_dir / "http"
    http_dir.mkdir()
    http_requests = min(requests, 32)
    http_config = ServiceConfig(num_shards=2, max_batch=8,
                                max_wait_ms=10.0,
                                queue_depth=4 * requests,
                                wal_path=http_dir / "service.wal",
                                rng=_rng(13))
    http_service = SigningService(handle, http_config)
    await http_service.start()
    http_gateway = HttpGateway(http_service, tenants=[
        TenantConfig(name="alpha", api_key="alpha-key", admin=True),
        TenantConfig(name="beta", api_key="beta-key",
                     rate_rps=0.1, burst=2.0),
    ])
    await http_gateway.start()
    codec = WireCodec(group)
    alpha = GatewayClient(http_gateway.host, http_gateway.port,
                          "alpha-key", codec=codec)
    beta = GatewayClient(http_gateway.host, http_gateway.port,
                         "beta-key", codec=codec)
    http_signed = {}

    async def http_sign(ordinal):
        result = await alpha.sign(b"http doc %d" % ordinal)
        http_signed[ordinal] = result
        return result

    http_load = asyncio.ensure_future(
        LoadGenerator(http_sign).run_closed(http_requests, 8))
    await asyncio.sleep(0.01)
    reshared = await alpha.admin_reshare(2, [2, 3, 4, 5, 6])
    http_report = await http_load
    check(http_report.rejected == 0 and http_report.failed == 0
          and http_report.completed == http_requests,
          f"HTTP act: alpha load shed "
          f"({http_report.completed}/{http_requests} completed, "
          f"{http_report.rejected} rejected, {http_report.failed} "
          f"failed)")
    for ordinal, result in http_signed.items():
        check(handle.verify(result.message, result.signature),
              f"HTTP act: invalid signature for http doc #{ordinal}")
    check(reshared["epoch"] == 1
          and http_service.handle.public_key.to_bytes() == pk_before,
          "HTTP act: the over-the-wire reshare did not advance the "
          "epoch under the same public key")
    # beta: burst of 2 admitted, then deterministic 429s (the refill
    # rate of 0.1 rps cannot return a token within this act).
    beta_ok, beta_429 = 0, 0
    for i in range(6):
        try:
            await beta.sign(b"beta doc %d" % i)
            beta_ok += 1
        except TenantQuotaError:
            beta_429 += 1
    check(beta_ok == 2 and beta_429 == 4,
          f"HTTP act: beta quota expected 2 admitted + 4 over-quota, "
          f"got {beta_ok} + {beta_429}")
    metrics_text = await alpha.metrics()
    metrics = parse_prometheus_text(metrics_text, check)
    http_stats = http_service.snapshot_stats()
    tenant_states = http_gateway.tenants.states()
    reconcile = [
        ("ljy_service_accepted_total", http_stats.accepted),
        ("ljy_service_completed_total", http_stats.completed),
        ("ljy_service_rejected_total", http_stats.rejected),
        ("ljy_service_failed_total", http_stats.failed),
        ("ljy_epoch", http_stats.epochs.epoch),
        ('ljy_epoch_transitions_total{kind="reshare"}',
         http_stats.epochs.reshares),
        ('ljy_tenant_admitted_total{tenant="alpha"}',
         tenant_states["alpha"].stats.admitted),
        ('ljy_tenant_completed_total{tenant="alpha"}',
         tenant_states["alpha"].stats.completed),
        ('ljy_tenant_admitted_total{tenant="beta"}',
         tenant_states["beta"].stats.admitted),
        ('ljy_tenant_rejected_total{tenant="beta",reason="rate"}',
         tenant_states["beta"].stats.rejected_quota),
        ('ljy_service_tenant_accepted_total{tenant="alpha"}',
         http_stats.tenant_accepted.get("alpha", 0)),
        ('ljy_service_tenant_accepted_total{tenant="beta"}',
         http_stats.tenant_accepted.get("beta", 0)),
    ]
    for sample_name, expected in reconcile:
        check(metrics.get(sample_name) == float(expected),
              f"HTTP act: metrics sample {sample_name} = "
              f"{metrics.get(sample_name)} but stats say {expected}")
    per_shard_requests = sum(
        value for name, value in metrics.items()
        if name.startswith("ljy_shard_requests_total{"))
    check(per_shard_requests == sum(
        s.requests for s in http_stats.shards.values()),
          "HTTP act: per-shard request counters do not sum to the "
          "shard stats")
    check(tenant_states["beta"].stats.rejected_quota == 4
          and http_stats.tenant_accepted.get("beta", 0) == 2,
          "HTTP act: beta's 429s leaked past the edge into the service")
    await alpha.close()
    await beta.close()
    await http_gateway.stop()
    await http_service.stop()
    # Exactly-once audit of the HTTP WAL: every admitted sign settled
    # once (beta's shed requests never became obligations).
    http_records, _, _ = scan_records(http_dir / "service.wal",
                                      WireCodec(group))
    http_admits, http_dones = {}, {}
    for record in http_records:
        if isinstance(record, WalAdmitRecord):
            http_admits[record.request_id] = record.message
        else:
            http_dones.setdefault(record.request_id, []).append(record)
    check(len(http_admits) == http_requests + beta_ok,
          f"HTTP act: expected {http_requests + beta_ok} admits in the "
          f"WAL, found {len(http_admits)}")
    for request_id in http_admits:
        check(len(http_dones.get(request_id, [])) == 1,
              f"HTTP act: request {request_id} settled "
              f"{len(http_dones.get(request_id, []))} times")

    # 8b: SIGKILL the gateway's host process with admitted-but-
    # unanswered HTTP requests; a restart against the same WAL must
    # settle every admitted request exactly once.
    hv_dir = http_dir / "victim"
    hv_dir.mkdir()
    (hv_dir / "ctx.bin").write_bytes(encode_service_context(handle))
    http_victim = subprocess.Popen(
        [sys.executable, str(pathlib.Path(__file__).resolve()),
         "--http-victim", str(hv_dir), "--backend", backend],
        stdout=subprocess.PIPE, text=True)
    hv_tasks = []
    try:
        port_line = await loop.run_in_executor(
            None, lambda: await_marker(http_victim, "http-victim port"))
        check(port_line is not None,
              "HTTP act: the victim gateway never bound its port")
        if port_line is not None:
            hv_client = GatewayClient(
                "127.0.0.1", int(port_line.split()[-1]), "alpha-key")
            hv_tasks = [asyncio.ensure_future(
                hv_client.sign(b"http pending %d" % i))
                for i in range(HTTP_PENDING)]
        durable_line = await loop.run_in_executor(
            None, lambda: await_marker(http_victim,
                                       "http-victim durable"))
        check(durable_line is not None,
              "HTTP act: the victim never reached its durable marker")
    finally:
        http_victim.kill()  # SIGKILL: no drain, no flush, no close
        http_victim.wait(timeout=10)
    hv_outcomes = await asyncio.gather(*hv_tasks,
                                       return_exceptions=True)
    check(all(isinstance(outcome, Exception)
              for outcome in hv_outcomes),
          "HTTP act: a request completed despite the SIGKILL")
    hv_pending = int(durable_line.split()[-1]) if durable_line else 0
    hv_wal = hv_dir / "service.wal"
    hv_config = ServiceConfig(num_shards=2, max_batch=8,
                              max_wait_ms=10.0, wal_path=hv_wal)
    async with SigningService(handle, hv_config) as service:
        hv_recovered = service.stats.recovered
    check(hv_recovered == hv_pending,
          f"HTTP act: replayed {hv_recovered} of {hv_pending} admitted "
          "HTTP requests")
    check(service.stats.completed == hv_pending,
          f"HTTP act: only {service.stats.completed}/{hv_pending} "
          "replayed HTTP requests completed")
    hv_records, _, _ = scan_records(hv_wal, WireCodec(group))
    hv_admits, hv_dones = {}, {}
    for record in hv_records:
        if isinstance(record, WalAdmitRecord):
            hv_admits[record.request_id] = record.message
        else:
            hv_dones.setdefault(record.request_id, []).append(record)
    check(len(hv_admits) == hv_pending,
          f"HTTP act: expected {hv_pending} admits in the victim WAL, "
          f"found {len(hv_admits)}")
    for request_id, message in hv_admits.items():
        settlements = hv_dones.get(request_id, [])
        check(len(settlements) == 1,
              f"HTTP act: request {request_id} settled "
              f"{len(settlements)} times (exactly-once violated)")
        if len(settlements) == 1:
            done = settlements[0]
            check(done.signature is not None
                  and handle.verify(message, done.signature),
                  f"HTTP act: request {request_id} settled without a "
                  "verifying signature")

    # -- act 9: wire-v2 pipelined request shipping ---------------------
    # Depth-4 pipelining over loopback TCP: the shards ship individual
    # requests (request shipping engages whenever pipeline_depth > 1)
    # and the remote workers accumulate their own windows.  One worker
    # is killed with a full pipeline in flight (it os._exits on its
    # first partial while the sentinel file is absent); every in-flight
    # request id must be resubmitted to the survivor and settle exactly
    # once with a signature verifying for its own message.
    pipe_requests = min(requests, 12)
    with tempfile.TemporaryDirectory() as pipe_dir:
        pipe_context = pathlib.Path(pipe_dir) / "ctx.bin"
        pipe_context.write_bytes(encode_service_context(handle))
        pipe_sentinel = pathlib.Path(pipe_dir) / "crashed.sentinel"
        crasher, crasher_address = await loop.run_in_executor(
            None, lambda: start_worker_process(
                pipe_context, crash_sentinel=pipe_sentinel))
        survivor, survivor_address = await loop.run_in_executor(
            None, lambda: start_worker_process(pipe_context))
        pipe_config = ServiceConfig(num_shards=2, max_batch=1,
                                    max_wait_ms=1.0,
                                    queue_depth=4 * requests,
                                    remote_workers=[crasher_address,
                                                    survivor_address],
                                    pipeline_depth=4)
        try:
            async with SigningService(handle, pipe_config) as service:
                pipe_signed = {}

                async def pipe_sign(ordinal):
                    result = await service.sign(
                        b"pipelined doc %d" % ordinal)
                    pipe_signed.setdefault(ordinal, []).append(result)
                    return result

                pipe_report = await LoadGenerator(pipe_sign).run_closed(
                    pipe_requests, pipe_requests)
                check(pipe_report.rejected == 0
                      and pipe_report.failed == 0
                      and pipe_report.completed == pipe_requests,
                      f"wire-v2 act dropped requests "
                      f"({pipe_report.completed}/{pipe_requests} "
                      f"completed, {pipe_report.rejected} rejected, "
                      f"{pipe_report.failed} failed)")
        finally:
            # terminate() is a no-op on the already-crashed worker but
            # keeps a failure *before* the crash from hanging in wait().
            crasher.terminate()
            crasher.wait(timeout=10)
            survivor.terminate()
            survivor.wait(timeout=10)
        pipe_stats = service.snapshot_stats()
        pipe_workers = pipe_stats.workers
        check(pipe_sentinel.exists(),
              "wire-v2 act: the worker never crashed mid-pipeline")
        check(sorted(pipe_signed) == list(range(pipe_requests)),
              f"wire-v2 act: only {len(pipe_signed)}/{pipe_requests} "
              "request ids settled")
        for ordinal, results in pipe_signed.items():
            check(len(results) == 1,
                  f"wire-v2 act: request #{ordinal} settled "
                  f"{len(results)} times (exactly-once violated)")
            for result in results:
                check(result.message == b"pipelined doc %d" % ordinal
                      and handle.verify(result.message,
                                        result.signature),
                      f"wire-v2 act: request #{ordinal} settled "
                      "without a verifying signature for its own "
                      "message")
        check(pipe_stats.failed == 0,
              "wire-v2 act: the service counted failures")
        check(pipe_workers is not None and pipe_workers.crashes >= 1,
              "wire-v2 act: the mid-pipeline kill was not detected")
        check(pipe_workers is not None
              and pipe_workers.resubmissions >= 1,
              "wire-v2 act: no in-flight request was resubmitted")
        check(pipe_workers is not None
              and pipe_workers.max_inflight >= 2,
              f"wire-v2 act: pipelining never engaged (max in flight "
              f"{pipe_workers.max_inflight if pipe_workers else 0})")

    if not failures:
        shutil.rmtree(wal_dir)

    print(f"serve-smoke [{backend}]: {stats.accepted} requests, "
          f"{windows} windows, 0 rejected, 0 failed; forged window "
          f"localized ({shard.faults_localized} flags, "
          f"{shard.fallback_combines} robust fallbacks); worker tier "
          f"[{workers} procs] served "
          f"{mp_stats.workers.jobs if mp_stats.workers else 0} window "
          f"jobs; TCP tier served "
          f"{tcp_stats.workers.jobs if tcp_stats.workers else 0} jobs "
          f"clean + survived a mid-window worker kill "
          f"({crash_stats.workers.crashes} crash, "
          f"{crash_stats.workers.reconnects} reconnect, "
          f"{crash_stats.workers.resubmissions} resubmissions); WAL act "
          f"replayed {wal_recovered} requests after SIGKILL "
          f"({wal_torn} torn bytes discarded); epoch act survived "
          f"{lc_stats.epochs.transitions} transitions + "
          f"{lc_stats.epochs.resizes} resize under load "
          f"({migrated} migrated, pause p99 "
          f"{lc_stats.epochs.pause_p99_ms:.1f}ms) and settled "
          f"{ev_pending} admits across a mid-transition SIGKILL; HTTP "
          f"front door served {http_requests + beta_ok} requests over "
          f"the wire ({beta_429} over-quota 429s at the edge, "
          f"{len(metrics)} metric samples reconciled) and settled "
          f"{hv_pending} admitted HTTP requests exactly once after a "
          f"gateway SIGKILL; wire-v2 act pipelined {pipe_requests} "
          f"shipped requests at depth 4 through a mid-pipeline worker "
          f"kill ({pipe_workers.crashes if pipe_workers else 0} crash, "
          f"{pipe_workers.resubmissions if pipe_workers else 0} "
          f"resubmissions, {pipe_workers.max_inflight if pipe_workers else 0} "
          f"max in flight), each settled exactly once")
    if failures:
        print("serve-smoke FAILED:")
        for reason in failures:
            print(f"  - {reason}")
        return 1
    print("serve-smoke passed: zero rejected-valid requests")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="bn254",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (default: the real "
                        "curve — this is the CI gate)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the process-parallel "
                        "act (must be >= 1; the tier is part of the "
                        "service contract this smoke gates)")
    parser.add_argument("--wal-victim", type=pathlib.Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--epoch-victim", type=pathlib.Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--http-victim", type=pathlib.Path, default=None,
                        help=argparse.SUPPRESS)
    parser.add_argument("--seed", type=int, default=0,
                        help="session seed for the per-act randomness "
                        "(0 keeps the historical default streams)")
    args = parser.parse_args(argv)
    global _SEED_BASE
    _SEED_BASE = args.seed
    if args.wal_victim is not None:
        # Internal re-entry: we are act 6's SIGKILL victim.
        return asyncio.run(run_wal_victim(args.wal_victim, args.backend))
    if args.epoch_victim is not None:
        # Internal re-entry: we are act 7's mid-transition SIGKILL victim.
        return asyncio.run(
            run_epoch_victim(args.epoch_victim, args.backend))
    if args.http_victim is not None:
        # Internal re-entry: we are act 8's gateway SIGKILL victim.
        return asyncio.run(
            run_http_victim(args.http_victim, args.backend))
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    return asyncio.run(
        run_smoke(args.backend, args.requests, args.shards, args.workers))


if __name__ == "__main__":
    raise SystemExit(main())
