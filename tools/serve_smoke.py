#!/usr/bin/env python
"""CI smoke test for the async signing service.

Boots the service in-process, pushes requests through the load generator
(half closed-loop signs, half open-loop verifies, one fault-injected
window) and asserts the service contract:

* **zero rejected-valid requests** — the queues are provisioned for the
  offered load, so nothing is shed and nothing fails;
* every signature produced is valid under the public key;
* verify traffic returns the right verdicts (including for the one
  deliberately forged signature);
* the forged-partial window is localized and still completes.

Exit code 0 on success, 1 with a reason on any violation.  Wired into
``make serve-smoke`` (and ``make smoke`` alongside the perf gate).

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--backend bn254]
        [--requests 100] [--shards 2]
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import random
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ServiceHandle, get_group                 # noqa: E402
from repro.service import (                                # noqa: E402
    CorruptSignerFault, LoadGenerator, ServiceConfig, SigningService,
)


async def run_smoke(backend: str, requests: int, shards: int) -> int:
    group = get_group(backend)
    handle = ServiceHandle.dealer(group, 2, 5, rng=random.Random(1))
    failures = []

    def check(condition: bool, reason: str) -> None:
        if not condition:
            failures.append(reason)

    # -- act 1: closed-loop signing, amply provisioned queues -----------
    config = ServiceConfig(num_shards=shards, max_batch=16,
                           max_wait_ms=10.0, queue_depth=4 * requests,
                           rng=random.Random(2))
    signed = {}
    async with SigningService(handle, config) as service:

        async def sign(ordinal):
            result = await service.sign(b"smoke doc %d" % ordinal)
            signed[ordinal] = result
            return result

        report = await LoadGenerator(sign).run_closed(requests, 16)
        check(report.rejected == 0,
              f"{report.rejected} valid sign requests rejected")
        check(report.failed == 0,
              f"{report.failed} sign requests failed")
        check(report.completed == requests,
              f"only {report.completed}/{requests} signs completed")
        for ordinal, result in signed.items():
            check(handle.verify(result.message, result.signature),
                  f"service returned an invalid signature for #{ordinal}")

        # -- act 2: open-loop verification with one forgery ------------
        forged_at = requests // 2
        good = signed[forged_at].signature
        forged = type(good)(z=good.z * good.z, r=good.r)

        def verify(ordinal):
            result = signed[ordinal]
            signature = forged if ordinal == forged_at else result.signature
            return service.verify(result.message, signature)

        verify_report = await LoadGenerator(
            verify, rng=random.Random(3)).run_open(requests, 2000.0)
        check(verify_report.rejected == 0,
              f"{verify_report.rejected} valid verify requests rejected")
        check(verify_report.completed == requests,
              f"only {verify_report.completed}/{requests} verifies "
              f"completed")
        check(verify_report.invalid == 1,
              f"expected exactly 1 invalid verdict, got "
              f"{verify_report.invalid}")
    stats = service.snapshot_stats()
    check(stats.rejected == 0, "service counted rejections")
    windows = sum(s.windows for s in stats.shards.values())
    check(windows < stats.accepted,
          "no batching happened (windows == requests)")

    # -- act 3: a forged partial inside a full window ------------------
    fault = CorruptSignerFault(signer_index=1, shard_id=0)
    faulty = ServiceConfig(num_shards=1, max_batch=8, max_wait_ms=10.0,
                           queue_depth=64, fault_injector=fault,
                           rng=random.Random(4))
    async with SigningService(handle, faulty) as service:
        report = await LoadGenerator(
            lambda i: service.sign(b"contested doc %d" % i)
        ).run_closed(8, 8)
        check(report.completed == 8 and report.failed == 0,
              "fault-injected window dropped requests")
    faulty_stats = service.snapshot_stats()
    shard = faulty_stats.shards[0]
    check(len(fault.injected) > 0, "fault injector never fired")
    check(shard.faults_localized > 0, "forged partials not localized")

    print(f"serve-smoke [{backend}]: {stats.accepted} requests, "
          f"{windows} windows, 0 rejected, 0 failed; forged window "
          f"localized ({shard.faults_localized} flags, "
          f"{shard.fallback_combines} robust fallbacks)")
    if failures:
        print("serve-smoke FAILED:")
        for reason in failures:
            print(f"  - {reason}")
        return 1
    print("serve-smoke passed: zero rejected-valid requests")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="bn254",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (default: the real "
                        "curve — this is the CI gate)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--shards", type=int, default=2)
    args = parser.parse_args(argv)
    return asyncio.run(
        run_smoke(args.backend, args.requests, args.shards))


if __name__ == "__main__":
    raise SystemExit(main())
