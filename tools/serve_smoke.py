#!/usr/bin/env python
"""CI smoke test for the async signing service.

Boots the service in-process, pushes requests through the load generator
(half closed-loop signs, half open-loop verifies, one fault-injected
window) and asserts the service contract:

* **zero rejected-valid requests** — the queues are provisioned for the
  offered load, so nothing is shed and nothing fails;
* every signature produced is valid under the public key;
* verify traffic returns the right verdicts (including for the one
  deliberately forged signature);
* the forged-partial window is localized and still completes;
* the process-parallel worker tier (``workers=N``) serves the same
  contract over the wire format: signatures produced in worker
  processes verify in the parent, nothing is rejected or failed;
* the TCP transport tier (``remote_workers=[...]``) serves the same
  contract over loopback sockets: a window routed through a standalone
  remote worker process completes every request, and killing that
  worker mid-window (it ``os._exit``\\ s on its first partial, then a
  supervisor-style respawn brings a replacement up on the same port)
  still completes every request via reconnect + resubmission.

Exit-code contract (CI depends on it): **every** failure path exits
nonzero — contract violations return 1 with a reason per line, and any
unexpected exception propagates (Python exits 1).  Only a fully clean
run exits 0.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--backend bn254]
        [--requests 100] [--shards 2] [--workers 2]
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import random
import sys
import tempfile

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ServiceHandle, get_group                 # noqa: E402
from repro.serialization import encode_service_context     # noqa: E402
from repro.service import (                                # noqa: E402
    CorruptSignerFault, LoadGenerator, ServiceConfig, SigningService,
)
from repro.service.transport import (                      # noqa: E402
    parse_address, start_worker_process,
)


async def run_smoke(backend: str, requests: int, shards: int,
                    workers: int) -> int:
    group = get_group(backend)
    handle = ServiceHandle.dealer(group, 2, 5, rng=random.Random(1))
    failures = []

    def check(condition: bool, reason: str) -> None:
        if not condition:
            failures.append(reason)

    # -- act 1: closed-loop signing, amply provisioned queues -----------
    config = ServiceConfig(num_shards=shards, max_batch=16,
                           max_wait_ms=10.0, queue_depth=4 * requests,
                           rng=random.Random(2))
    signed = {}
    async with SigningService(handle, config) as service:

        async def sign(ordinal):
            result = await service.sign(b"smoke doc %d" % ordinal)
            signed[ordinal] = result
            return result

        report = await LoadGenerator(sign).run_closed(requests, 16)
        check(report.rejected == 0,
              f"{report.rejected} valid sign requests rejected")
        check(report.failed == 0,
              f"{report.failed} sign requests failed")
        check(report.completed == requests,
              f"only {report.completed}/{requests} signs completed")
        for ordinal, result in signed.items():
            check(handle.verify(result.message, result.signature),
                  f"service returned an invalid signature for #{ordinal}")

        # -- act 2: open-loop verification with one forgery ------------
        forged_at = requests // 2
        if forged_at not in signed:
            # Act 1 already recorded the failure above; bail out rather
            # than crash on the missing signature (the exit code would
            # still be nonzero either way — this keeps the reason list
            # readable).
            print("serve-smoke FAILED:")
            for reason in failures:
                print(f"  - {reason}")
            return 1
        good = signed[forged_at].signature
        forged = type(good)(z=good.z * good.z, r=good.r)

        def verify(ordinal):
            result = signed[ordinal]
            signature = forged if ordinal == forged_at else result.signature
            return service.verify(result.message, signature)

        verify_report = await LoadGenerator(
            verify, rng=random.Random(3)).run_open(requests, 2000.0)
        check(verify_report.rejected == 0,
              f"{verify_report.rejected} valid verify requests rejected")
        check(verify_report.completed == requests,
              f"only {verify_report.completed}/{requests} verifies "
              f"completed")
        check(verify_report.invalid == 1,
              f"expected exactly 1 invalid verdict, got "
              f"{verify_report.invalid}")
    stats = service.snapshot_stats()
    check(stats.rejected == 0, "service counted rejections")
    windows = sum(s.windows for s in stats.shards.values())
    check(windows < stats.accepted,
          "no batching happened (windows == requests)")

    # -- act 3: a forged partial inside a full window ------------------
    fault = CorruptSignerFault(signer_index=1, shard_id=0)
    faulty = ServiceConfig(num_shards=1, max_batch=8, max_wait_ms=10.0,
                           queue_depth=64, fault_injector=fault,
                           rng=random.Random(4))
    async with SigningService(handle, faulty) as service:
        report = await LoadGenerator(
            lambda i: service.sign(b"contested doc %d" % i)
        ).run_closed(8, 8)
        check(report.completed == 8 and report.failed == 0,
              "fault-injected window dropped requests")
    faulty_stats = service.snapshot_stats()
    shard = faulty_stats.shards[0]
    check(len(fault.injected) > 0, "fault injector never fired")
    check(shard.faults_localized > 0, "forged partials not localized")

    # -- act 4: the process-parallel worker tier -----------------------
    mp_requests = min(requests, 16)
    mp_config = ServiceConfig(num_shards=max(2, shards), max_batch=8,
                              max_wait_ms=10.0, queue_depth=4 * requests,
                              workers=workers)
    async with SigningService(handle, mp_config) as service:
        mp_signed = {}

        async def mp_sign(ordinal):
            result = await service.sign(b"mp doc %d" % ordinal)
            mp_signed[ordinal] = result
            return result

        mp_report = await LoadGenerator(mp_sign).run_closed(
            mp_requests, 8)
        check(mp_report.rejected == 0 and mp_report.failed == 0,
              f"worker tier shed/failed requests "
              f"({mp_report.rejected} rejected, {mp_report.failed} failed)")
        for ordinal, result in mp_signed.items():
            check(handle.verify(result.message, result.signature),
                  f"worker tier produced an invalid signature for "
                  f"#{ordinal}")
        mp_verify = await LoadGenerator(
            lambda i: service.verify(mp_signed[i].message,
                                     mp_signed[i].signature)
        ).run_closed(mp_requests, 8)
        check(mp_verify.completed == mp_requests
              and mp_verify.invalid == 0,
              "worker tier returned wrong verify verdicts")
    mp_stats = service.snapshot_stats()
    check(mp_stats.workers is not None and mp_stats.workers.jobs > 0,
          "worker tier dispatched no jobs")
    check(mp_stats.workers is not None and mp_stats.workers.crashes == 0,
          "worker processes crashed during the smoke run")

    # -- act 5: the TCP transport tier (loopback remote workers) -------
    loop = asyncio.get_running_loop()
    tcp_requests = min(requests, 8)
    with tempfile.TemporaryDirectory() as tcp_dir:
        context_path = pathlib.Path(tcp_dir) / "ctx.bin"
        context_path.write_bytes(encode_service_context(handle))

        # 5a: a clean window routed through one remote worker process.
        process, address = await loop.run_in_executor(
            None, lambda: start_worker_process(context_path))
        tcp_config = ServiceConfig(num_shards=1, max_batch=8,
                                   max_wait_ms=10.0,
                                   queue_depth=4 * requests,
                                   remote_workers=[address])
        try:
            async with SigningService(handle, tcp_config) as service:
                tcp_signed = {}

                async def tcp_sign(ordinal):
                    result = await service.sign(b"tcp doc %d" % ordinal)
                    tcp_signed[ordinal] = result
                    return result

                tcp_report = await LoadGenerator(tcp_sign).run_closed(
                    tcp_requests, 8)
                check(tcp_report.rejected == 0 and tcp_report.failed == 0,
                      f"TCP tier shed/failed requests "
                      f"({tcp_report.rejected} rejected, "
                      f"{tcp_report.failed} failed)")
                for ordinal, result in tcp_signed.items():
                    check(handle.verify(result.message, result.signature),
                          f"TCP tier produced an invalid signature for "
                          f"#{ordinal}")
                tcp_verify = await LoadGenerator(
                    lambda i: service.verify(tcp_signed[i].message,
                                             tcp_signed[i].signature)
                ).run_closed(tcp_requests, 8)
                check(tcp_verify.completed == tcp_requests
                      and tcp_verify.invalid == 0,
                      "TCP tier returned wrong verify verdicts")
        finally:
            process.terminate()
            process.wait(timeout=10)
        tcp_stats = service.snapshot_stats()
        check(tcp_stats.workers is not None
              and tcp_stats.workers.jobs > 0,
              "TCP tier dispatched no jobs")
        check(tcp_stats.workers is not None
              and tcp_stats.workers.crashes == 0,
              "TCP tier dropped connections during the clean act")

        # 5b: kill the worker mid-window; a supervisor-style respawn
        # brings a replacement up on the same port, and reconnect +
        # resubmission must complete every request.  The worker
        # os._exits on the first partial it signs while the sentinel
        # file does not exist (the WorkerCrashFault pattern).
        sentinel = pathlib.Path(tcp_dir) / "crashed.sentinel"
        process, address = await loop.run_in_executor(
            None, lambda: start_worker_process(
                context_path, crash_sentinel=sentinel))
        port = parse_address(address)[1]
        replacements = []

        async def respawn_when_dead():
            while process.poll() is None:
                await asyncio.sleep(0.05)
            replacement, _ = await loop.run_in_executor(
                None, lambda: start_worker_process(
                    context_path, port=port, crash_sentinel=sentinel))
            replacements.append(replacement)

        crash_config = ServiceConfig(num_shards=1, max_batch=8,
                                     max_wait_ms=10.0,
                                     queue_depth=4 * requests,
                                     remote_workers=[address])
        try:
            async with SigningService(handle, crash_config) as service:
                watcher = asyncio.ensure_future(respawn_when_dead())
                crash_report = await LoadGenerator(
                    lambda i: service.sign(b"tcp crash doc %d" % i)
                ).run_closed(tcp_requests, tcp_requests)
                await watcher
                check(crash_report.rejected == 0
                      and crash_report.failed == 0
                      and crash_report.completed == tcp_requests,
                      f"TCP crash act dropped requests "
                      f"({crash_report.completed}/{tcp_requests} "
                      f"completed, {crash_report.failed} failed)")
        finally:
            # terminate() is a no-op on the already-crashed worker but
            # keeps an act-5b failure *before* the crash from hanging
            # in wait() and masking the real error.
            process.terminate()
            process.wait(timeout=10)
            for replacement in replacements:
                replacement.terminate()
                replacement.wait(timeout=10)
        crash_stats = service.snapshot_stats()
        check(sentinel.exists(), "TCP crash act: worker never crashed")
        check(crash_stats.workers is not None
              and crash_stats.workers.crashes >= 1,
              "TCP crash act: dropped connection not detected")
        check(crash_stats.workers is not None
              and crash_stats.workers.resubmissions >= 1,
              "TCP crash act: no job was resubmitted")
        check(crash_stats.workers is not None
              and crash_stats.workers.reconnects >= 1,
              "TCP crash act: the respawned worker was never reconnected")

    print(f"serve-smoke [{backend}]: {stats.accepted} requests, "
          f"{windows} windows, 0 rejected, 0 failed; forged window "
          f"localized ({shard.faults_localized} flags, "
          f"{shard.fallback_combines} robust fallbacks); worker tier "
          f"[{workers} procs] served "
          f"{mp_stats.workers.jobs if mp_stats.workers else 0} window "
          f"jobs; TCP tier served "
          f"{tcp_stats.workers.jobs if tcp_stats.workers else 0} jobs "
          f"clean + survived a mid-window worker kill "
          f"({crash_stats.workers.crashes} crash, "
          f"{crash_stats.workers.reconnects} reconnect, "
          f"{crash_stats.workers.resubmissions} resubmissions)")
    if failures:
        print("serve-smoke FAILED:")
        for reason in failures:
            print(f"  - {reason}")
        return 1
    print("serve-smoke passed: zero rejected-valid requests")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="bn254",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (default: the real "
                        "curve — this is the CI gate)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the process-parallel "
                        "act (must be >= 1; the tier is part of the "
                        "service contract this smoke gates)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    return asyncio.run(
        run_smoke(args.backend, args.requests, args.shards, args.workers))


if __name__ == "__main__":
    raise SystemExit(main())
