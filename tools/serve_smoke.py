#!/usr/bin/env python
"""CI smoke test for the async signing service.

Boots the service in-process, pushes requests through the load generator
(half closed-loop signs, half open-loop verifies, one fault-injected
window) and asserts the service contract:

* **zero rejected-valid requests** — the queues are provisioned for the
  offered load, so nothing is shed and nothing fails;
* every signature produced is valid under the public key;
* verify traffic returns the right verdicts (including for the one
  deliberately forged signature);
* the forged-partial window is localized and still completes;
* the process-parallel worker tier (``workers=N``) serves the same
  contract over the wire format: signatures produced in worker
  processes verify in the parent, nothing is rejected or failed.

Exit-code contract (CI depends on it): **every** failure path exits
nonzero — contract violations return 1 with a reason per line, and any
unexpected exception propagates (Python exits 1).  Only a fully clean
run exits 0.

Usage::

    PYTHONPATH=src python tools/serve_smoke.py [--backend bn254]
        [--requests 100] [--shards 2] [--workers 2]
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import random
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import ServiceHandle, get_group                 # noqa: E402
from repro.service import (                                # noqa: E402
    CorruptSignerFault, LoadGenerator, ServiceConfig, SigningService,
)


async def run_smoke(backend: str, requests: int, shards: int,
                    workers: int) -> int:
    group = get_group(backend)
    handle = ServiceHandle.dealer(group, 2, 5, rng=random.Random(1))
    failures = []

    def check(condition: bool, reason: str) -> None:
        if not condition:
            failures.append(reason)

    # -- act 1: closed-loop signing, amply provisioned queues -----------
    config = ServiceConfig(num_shards=shards, max_batch=16,
                           max_wait_ms=10.0, queue_depth=4 * requests,
                           rng=random.Random(2))
    signed = {}
    async with SigningService(handle, config) as service:

        async def sign(ordinal):
            result = await service.sign(b"smoke doc %d" % ordinal)
            signed[ordinal] = result
            return result

        report = await LoadGenerator(sign).run_closed(requests, 16)
        check(report.rejected == 0,
              f"{report.rejected} valid sign requests rejected")
        check(report.failed == 0,
              f"{report.failed} sign requests failed")
        check(report.completed == requests,
              f"only {report.completed}/{requests} signs completed")
        for ordinal, result in signed.items():
            check(handle.verify(result.message, result.signature),
                  f"service returned an invalid signature for #{ordinal}")

        # -- act 2: open-loop verification with one forgery ------------
        forged_at = requests // 2
        if forged_at not in signed:
            # Act 1 already recorded the failure above; bail out rather
            # than crash on the missing signature (the exit code would
            # still be nonzero either way — this keeps the reason list
            # readable).
            print("serve-smoke FAILED:")
            for reason in failures:
                print(f"  - {reason}")
            return 1
        good = signed[forged_at].signature
        forged = type(good)(z=good.z * good.z, r=good.r)

        def verify(ordinal):
            result = signed[ordinal]
            signature = forged if ordinal == forged_at else result.signature
            return service.verify(result.message, signature)

        verify_report = await LoadGenerator(
            verify, rng=random.Random(3)).run_open(requests, 2000.0)
        check(verify_report.rejected == 0,
              f"{verify_report.rejected} valid verify requests rejected")
        check(verify_report.completed == requests,
              f"only {verify_report.completed}/{requests} verifies "
              f"completed")
        check(verify_report.invalid == 1,
              f"expected exactly 1 invalid verdict, got "
              f"{verify_report.invalid}")
    stats = service.snapshot_stats()
    check(stats.rejected == 0, "service counted rejections")
    windows = sum(s.windows for s in stats.shards.values())
    check(windows < stats.accepted,
          "no batching happened (windows == requests)")

    # -- act 3: a forged partial inside a full window ------------------
    fault = CorruptSignerFault(signer_index=1, shard_id=0)
    faulty = ServiceConfig(num_shards=1, max_batch=8, max_wait_ms=10.0,
                           queue_depth=64, fault_injector=fault,
                           rng=random.Random(4))
    async with SigningService(handle, faulty) as service:
        report = await LoadGenerator(
            lambda i: service.sign(b"contested doc %d" % i)
        ).run_closed(8, 8)
        check(report.completed == 8 and report.failed == 0,
              "fault-injected window dropped requests")
    faulty_stats = service.snapshot_stats()
    shard = faulty_stats.shards[0]
    check(len(fault.injected) > 0, "fault injector never fired")
    check(shard.faults_localized > 0, "forged partials not localized")

    # -- act 4: the process-parallel worker tier -----------------------
    mp_requests = min(requests, 16)
    mp_config = ServiceConfig(num_shards=max(2, shards), max_batch=8,
                              max_wait_ms=10.0, queue_depth=4 * requests,
                              workers=workers)
    async with SigningService(handle, mp_config) as service:
        mp_signed = {}

        async def mp_sign(ordinal):
            result = await service.sign(b"mp doc %d" % ordinal)
            mp_signed[ordinal] = result
            return result

        mp_report = await LoadGenerator(mp_sign).run_closed(
            mp_requests, 8)
        check(mp_report.rejected == 0 and mp_report.failed == 0,
              f"worker tier shed/failed requests "
              f"({mp_report.rejected} rejected, {mp_report.failed} failed)")
        for ordinal, result in mp_signed.items():
            check(handle.verify(result.message, result.signature),
                  f"worker tier produced an invalid signature for "
                  f"#{ordinal}")
        mp_verify = await LoadGenerator(
            lambda i: service.verify(mp_signed[i].message,
                                     mp_signed[i].signature)
        ).run_closed(mp_requests, 8)
        check(mp_verify.completed == mp_requests
              and mp_verify.invalid == 0,
              "worker tier returned wrong verify verdicts")
    mp_stats = service.snapshot_stats()
    check(mp_stats.workers is not None and mp_stats.workers.jobs > 0,
          "worker tier dispatched no jobs")
    check(mp_stats.workers is not None and mp_stats.workers.crashes == 0,
          "worker processes crashed during the smoke run")

    print(f"serve-smoke [{backend}]: {stats.accepted} requests, "
          f"{windows} windows, 0 rejected, 0 failed; forged window "
          f"localized ({shard.faults_localized} flags, "
          f"{shard.fallback_combines} robust fallbacks); worker tier "
          f"[{workers} procs] served "
          f"{mp_stats.workers.jobs if mp_stats.workers else 0} window jobs")
    if failures:
        print("serve-smoke FAILED:")
        for reason in failures:
            print(f"  - {reason}")
        return 1
    print("serve-smoke passed: zero rejected-valid requests")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--backend", default="bn254",
                        choices=["toy", "bn254"],
                        help="bilinear group backend (default: the real "
                        "curve — this is the CI gate)")
    parser.add_argument("--requests", type=int, default=100)
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2,
                        help="worker processes for the process-parallel "
                        "act (must be >= 1; the tier is part of the "
                        "service contract this smoke gates)")
    args = parser.parse_args(argv)
    if args.workers < 1:
        parser.error("--workers must be at least 1")
    return asyncio.run(
        run_smoke(args.backend, args.requests, args.shards, args.workers))


if __name__ == "__main__":
    raise SystemExit(main())
