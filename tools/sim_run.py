#!/usr/bin/env python
"""Run discrete-event simulation scenarios and write the F7 tables.

Drives the scenario catalog in :mod:`repro.sims.scenarios` from the
command line, renders each scenario's metrics as an F-series table
under ``benchmarks/results/f7_sim_<scenario>.txt`` (table text plus a
``digest:`` trailer line — the kernel's SHA-256 event-trace digest),
and optionally appends ``<scenario> <digest>`` lines to a digest file.

Determinism contract (see ``docs/SIMULATION.md``): the tables and
digests are pure functions of ``(scenario, seed, parameters)``.  The
``make sim-smoke`` gate runs ``--scenario ci`` twice in separate
processes and byte-compares the digest files.

Usage::

    python tools/sim_run.py --scenario ci
    python tools/sim_run.py --scenario dkg --n 1024 --t 5
    python tools/sim_run.py --scenario all --seed 7 --out /tmp/results
"""

from __future__ import annotations

import argparse
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.bench.tables import Table  # noqa: E402
from repro.sims.scenarios import (  # noqa: E402
    run_churn_scenario, run_ci_scenario, run_dkg_scenario,
    run_quorum_scenario, run_robust_scenario,
)

#: Default seed for the deterministic CI tables (any other seed is just
#: as valid — the point is that the same seed reproduces byte-for-byte).
DEFAULT_SEED = 2026

DKG_COLUMNS = ("n", "t", "loss", "deal_p50_ms", "deal_p95_ms",
               "finalize_ms", "complaints", "qualified", "messages",
               "drops", "mbytes")
QUORUM_COLUMNS = ("n", "t", "loss", "quorum_p50_ms", "quorum_p95_ms",
                  "signed_p50_ms", "signed_p95_ms", "messages", "drops")
ROBUST_COLUMNS = ("n", "t", "loss", "stragglers", "forgers", "requests",
                  "quorum_p50_ms", "signed_p50_ms", "signed_p95_ms",
                  "flagged", "retries", "drops")
CHURN_COLUMNS = ("n", "t", "requests", "reshare_ms", "epoch0_signed",
                 "epoch1_signed", "remap_pct", "signed_p95_ms", "drops")


def _subset(row, columns):
    return {column: row[column] for column in columns}


def dkg_table(rows) -> Table:
    table = Table("F7a: simulated DKG time-to-completion (WAN)",
                  DKG_COLUMNS)
    for row in rows:
        table.add_row(**_subset(row, DKG_COLUMNS))
    return table


def quorum_table(rows) -> Table:
    table = Table("F7b: simulated time-to-quorum vs committee size",
                  QUORUM_COLUMNS)
    for row in rows:
        table.add_row(**_subset(row, QUORUM_COLUMNS))
    return table


def robust_table(rows) -> Table:
    table = Table("F7c: robust combine under loss/stragglers/forgers",
                  ROBUST_COLUMNS)
    for row in rows:
        table.add_row(**_subset(row, ROBUST_COLUMNS))
    return table


def churn_table(rows) -> Table:
    table = Table("F7d: reshare + ring churn under signing load",
                  CHURN_COLUMNS)
    for row in rows:
        table.add_row(**_subset(row, CHURN_COLUMNS))
    return table


def _write(out_dir: pathlib.Path, name: str, tables, digest: str) -> str:
    text = "\n\n".join(table.render() for table in tables)
    text += f"\n\ndigest: {digest}\n"
    out_dir.mkdir(parents=True, exist_ok=True)
    (out_dir / f"f7_sim_{name}.txt").write_text(text)
    print(text)
    return digest


def run_scenario(name: str, seed: int, out_dir: pathlib.Path,
                 overrides: dict) -> str:
    """Run one scenario, write its table file, return its digest."""
    if name == "ci":
        result = run_ci_scenario(seed)
        return _write(out_dir, "ci",
                      [dkg_table([result["dkg"]]),
                       robust_table([result["robust"]])],
                      result["digest"])
    if name == "dkg":
        row = run_dkg_scenario(
            seed, n=overrides.get("n") or 1024, t=overrides.get("t") or 5,
            loss=overrides.get("loss") or 0.0)
        return _write(out_dir, "dkg", [dkg_table([row])], row["digest"])
    if name == "quorum":
        result = run_quorum_scenario(seed)
        return _write(out_dir, "quorum", [quorum_table(result["rows"])],
                      result["digest"])
    if name == "robust":
        row = run_robust_scenario(seed)
        return _write(out_dir, "robust", [robust_table([row])],
                      row["digest"])
    if name == "churn":
        row = run_churn_scenario(seed)
        return _write(out_dir, "churn", [churn_table([row])],
                      row["digest"])
    raise SystemExit(f"unknown scenario {name!r}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scenario", default="ci",
        choices=("ci", "dkg", "quorum", "robust", "churn", "all"))
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED)
    parser.add_argument(
        "--out", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent
        / "benchmarks" / "results")
    parser.add_argument(
        "--digest-file", type=pathlib.Path, default=None,
        help="write '<scenario> <digest>' lines here (the sim-smoke "
             "determinism gate compares two of these)")
    parser.add_argument("--n", type=int, default=None,
                        help="dkg: committee size (default 1024)")
    parser.add_argument("--t", type=int, default=None,
                        help="dkg: threshold (default 5)")
    parser.add_argument("--loss", type=float, default=None,
                        help="dkg: private-channel loss (default 0)")
    args = parser.parse_args(argv)

    names = (["ci", "dkg", "quorum", "robust", "churn"]
             if args.scenario == "all" else [args.scenario])
    overrides = {"n": args.n, "t": args.t, "loss": args.loss}
    digests = []
    for name in names:
        digests.append((name, run_scenario(name, args.seed, args.out,
                                           overrides)))
    for name, digest in digests:
        print(f"{name} {digest}")
    if args.digest_file is not None:
        args.digest_file.parent.mkdir(parents=True, exist_ok=True)
        args.digest_file.write_text("".join(
            f"{name} {digest}\n" for name, digest in digests))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
