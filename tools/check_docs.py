#!/usr/bin/env python
"""Docs sanity check: every internal link in the markdown docs resolves.

Scans the repository's documentation set (``docs/*.md``, ``README.md``,
``benchmarks/README.md``) for markdown links and inline code references
and fails (exit 1, one reason per line) when:

* a relative link points at a file that does not exist;
* a ``#fragment`` (own-file or cross-file) names a heading that does
  not exist in the target document (GitHub anchor slug rules: lowercase,
  punctuation stripped, spaces to hyphens);
* a `` `path/to/file.py` `` code span that looks like a repo path names
  a file that does not exist (so module moves cannot silently strand
  the architecture docs).

External links (``http://``, ``https://``, ``mailto:``) are not fetched
— CI must not depend on the network.

Usage::

    python tools/check_docs.py [--root REPO_ROOT]
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

#: Markdown inline links: [text](target) — target captured without the
#: optional "title" part; images (![alt](src)) match too, intentionally.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: ATX headings, for anchor checking.
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
#: Code spans that look like repository file paths (contain a slash and
#: a known source/doc suffix; an optional :symbol / :line tail is
#: stripped before the existence check).
CODE_PATH_RE = re.compile(
    r"`([A-Za-z0-9_.\-]+(?:/[A-Za-z0-9_.\-]+)+"
    r"\.(?:py|md|json|yml|txt))(?::[A-Za-z0-9_.]+)?`")


def github_slug(heading: str) -> str:
    """GitHub's heading -> anchor id rule (the common subset)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> set:
    slugs = set()
    for match in HEADING_RE.finditer(markdown):
        slug = github_slug(match.group(1))
        # GitHub dedups repeats as slug-1, slug-2, ...; accept the base
        # form only (the docs do not rely on duplicate headings).
        slugs.add(slug)
    return slugs


def check_document(path: pathlib.Path, root: pathlib.Path) -> list:
    problems = []
    markdown = path.read_text()
    own_slugs = heading_slugs(markdown)

    for match in LINK_RE.finditer(markdown):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.is_relative_to(root):
                # Repo-escaping relative links (e.g. the CI badge's
                # ../../actions/... GitHub-site path) are not files.
                continue
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(root)}: broken link "
                    f"'{target}' ({file_part} does not exist)")
                continue
            target_slugs = (heading_slugs(resolved.read_text())
                            if resolved.suffix == ".md" else set())
        else:
            resolved = path
            target_slugs = own_slugs
        if fragment and resolved.suffix == ".md" and \
                fragment not in target_slugs:
            problems.append(
                f"{path.relative_to(root)}: anchor '#{fragment}' not "
                f"found in {resolved.relative_to(root)}")

    for match in CODE_PATH_RE.finditer(markdown):
        candidate = match.group(1)
        # A code-span path may be written relative to the repo root or
        # to the document's own directory (benchmarks/README.md says
        # `results/...`); accept either.
        if not (root / candidate).exists() and \
                not (path.parent / candidate).exists():
            problems.append(
                f"{path.relative_to(root)}: code reference "
                f"`{candidate}` names a file that does not exist")
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", type=pathlib.Path,
        default=pathlib.Path(__file__).resolve().parent.parent)
    args = parser.parse_args(argv)
    root = args.root.resolve()

    documents = sorted((root / "docs").glob("*.md")) + [
        root / "README.md", root / "benchmarks" / "README.md"]
    documents = [doc for doc in documents if doc.exists()]
    if not any(doc.parent.name == "docs" for doc in documents):
        print("docs-check FAILED: docs/*.md is empty — the architecture "
              "docs are part of the repository contract")
        return 1

    problems = []
    for document in documents:
        problems.extend(check_document(document, root))
    if problems:
        print("docs-check FAILED:")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print(f"docs-check passed: {len(documents)} documents, all internal "
          "links and code references resolve")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
