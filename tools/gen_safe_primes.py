"""One-time generation of safe primes for the RSA baselines.

Writes src/repro/baselines/rsa_params.py with safe-prime pairs for
1024/2048/3072-bit moduli.  Run offline once; results are embedded so the
test suite never waits on prime generation.
"""
import secrets
import sys
import time

SMALL_PRIMES = []
def _sieve(limit=10000):
    flags = bytearray([1]) * (limit + 1)
    flags[0:2] = b"\x00\x00"
    for i in range(2, int(limit ** 0.5) + 1):
        if flags[i]:
            flags[i*i::i] = b"\x00" * len(flags[i*i::i])
    return [i for i, f in enumerate(flags) if f]
SMALL_PRIMES = _sieve()

def is_probable_prime(n, rounds=40):
    if n < 2:
        return False
    for p in SMALL_PRIMES:
        if n % p == 0:
            return n == p
    d, s = n - 1, 0
    while d % 2 == 0:
        d //= 2
        s += 1
    for _ in range(rounds):
        a = secrets.randbelow(n - 3) + 2
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(s - 1):
            x = x * x % n
            if x == n - 1:
                break
        else:
            return False
    return True

def gen_safe_prime(bits):
    # p = 2q + 1 with q prime.  Sieve candidates jointly.
    while True:
        q = secrets.randbits(bits - 1) | (1 << (bits - 2)) | 1
        p = 2 * q + 1
        ok = True
        for sp in SMALL_PRIMES:
            if q % sp == 0 and q != sp:
                ok = False
                break
            if p % sp == 0 and p != sp:
                ok = False
                break
        if not ok:
            continue
        if pow(2, q - 1, q) != 1:
            continue
        if not is_probable_prime(q, 20):
            continue
        if is_probable_prime(p, 20):
            return p, q

def main():
    out = {}
    for modulus_bits in (512, 1024, 2048, 3072):
        half = modulus_bits // 2
        t0 = time.time()
        p, pq = gen_safe_prime(half)
        q, qq = gen_safe_prime(half)
        while q == p:
            q, qq = gen_safe_prime(half)
        out[modulus_bits] = (p, q)
        print(f"{modulus_bits}: done in {time.time()-t0:.1f}s", file=sys.stderr)
    with open("/root/repo/src/repro/baselines/rsa_params.py", "w") as f:
        f.write('"""Pre-generated safe-prime pairs for the RSA baselines.\n\n'
                'Generated once by tools/gen_safe_primes.py (pure-Python\n'
                'Miller-Rabin; regenerate at will).  Each entry maps a modulus\n'
                'bit-size to a pair of safe primes (p, q) with p = 2p\' + 1,\n'
                'q = 2q\' + 1.  Embedded so tests and benchmarks never pay the\n'
                'minutes-long safe-prime search.  These keys are for\n'
                'reproduction experiments only - never reuse them.\n"""\n\n')
        f.write("SAFE_PRIME_PAIRS = {\n")
        for bits, (p, q) in out.items():
            f.write(f"    {bits}: (\n        {p},\n        {q},\n    ),\n")
        f.write("}\n")
    print("written", file=sys.stderr)

main()
