"""Async threshold-signing service: sharded request pipeline with
batch-window amortization.

PRs 1-2 made the cryptography fast in *batch* form (`batch_verify`,
batch Share-Verify, MSM Combine) but every caller still drove the scheme
one request at a time, so none of the amortization was realized end to
end.  This package turns the scheme into a long-lived server in the
Thetacrypt mold:

* :class:`~repro.service.frontend.SigningService` — the asyncio frontend
  accepting sign/verify requests with admission control and
  backpressure: a bounded per-shard queue, load shedding with typed
  errors (:class:`~repro.service.types.ServiceOverloadedError`).
* :class:`~repro.service.accumulator.BatchAccumulator` — closes a batch
  window on ``max_batch`` requests or ``max_wait_ms`` elapsed, whichever
  comes first, so latency is bounded while full windows pay one
  amortized crypto call for the whole batch.
* :class:`~repro.service.shards.ShardPool` — partitions signer quorums
  and request traffic across N workers by consistent hashing on the
  message digest; per-shard stats.
* :class:`~repro.service.loadgen.LoadGenerator` — open-loop Poisson
  arrivals and closed-loop concurrency, reporting p50/p99 latency and
  throughput; :class:`~repro.service.loadgen.GatewayClient` drives the
  same load through the HTTP front door.
* :class:`~repro.service.gateway.HttpGateway` — the production front
  door: a dependency-free asyncio HTTP/1.1 server exposing ``POST
  /v1/sign`` / ``/v1/verify``, admin key-lifecycle routes
  (``/admin/refresh`` / ``/admin/reshare`` / ``/admin/resize``) and a
  Prometheus ``GET /metrics`` endpoint.  API keys resolve to tenants
  (:mod:`~repro.service.tenants`) with token-bucket rate quotas,
  in-flight caps and per-tenant quorum pinning; typed shedding maps to
  HTTP 429/503/504 with ``Retry-After``.
* :class:`~repro.service.workers.WorkerPool` — the process-parallel
  execution tier: shard workers encode their windows into the wire
  format of :mod:`repro.serialization` and dispatch them to a pool of
  warm worker processes (``ServiceConfig(workers=N)``), with crash
  detection and job resubmission.
* :mod:`~repro.service.transport` — the multi-machine tier: the same
  wire-format jobs over framed asyncio TCP
  (``ServiceConfig(remote_workers=["host:port", ...])``), served by
  standalone ``python -m repro.service.remote_worker`` processes, with
  a context-digest handshake and reconnect-with-backoff + resubmission
  on dropped connections.
* :mod:`~repro.service.wal` — the crash-safe durability layer: every
  admitted sign request is appended to a write-ahead log (length+CRC
  record framing, fsync batched per closed window) and replayed
  idempotently on the next ``start()`` against the same
  ``ServiceConfig(wal_path=...)``, so a SIGKILL of the service process
  never loses an admitted request; per-request deadlines
  (``request_deadline_s``) shed stale requests with a typed
  :class:`~repro.service.types.RequestExpiredError` instead of signing
  late.
* :mod:`~repro.service.faults` — failure injection: a shard returning
  forged partial signatures exercises ``locate_invalid`` bisection and
  the robust per-share fallback without poisoning neighbors in the same
  window; a worker process dying mid-window
  (:class:`~repro.service.faults.WorkerCrashFault`) exercises the
  pool's crash recovery; random live lifecycle churn
  (:class:`~repro.service.faults.ChurnFault`) exercises the epoch
  barrier under load.
* **Key lifecycle** — live epoch transitions with zero lifecycle
  rejections: ``SigningService.begin_epoch`` drains in-flight windows
  behind per-shard barriers, swaps shares/quorums/worker contexts
  (executor rebuild, or a ``C`` context-push frame on the TCP tier)
  and resumes — requests queued across the swap are served under the
  new shares with byte-identical signatures.  ``refresh`` / ``reshare``
  / ``retire_signer`` / ``recover_signer`` wrap the DKG protocols of
  :mod:`repro.dkg`; ``resize`` re-rings the shard pool live, migrating
  queued requests.  Telemetry in
  :class:`~repro.service.types.EpochStats`.

Scheduling policy, amortization and (with ``workers=N``) process
parallelism are real; only the client/server network is simulated away.
"""

from repro.service.accumulator import BatchAccumulator
from repro.service.faults import (
    ChurnFault, CorruptSignerFault, WorkerCrashFault,
)
from repro.service.frontend import ServiceConfig, SigningService
from repro.service.gateway import HttpGateway
from repro.service.loadgen import GatewayClient, LoadGenerator, LoadReport
from repro.service.shards import HashRing, ShardPool
from repro.service.tenants import (
    TenantConfig, TenantQuotaError, TenantRegistry, TenantStats,
    TokenBucket, UnknownTenantError,
)
from repro.service.transport import RemoteWorkerPool, WorkerServer
from repro.service.types import (
    EpochStats, HandshakeError, RemoteJobError, RequestExpiredError,
    RequestFailedError, ServiceClosedError, ServiceError,
    ServiceOverloadedError, ServiceStats, ShardStats, SignResult,
    StaleEpochError, TransportError, VerifyResult, WorkerCrashError,
    WorkerPoolStats,
)
from repro.service.wal import WalStats, WriteAheadLog
from repro.service.workers import WorkerPool

__all__ = [
    "BatchAccumulator", "ChurnFault", "CorruptSignerFault", "EpochStats",
    "GatewayClient", "HandshakeError", "HashRing", "HttpGateway",
    "LoadGenerator", "LoadReport", "RemoteJobError", "RemoteWorkerPool",
    "RequestExpiredError", "RequestFailedError", "ServiceClosedError",
    "ServiceConfig", "ServiceError", "ServiceOverloadedError",
    "ServiceStats", "ShardPool", "ShardStats", "SigningService",
    "SignResult", "StaleEpochError", "TenantConfig", "TenantQuotaError",
    "TenantRegistry", "TenantStats", "TokenBucket", "TransportError",
    "UnknownTenantError", "VerifyResult", "WalStats", "WorkerCrashError",
    "WorkerCrashFault", "WorkerPool", "WorkerPoolStats", "WorkerServer",
    "WriteAheadLog",
]
