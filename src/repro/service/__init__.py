"""Async threshold-signing service: sharded request pipeline with
batch-window amortization.

PRs 1-2 made the cryptography fast in *batch* form (`batch_verify`,
batch Share-Verify, MSM Combine) but every caller still drove the scheme
one request at a time, so none of the amortization was realized end to
end.  This package turns the scheme into a long-lived server in the
Thetacrypt mold:

* :class:`~repro.service.frontend.SigningService` — the asyncio frontend
  accepting sign/verify requests with admission control and
  backpressure: a bounded per-shard queue, load shedding with typed
  errors (:class:`~repro.service.types.ServiceOverloadedError`).
* :class:`~repro.service.accumulator.BatchAccumulator` — closes a batch
  window on ``max_batch`` requests or ``max_wait_ms`` elapsed, whichever
  comes first, so latency is bounded while full windows pay one
  amortized crypto call for the whole batch.
* :class:`~repro.service.shards.ShardPool` — partitions signer quorums
  and request traffic across N workers by consistent hashing on the
  message digest; per-shard stats.
* :class:`~repro.service.loadgen.LoadGenerator` — open-loop Poisson
  arrivals and closed-loop concurrency, reporting p50/p99 latency and
  throughput.
* :mod:`~repro.service.faults` — failure injection: a shard returning
  forged partial signatures exercises ``locate_invalid`` bisection and
  the robust per-share fallback without poisoning neighbors in the same
  window.

Everything here is plain asyncio over the in-process scheme — the
network is simulated away, the scheduling policy and the amortization
are real.
"""

from repro.service.accumulator import BatchAccumulator
from repro.service.faults import CorruptSignerFault
from repro.service.frontend import ServiceConfig, SigningService
from repro.service.loadgen import LoadGenerator, LoadReport
from repro.service.shards import HashRing, ShardPool
from repro.service.types import (
    RequestFailedError, ServiceClosedError, ServiceError,
    ServiceOverloadedError, ServiceStats, ShardStats, SignResult,
    VerifyResult,
)

__all__ = [
    "BatchAccumulator", "CorruptSignerFault", "HashRing",
    "LoadGenerator", "LoadReport", "RequestFailedError", "ServiceClosedError",
    "ServiceConfig", "ServiceError", "ServiceOverloadedError", "ServiceStats",
    "ShardPool", "ShardStats", "SigningService", "SignResult",
    "VerifyResult",
]
