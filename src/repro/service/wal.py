"""Crash-safe write-ahead log for admitted sign requests.

The service's durability contract (the gap this module closes): a
request that cleared admission control is an *obligation*.  Before this
log existed, a crash of the service process silently dropped every
queued and in-flight request; now each admitted sign request is
appended as a :class:`~repro.serialization.WalAdmitRecord`, each
settlement (signature delivered, or a typed rejection) as a
:class:`~repro.serialization.WalDoneRecord`, and
:class:`~repro.service.frontend.SigningService` start-up replays every
unsettled admit through the normal signing path.  LJY partial signing
is deterministic, so replaying a request that was signed but not yet
acknowledged reproduces the byte-identical signature — a crash between
sign and ack can never produce a lost *or* double-served request.

**Storage framing.**  The log is append-only; each record is::

    offset  size  field
    0       4     length   payload bytes, u32 big-endian
    4       4     crc32    zlib.crc32(payload), u32 big-endian
    8       ...   payload  a WireCodec WAL record blob ("W" admit /
                           "w" done — byte layout: docs/WIRE_FORMAT.md)

A SIGKILL mid-append leaves a torn tail: a short header, a short
payload, or a payload whose CRC does not match.  :meth:`WriteAheadLog.open`
scans from the start, keeps the longest valid prefix, and truncates the
rest — a torn record is by definition one whose admit was never
acknowledged to any caller, so discarding it is correct, not lossy.

**Fsync batching.**  Appends go to the OS via a buffered file; nothing
is forced to disk per request.  The shard worker calls :meth:`sync`
once per *closed window* — immediately before the window's crypto runs
— so one ``fsync`` covers every admit in the window and the admit is
durable before any completion can be observed.  Done records ride the
next window's sync (or the close on shutdown); losing a done record to
a crash costs one idempotent replay, never correctness.
"""

from __future__ import annotations

import os
import pathlib
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.serialization import (
    MAX_FRAME_BYTES, WalAdmitRecord, WalDoneRecord, WireCodec, _u32,
)
from repro.errors import SerializationError

#: Per-record storage header: u32 payload length + u32 CRC-32.
RECORD_HEADER_BYTES = 8
#: Payload cap, shared with the TCP frame layer: a corrupt length field
#: must never turn into a 4 GiB allocation.
MAX_RECORD_BYTES = MAX_FRAME_BYTES


@dataclass
class WalStats:
    """Durability accounting for one log instance."""

    #: Admit records appended by this instance.
    admits: int = 0
    #: Done records appended by this instance.
    dones: int = 0
    #: fsync calls issued (one per closed window, not per record).
    syncs: int = 0
    #: Unsettled admits found at open — the replay obligation.
    recovered: int = 0
    #: Done records at open with no matching admit (settled in a
    #: previous incarnation whose admit was already compacted away, or
    #: an artifact of manual surgery; tolerated, counted, ignored).
    orphan_dones: int = 0
    #: Bytes of torn tail discarded at open (0 after a clean shutdown).
    torn_bytes: int = 0


def frame_record(payload: bytes) -> bytes:
    """Wrap one WAL payload in the storage framing (length + CRC)."""
    if len(payload) > MAX_RECORD_BYTES:
        raise SerializationError(
            f"WAL record payload of {len(payload)} bytes exceeds the "
            f"{MAX_RECORD_BYTES}-byte cap")
    return _u32(len(payload)) + _u32(zlib.crc32(payload)) + payload


def scan_records(path, codec: WireCodec
                 ) -> Tuple[List[object], int, int]:
    """Scan a WAL file; returns ``(records, good_bytes, torn_bytes)``.

    ``records`` is every decodable record in append order;
    ``good_bytes`` is the offset of the first byte that fails the
    storage framing (short header/payload, CRC mismatch, oversized
    length) or the record codec — everything from there on is the torn
    tail.  A missing file scans as empty (first boot).
    """
    path = pathlib.Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        return [], 0, 0
    records: List[object] = []
    offset = 0
    while offset + RECORD_HEADER_BYTES <= len(data):
        length = int.from_bytes(data[offset:offset + 4], "big")
        crc = int.from_bytes(data[offset + 4:offset + 8], "big")
        end = offset + RECORD_HEADER_BYTES + length
        if length > MAX_RECORD_BYTES or end > len(data):
            break
        payload = data[offset + RECORD_HEADER_BYTES:end]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(codec.decode_wal_record(payload))
        except SerializationError:
            break
        offset = end
    return records, offset, len(data) - offset


class WriteAheadLog:
    """Append-only durability log for one :class:`SigningService`.

    Use :meth:`open` (it scans, truncates the torn tail, and computes
    the replay set); the constructor alone does not touch the disk.
    """

    def __init__(self, path, codec: WireCodec):
        self.path = pathlib.Path(path)
        self.codec = codec
        self.stats = WalStats()
        #: Unsettled admits, ``request_id -> message``, in admit order
        #: (dict preserves insertion order).  Maintained live so tests
        #: and the smoke audit can watch obligations drain.
        self.pending: Dict[int, bytes] = {}
        #: Highest key-lifecycle epoch any admit in this log carries
        #: (scanned records and live appends alike).  A restart must
        #: refuse to serve with key material older than this — see
        #: ``SigningService.start`` — or a crash mid-transition would
        #: silently resume on pre-transition shares.
        self.max_epoch_seen = 0
        self._file = None
        self._dirty = False
        self._next_id = 1

    @classmethod
    def open(cls, path, codec: WireCodec) -> "WriteAheadLog":
        """Open (creating if absent), discard any torn tail, and build
        the replay state from the surviving records."""
        wal = cls(path, codec)
        records, good_bytes, torn_bytes = scan_records(wal.path, codec)
        highest_id = 0
        for record in records:
            highest_id = max(highest_id, record.request_id)
            if isinstance(record, WalAdmitRecord):
                wal.pending[record.request_id] = record.message
                wal.max_epoch_seen = max(wal.max_epoch_seen, record.epoch)
            elif isinstance(record, WalDoneRecord):
                if wal.pending.pop(record.request_id, None) is None:
                    wal.stats.orphan_dones += 1
        wal._next_id = highest_id + 1
        wal.stats.recovered = len(wal.pending)
        wal.stats.torn_bytes = torn_bytes
        wal.path.parent.mkdir(parents=True, exist_ok=True)
        wal._file = open(wal.path, "a+b")
        if torn_bytes:
            # The torn tail is a record nobody was ever acknowledged
            # for; drop it so the next append starts on a boundary.
            wal._file.truncate(good_bytes)
        wal._file.seek(0, os.SEEK_END)
        return wal

    @property
    def closed(self) -> bool:
        return self._file is None

    # -- appends (buffered; durable at the next sync) ------------------------
    def append_admit(self, message: bytes, epoch: int = 0) -> int:
        """Record one admitted sign request; returns its request id."""
        request_id = self._next_id
        self._next_id += 1
        self._append(self.codec.encode_wal_record(
            WalAdmitRecord(request_id=request_id, message=message,
                           epoch=epoch)))
        self.pending[request_id] = message
        self.max_epoch_seen = max(self.max_epoch_seen, epoch)
        self.stats.admits += 1
        return request_id

    def append_done(self, request_id: int,
                    signature=None, reason: str = "") -> None:
        """Settle one admit: a signature, or a typed-rejection reason."""
        self._append(self.codec.encode_wal_record(WalDoneRecord(
            request_id=request_id, signature=signature, reason=reason)))
        self.pending.pop(request_id, None)
        self.stats.dones += 1

    def _append(self, payload: bytes) -> None:
        if self._file is None:
            raise SerializationError("write-ahead log is closed")
        self._file.write(frame_record(payload))
        self._dirty = True

    # -- durability barrier ---------------------------------------------------
    def sync(self) -> None:
        """Force buffered appends to disk (no-op when nothing is
        pending — an idle window must not cost an fsync)."""
        if self._file is None or not self._dirty:
            return
        self._file.flush()
        os.fsync(self._file.fileno())
        self._dirty = False
        self.stats.syncs += 1

    def close(self) -> None:
        if self._file is None:
            return
        self.sync()
        self._file.close()
        self._file = None
