"""Multi-tenancy: API keys, per-tenant quotas and quorum policy.

The gateway multiplexes many applications onto one signing core — the
Thetacrypt deployment shape.  Each application is a *tenant*: an API key
resolving to a :class:`TenantConfig` that bounds what the tenant may
take from the shared service (token-bucket request rate, max in-flight
requests) and pins its quorum policy (which rotated signer quorum
produces its windows).  Quota enforcement happens at the *edge*, before
admission: an over-quota request costs one token-bucket check, never a
queue slot or a crypto cycle, and is answered with a typed
:class:`TenantQuotaError` that the HTTP layer maps to ``429`` with a
``Retry-After`` the client can actually honor.

Quotas here are per-process state (the token bucket lives in the
gateway), which is the right scope for this repo's single-front-door
deployment; a multi-gateway deployment would move the bucket into a
shared store and keep this module's interface.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.service.types import ServiceOverloadedError


class TenantQuotaError(ServiceOverloadedError):
    """The tenant's own quota shed the request (token bucket empty, or
    the in-flight cap reached) — the *edge* analogue of the service's
    queue-full shedding, so it subclasses
    :class:`~repro.service.types.ServiceOverloadedError` and every
    load-report path that counts rejections counts these too.
    ``retry_after_s`` is the earliest instant a retry can succeed
    (token-bucket refill time; one window for the in-flight cap)."""

    def __init__(self, tenant: str, reason: str, retry_after_s: float):
        # Bypass ServiceOverloadedError.__init__ — there is no shard
        # yet; the request never reached admission.
        Exception.__init__(
            self, f"tenant {tenant!r} over {reason} quota "
            f"(retry after {retry_after_s:.2f}s)")
        self.tenant = tenant
        self.reason = reason
        self.retry_after_s = retry_after_s
        self.shard_id = -1
        self.depth = 0


class UnknownTenantError(Exception):
    """The presented API key resolves to no tenant (HTTP 401)."""


@dataclass
class TokenBucket:
    """The classic rate limiter: ``burst`` capacity refilled at
    ``rate_rps`` tokens per second.  ``try_acquire`` is O(1) and
    clock-driven (the caller passes ``loop.time()``), so tests can pin
    time and the bucket never needs a background task."""

    rate_rps: float
    burst: float
    tokens: float = field(default=-1.0)
    updated_at: float = field(default=-1.0)

    def __post_init__(self):
        if self.rate_rps <= 0 or self.burst <= 0:
            raise ValueError("rate_rps and burst must be positive")
        if self.tokens < 0:
            self.tokens = float(self.burst)

    def try_acquire(self, now: float) -> float:
        """Take one token.  Returns 0.0 on success, else the seconds
        until one token will be available (the ``Retry-After`` value)."""
        if self.updated_at >= 0:
            elapsed = max(0.0, now - self.updated_at)
            self.tokens = min(float(self.burst),
                              self.tokens + elapsed * self.rate_rps)
        self.updated_at = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        return (1.0 - self.tokens) / self.rate_rps


@dataclass(frozen=True)
class TenantConfig:
    """One tenant's contract with the service.

    * ``rate_rps`` / ``burst`` — token-bucket admission quota at the
      edge.  ``rate_rps=None`` disables rate limiting for the tenant.
    * ``max_inflight`` — concurrent requests the tenant may hold open
      (``None`` = unbounded); the cheap defense against a single tenant
      saturating every shard queue.
    * ``quorum_rotation`` — per-tenant quorum policy mapped onto the
      :class:`~repro.service.shards.ShardPool`: ``None`` routes by
      consistent hash (the default load-spreading policy); an integer
      pins the tenant's windows to the shard whose rotated t+1 quorum
      has that offset, so every signature the tenant receives is
      produced by one fixed signer subset (a compliance-style policy —
      "tenant X's signatures come from quorum k").
    * ``admin`` — whether the key may drive the key-lifecycle routes
      (``/admin/refresh`` / ``/admin/reshare`` / ``/admin/resize``).
    """

    name: str
    api_key: str
    rate_rps: Optional[float] = None
    burst: float = 1.0
    max_inflight: Optional[int] = None
    quorum_rotation: Optional[int] = None
    admin: bool = False


@dataclass
class TenantStats:
    """Edge-side accounting for one tenant (the service-side view lives
    in ``ServiceStats.tenant_accepted`` / ``ShardStats.tenant_requests``
    — the reconciliation the ``/metrics`` test asserts)."""

    #: HTTP requests admitted into the signing service.
    admitted: int = 0
    #: Requests that completed with a result (sign or verify).
    completed: int = 0
    #: Requests shed by the tenant's own token bucket (HTTP 429).
    rejected_quota: int = 0
    #: Requests shed by the tenant's in-flight cap (HTTP 429).
    rejected_inflight: int = 0
    #: Requests admitted past the edge but shed by the service's
    #: bounded queues (HTTP 503).
    shed: int = 0
    #: Requests that failed or expired inside the service (5xx).
    failed: int = 0


class TenantState:
    """Live per-tenant state: the quota clocks plus the counters."""

    def __init__(self, config: TenantConfig):
        self.config = config
        self.bucket = (TokenBucket(config.rate_rps, config.burst)
                       if config.rate_rps is not None else None)
        self.inflight = 0
        self.stats = TenantStats()

    def admit(self, now: float) -> None:
        """Edge admission: charge the quota or raise
        :class:`TenantQuotaError`.  On success the caller MUST pair
        this with :meth:`release` (the in-flight count is a cap, not a
        counter that may drift)."""
        config = self.config
        if config.max_inflight is not None and \
                self.inflight >= config.max_inflight:
            self.stats.rejected_inflight += 1
            raise TenantQuotaError(config.name, "in-flight", 1.0)
        if self.bucket is not None:
            retry_after = self.bucket.try_acquire(now)
            if retry_after > 0.0:
                self.stats.rejected_quota += 1
                raise TenantQuotaError(
                    config.name, "rate", retry_after)
        self.inflight += 1
        self.stats.admitted += 1

    def release(self) -> None:
        self.inflight = max(0, self.inflight - 1)


class TenantRegistry:
    """API key -> :class:`TenantState` resolution for the gateway."""

    def __init__(self, tenants: Iterable[TenantConfig] = ()):
        self._by_key: Dict[str, TenantState] = {}
        self._by_name: Dict[str, TenantState] = {}
        for config in tenants:
            self.add(config)

    def add(self, config: TenantConfig) -> TenantState:
        if config.api_key in self._by_key:
            raise ValueError(
                f"duplicate API key for tenant {config.name!r}")
        if config.name in self._by_name:
            raise ValueError(f"duplicate tenant name {config.name!r}")
        state = TenantState(config)
        self._by_key[config.api_key] = state
        self._by_name[config.name] = state
        return state

    def resolve(self, api_key: Optional[str]) -> TenantState:
        """The tenant behind ``api_key``; raises
        :class:`UnknownTenantError` for a missing or unknown key."""
        if api_key is None or api_key not in self._by_key:
            raise UnknownTenantError("unknown or missing API key")
        return self._by_key[api_key]

    def states(self) -> Dict[str, TenantState]:
        """All tenants by name (stable iteration for ``/metrics``)."""
        return dict(self._by_name)

    @staticmethod
    def retry_after_header(retry_after_s: float) -> str:
        """``Retry-After`` is an integer number of seconds; round up so
        an honoring client never retries early."""
        return str(max(1, int(math.ceil(retry_after_s))))
