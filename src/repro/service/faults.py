"""Failure injection for the signing service.

A fault injector is any callable

    inject(shard_id, signer_index, message, partial) -> partial

applied to every partial signature a shard worker produces.  Returning a
different :class:`~repro.core.keys.PartialSignature` models a
compromised or buggy signer/shard; returning the input unchanged models
honesty.  The service applies the injector on the fallback path too —
robustness must come from ``locate_invalid`` + per-share filtering, not
from the fault conveniently disappearing on retry.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.core.keys import PartialSignature


class WorkerCrashFault:
    """Kill the executing worker *process* the first time it signs.

    Models a worker OOM-killed or segfaulting mid-window: the process
    dies hard (``os._exit``, no exception propagation, no cleanup), the
    executor breaks, and :class:`~repro.service.workers.WorkerPool` must
    detect the crash and resubmit the window to a rebuilt pool.

    Crash-once bookkeeping cannot live in instance state — the fault
    object is copied into every worker process, and the resubmitted job
    lands in a *fresh* process with a fresh copy.  A sentinel file
    marks "already crashed" across process generations instead: the
    first worker to fire creates it and dies; the retried job sees it
    and proceeds honestly.
    """

    def __init__(self, sentinel_path, signer_index: Optional[int] = None):
        self.sentinel_path = str(sentinel_path)
        self.signer_index = signer_index

    def __call__(self, shard_id: int, signer_index: int, message: bytes,
                 partial: PartialSignature) -> PartialSignature:
        import os
        if self.signer_index is not None and \
                signer_index != self.signer_index:
            return partial
        if not os.path.exists(self.sentinel_path):
            with open(self.sentinel_path, "w") as sentinel:
                sentinel.write("crashed\n")
            os._exit(1)
        return partial


class CorruptSignerFault:
    """Forge the partial signatures of one signer on one shard.

    The forged partial is ``(z^2, r)`` — a well-formed group element
    pair that fails Share-Verify, i.e. an adversarial contribution
    rather than a transport error.  ``shard_id=None`` corrupts the
    signer on every shard (a compromised server); ``messages`` restricts
    the fault to specific messages (a targeted attack).
    """

    def __init__(self, signer_index: int, shard_id: Optional[int] = None,
                 messages: Optional[Set[bytes]] = None):
        self.signer_index = signer_index
        self.shard_id = shard_id
        self.messages = messages
        #: Every (shard, message) pair actually corrupted, for tests.
        self.injected: Set[Tuple[int, bytes]] = set()

    def __call__(self, shard_id: int, signer_index: int, message: bytes,
                 partial: PartialSignature) -> PartialSignature:
        if signer_index != self.signer_index:
            return partial
        if self.shard_id is not None and shard_id != self.shard_id:
            return partial
        if self.messages is not None and message not in self.messages:
            return partial
        self.injected.add((shard_id, message))
        return PartialSignature(
            index=partial.index, z=partial.z * partial.z, r=partial.r)


class ChurnFault:
    """Random key-lifecycle churn against a *live* service.

    Not a partial-signature injector: this drives the other axis of
    robustness — epoch transitions and ring resizes fired at arbitrary
    moments while traffic flows.  Each :meth:`step` picks one of:

    * **refresh** — proactive share refresh (new epoch, same committee);
    * **reshare** — rotate one signer out and a fresh index in (the
      committee drifts over time, threshold unchanged);
    * **resize** — re-ring to a random shard count within
      ``[min_shards, max_shards]``.

    Every action is recorded in :attr:`actions` so tests and the smoke
    harness can assert the mix actually exercised all three.
    """

    def __init__(self, rng, min_shards: int = 1, max_shards: int = 8):
        if min_shards < 1 or max_shards < min_shards:
            raise ValueError("need 1 <= min_shards <= max_shards")
        self.rng = rng
        self.min_shards = min_shards
        self.max_shards = max_shards
        #: ``(action, detail)`` pairs, in firing order.
        self.actions = []

    async def step(self, service) -> str:
        """Fire one random lifecycle action against ``service``;
        returns the action name."""
        action = self.rng.choice(["refresh", "reshare", "resize"])
        if action == "refresh":
            await service.refresh(rng=self.rng)
            self.actions.append(("refresh", service.handle.epoch))
        elif action == "reshare":
            params = service.handle.scheme.params
            current = sorted(service.handle.shares)
            leaver = self.rng.choice(current)
            joiner = max(max(current), params.n) + 1
            new_indices = sorted(set(current) - {leaver} | {joiner})
            await service.reshare(params.t, new_indices, rng=self.rng)
            self.actions.append(("reshare", (leaver, joiner)))
        else:
            num_shards = self.rng.randint(self.min_shards, self.max_shards)
            migrated = await service.resize(num_shards)
            self.actions.append(("resize", (num_shards, migrated)))
        return action
