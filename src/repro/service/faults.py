"""Failure injection for the signing service.

A fault injector is any callable

    inject(shard_id, signer_index, message, partial) -> partial

applied to every partial signature a shard worker produces.  Returning a
different :class:`~repro.core.keys.PartialSignature` models a
compromised or buggy signer/shard; returning the input unchanged models
honesty.  The service applies the injector on the fallback path too —
robustness must come from ``locate_invalid`` + per-share filtering, not
from the fault conveniently disappearing on retry.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

from repro.core.keys import PartialSignature


class CorruptSignerFault:
    """Forge the partial signatures of one signer on one shard.

    The forged partial is ``(z^2, r)`` — a well-formed group element
    pair that fails Share-Verify, i.e. an adversarial contribution
    rather than a transport error.  ``shard_id=None`` corrupts the
    signer on every shard (a compromised server); ``messages`` restricts
    the fault to specific messages (a targeted attack).
    """

    def __init__(self, signer_index: int, shard_id: Optional[int] = None,
                 messages: Optional[Set[bytes]] = None):
        self.signer_index = signer_index
        self.shard_id = shard_id
        self.messages = messages
        #: Every (shard, message) pair actually corrupted, for tests.
        self.injected: Set[Tuple[int, bytes]] = set()

    def __call__(self, shard_id: int, signer_index: int, message: bytes,
                 partial: PartialSignature) -> PartialSignature:
        if signer_index != self.signer_index:
            return partial
        if self.shard_id is not None and shard_id != self.shard_id:
            return partial
        if self.messages is not None and message not in self.messages:
            return partial
        self.injected.add((shard_id, message))
        return PartialSignature(
            index=partial.index, z=partial.z * partial.z, r=partial.r)
