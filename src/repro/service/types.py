"""Request/response types, typed errors and stats for the signing service.

The service promises *typed* failure modes: an overloaded shard rejects
at admission (:class:`ServiceOverloadedError`, the load-shedding path), a
stopped service rejects immediately (:class:`ServiceClosedError`), and a
sign request that cannot reach t+1 valid partial signatures even through
the robust fallback fails with :class:`RequestFailedError`.  Anything
else is a bug, not an error code.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.keys import Signature
from repro.errors import ReproError
from repro.net.metrics import TrafficCounter


class ServiceError(ReproError):
    """Base class for signing-service errors."""


class ServiceOverloadedError(ServiceError):
    """Admission control shed the request (bounded queue was full)."""

    def __init__(self, shard_id: int, depth: int):
        super().__init__(
            f"shard {shard_id} queue full ({depth} pending requests)")
        self.shard_id = shard_id
        self.depth = depth


class ServiceClosedError(ServiceError):
    """The service is not accepting requests (not started, or stopped)."""


class RequestFailedError(ServiceError):
    """A sign request could not be completed (not enough valid shares)."""


class StaleEpochError(ServiceError):
    """An executor holding epoch-e key material received a job stamped
    with a different epoch.  Signing with dead shares must never happen
    silently: the job is refused and the dispatcher re-warms the worker
    (``update_handle``) before resubmitting."""

    def __init__(self, job_epoch: int, handle_epoch: int):
        super().__init__(
            f"job is stamped epoch {job_epoch} but this worker holds "
            f"epoch {handle_epoch} key material")
        self.job_epoch = job_epoch
        self.handle_epoch = handle_epoch

    def __reduce__(self):
        # Raised inside worker processes and pickled back through the
        # executor; the default reduction replays ``args`` (the message
        # string) into our two-int signature and fails to unpickle.
        return (StaleEpochError, (self.job_epoch, self.handle_epoch))


class RequestExpiredError(ServiceError):
    """The request's end-to-end deadline passed before its window ran;
    it was shed instead of served late (a signature delivered after the
    caller's deadline is wasted crypto — worse, under load it steals
    window capacity from requests that can still make theirs)."""

    def __init__(self, shard_id: int, overdue_ms: float):
        super().__init__(
            f"request deadline exceeded by {overdue_ms:.1f}ms before "
            f"shard {shard_id} could serve it")
        self.shard_id = shard_id
        self.overdue_ms = overdue_ms


class WorkerCrashError(ServiceError):
    """A window job kept landing on crashing worker processes (the pool
    rebuilds and resubmits on a crash; this fires only when the retry
    budget is exhausted, or the pool is not running)."""


class TransportError(ServiceError):
    """The remote-worker tier could not serve a job: every configured
    endpoint stayed unreachable past the dial deadline, or the retry
    budget was exhausted on dropped connections (each drop is detected
    and the job resubmitted first — this is the gave-up error, the
    socket analogue of :class:`WorkerCrashError`)."""


class HandshakeError(TransportError):
    """A remote worker answered the HELLO with a different protocol
    version, backend or service-context digest.  This is
    misprovisioning, not a transient fault — the pool quarantines the
    endpoint for its lifetime, and raises this (after a single
    round-robin pass, not ``dial_deadline_s`` of retries) once every
    configured endpoint has refused."""


class RemoteJobError(TransportError):
    """A remote worker reported a job-level error (an ``E`` frame): the
    frame arrived intact but the payload could not be decoded or
    executed.  Resubmitting the same bytes cannot help, so the pool
    fails the job instead of retrying."""


class RequestKind(enum.Enum):
    SIGN = "sign"
    VERIFY = "verify"


@dataclass(frozen=True)
class SignResult:
    """Outcome of one sign request."""

    message: bytes
    signature: Signature
    shard_id: int
    batch_size: int
    #: True when the window check flagged this request and it was
    #: re-combined through the robust per-share path.
    fallback: bool
    latency_ms: float


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of one verify request."""

    message: bytes
    valid: bool
    shard_id: int
    batch_size: int
    latency_ms: float


@dataclass
class ShardStats:
    """Per-shard scheduling and amortization accounting."""

    shard_id: int
    requests: int = 0
    sign_requests: int = 0
    verify_requests: int = 0
    windows: int = 0
    full_windows: int = 0
    max_batch_seen: int = 0
    #: Sum of window sizes; ``requests_per_window`` derives the mean.
    batched_requests: int = 0
    faults_localized: int = 0
    fallback_combines: int = 0
    #: Requests shed at window formation because their deadline passed
    #: while they sat in the queue (:class:`RequestExpiredError`).
    expired: int = 0
    #: Queued requests that arrived on this shard by live migration —
    #: re-routed off a departing shard during a ``resize`` instead of
    #: being stranded there (counted at the destination).
    migrated: int = 0
    #: Requests this shard served per tenant (requests carrying no
    #: tenant label — library callers, WAL replay — are not counted
    #: here; the aggregate counters above cover them).
    tenant_requests: Dict[str, int] = field(default_factory=dict)
    busy_ms: float = 0.0

    @property
    def requests_per_window(self) -> float:
        return self.batched_requests / self.windows if self.windows else 0.0


@dataclass
class WorkerPoolStats:
    """Worker-tier accounting, shared by the process pool
    (:class:`~repro.service.workers.WorkerPool`) and the TCP remote
    pool (:class:`~repro.service.transport.RemoteWorkerPool`) — the two
    tiers serve one contract, so they report one stats shape."""

    workers: int = 0
    #: Window jobs that completed on a worker (process or remote).
    jobs: int = 0
    #: Worker deaths observed: a process death poisons one executor; a
    #: remote worker's death shows as a dropped connection mid-job.
    crashes: int = 0
    #: Jobs resubmitted (to a rebuilt pool / another endpoint) after a
    #: crash or connection drop.
    resubmissions: int = 0
    #: Successful re-dials after a connection was lost (TCP tier only;
    #: the process tier rebuilds executors instead of reconnecting).
    reconnects: int = 0
    #: Jobs abandoned because a *connected* worker did not answer
    #: within the per-job timeout (TCP tier only) — the hung-worker
    #: detector; each one also discards the connection and resubmits.
    timeouts: int = 0
    #: Circuit-breaker openings: an endpoint quarantined after repeated
    #: dial/job failures instead of staying in the round-robin.
    breaker_trips: int = 0
    #: Live context re-warms: workers handed new-epoch key material in
    #: place (executor rebuild on the process tier, a ``C`` context-push
    #: frame on the TCP tier) instead of being torn down.
    rewarms: int = 0
    #: High-water mark of concurrently in-flight requests on one
    #: connection (TCP tier only) — evidence the pipelined framing is
    #: actually holding a window open, not serializing at depth 1.
    max_inflight: int = 0


def _percentile(samples, q: float) -> float:
    """Nearest-rank percentile (same convention as the load generator)."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = max(1, int(round(q / 100.0 * len(ordered))))
    return ordered[min(rank, len(ordered)) - 1]


@dataclass
class EpochStats:
    """Key-lifecycle accounting: what epoch transitions cost.

    The contract ``begin_epoch`` is measured against: no request is
    *rejected* because of a transition (admission keeps queueing while
    shards drain), so the entire lifecycle cost is a bounded pause —
    recorded per transition — plus the queued requests carried across
    the swap and served under the new shares.
    """

    #: Current key-lifecycle generation.
    epoch: int = 0
    #: Completed transitions, by kind.
    transitions: int = 0
    refreshes: int = 0
    reshares: int = 0
    recoveries: int = 0
    #: Shard-pool resizes (ring changes are lifecycle events too: they
    #: take the same all-shards barrier as a key swap).
    resizes: int = 0
    #: Requests that were sitting in shard queues at swap time and were
    #: served under the new epoch's key material.
    requests_carried: int = 0
    #: Wall-clock ms each barrier held the shards paused.
    pauses_ms: list = field(default_factory=list)

    @property
    def pause_p99_ms(self) -> float:
        return _percentile(self.pauses_ms, 99.0)

    @property
    def pause_max_ms(self) -> float:
        return max(self.pauses_ms) if self.pauses_ms else 0.0


@dataclass
class ServiceStats:
    """Aggregated service telemetry (admission + shards + traffic)."""

    accepted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    #: Requests shed past admission because their deadline expired.
    expired: int = 0
    #: Unacknowledged WAL entries replayed at start-up.
    recovered: int = 0
    #: Admissions per tenant label (the service-side half of the
    #: multi-tenant accounting; the edge-side half — quota rejections
    #: the service never sees — lives in
    #: :class:`~repro.service.tenants.TenantStats`).
    tenant_accepted: Dict[str, int] = field(default_factory=dict)
    ingress: TrafficCounter = field(default_factory=TrafficCounter)
    egress: TrafficCounter = field(default_factory=TrafficCounter)
    shards: Dict[int, ShardStats] = field(default_factory=dict)
    #: Present only when the service runs the process-parallel tier.
    workers: Optional[WorkerPoolStats] = None
    #: Key-lifecycle accounting (epoch transitions, barrier pauses).
    epochs: EpochStats = field(default_factory=EpochStats)

    def summary(self) -> Dict[str, object]:
        summary = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "expired": self.expired,
            "recovered": self.recovered,
            "ingress": self.ingress.summary(),
            "egress": self.egress.summary(),
            "windows": sum(s.windows for s in self.shards.values()),
            "faults_localized": sum(
                s.faults_localized for s in self.shards.values()),
            "mean_batch": (
                sum(s.batched_requests for s in self.shards.values())
                / max(1, sum(s.windows for s in self.shards.values()))),
        }
        if self.workers is not None:
            summary["worker_jobs"] = self.workers.jobs
            summary["worker_crashes"] = self.workers.crashes
            summary["worker_reconnects"] = self.workers.reconnects
            summary["worker_timeouts"] = self.workers.timeouts
            summary["worker_breaker_trips"] = self.workers.breaker_trips
        if self.tenant_accepted:
            summary["tenants"] = dict(self.tenant_accepted)
        if self.epochs.transitions or self.epochs.resizes:
            summary["epoch"] = self.epochs.epoch
            summary["epoch_transitions"] = self.epochs.transitions
            summary["epoch_pause_p99_ms"] = round(
                self.epochs.pause_p99_ms, 3)
            summary["requests_carried"] = self.epochs.requests_carried
        return summary


@dataclass
class PendingRequest:
    """A queued request: payload plus its completion future and clock."""

    kind: RequestKind
    message: bytes
    enqueued_at: float
    future: "object"
    signature: Optional[Signature] = None
    #: Loop-clock instant after which the request is shed instead of
    #: served (None = no deadline configured).
    deadline: Optional[float] = None
    #: Write-ahead-log id of the admit record (None when the WAL is
    #: off, or for verify requests — stateless reads are not logged).
    request_id: Optional[int] = None
    #: Tenant label for multi-tenant accounting (None for library
    #: callers and WAL replay — the label is edge metadata, not an
    #: obligation, so it is deliberately NOT persisted).
    tenant: Optional[str] = None
