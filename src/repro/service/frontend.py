"""The service frontend: admission control, backpressure, lifecycle.

``SigningService`` is the single entry point: ``await service.sign(msg)``
/ ``await service.verify(msg, sig)`` from any number of client
coroutines.  Admission is O(1): route by consistent hash, try a
non-blocking put into the shard's bounded queue, and either return a
future or shed the request with a typed
:class:`~repro.service.types.ServiceOverloadedError` — the service never
buffers unboundedly and never blocks the caller on a full queue
(backpressure is explicit, so an open-loop client sees rejections rather
than silently growing latency).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.core.keys import Signature
from repro.core.scheme import ServiceHandle
from repro.serialization import WireCodec
from repro.service.shards import ShardPool
from repro.service.types import (
    PendingRequest, RequestExpiredError, RequestKind, ServiceClosedError,
    ServiceError, ServiceOverloadedError, ServiceStats, SignResult,
    VerifyResult,
)
from repro.service.wal import WriteAheadLog


@dataclass
class ServiceConfig:
    """Scheduling policy knobs.

    * ``num_shards`` — worker count; traffic partitions by consistent
      hashing on the message digest.
    * ``max_batch`` / ``max_wait_ms`` — the batch-window close triggers
      (count or age, whichever first).
    * ``queue_depth`` — per-shard admission bound; beyond it requests
      are shed with :class:`ServiceOverloadedError`.
    * ``workers`` — worker *processes* for the window crypto.  0 (the
      default) runs every window on the event loop; N > 0 dispatches
      windows to a shared :class:`~repro.service.workers.WorkerPool` of
      N warm processes, so up to min(num_shards, N) windows run in
      parallel on separate cores.
    * ``remote_workers`` — the multi-*machine* tier: ``host:port``
      addresses of standalone TCP workers
      (``python -m repro.service.remote_worker``), dispatched through
      :class:`~repro.service.transport.RemoteWorkerPool`.  Mutually
      exclusive with ``workers`` (a window has one execution tier).
    """

    num_shards: int = 2
    max_batch: int = 16
    max_wait_ms: float = 5.0
    queue_depth: int = 256
    #: Process-parallel tier: 0 = in-process, N = pool of N processes.
    workers: int = 0
    #: TCP tier: "host:port" addresses of remote workers provisioned
    #: with the same service context (the HELLO handshake enforces the
    #: match).  Fault injectors are not shipped over the wire — a
    #: remote worker configures its own (e.g. ``--crash-sentinel``).
    remote_workers: Sequence[str] = ()
    #: Optional fault injector (see :mod:`repro.service.faults`).  With
    #: ``workers > 0`` it is applied inside the worker processes, so any
    #: state it keeps (e.g. ``CorruptSignerFault.injected``) lives there.
    fault_injector: Optional[Callable] = None
    #: RNG driving the small-exponent batching coins (tests pin it).
    #: Worker processes draw their own coins — an adversary must not be
    #: able to predict them from a parent-visible seed anyway.
    rng: Optional[object] = None
    #: Durability: path of the write-ahead log file.  None (the
    #: default) keeps the pre-WAL behavior — admitted requests die with
    #: the process.  Set, every admitted *sign* request is logged
    #: before its future resolves and replayed on the next
    #: ``start()`` against the same path (see
    #: :mod:`repro.service.wal`; verify requests are stateless reads
    #: and are not logged).
    wal_path: Optional[object] = None
    #: End-to-end deadline per request, seconds.  A request still
    #: queued when its deadline passes is shed with a typed
    #: :class:`~repro.service.types.RequestExpiredError` instead of
    #: signed late.  None disables deadlines.
    request_deadline_s: Optional[float] = None
    #: Hung-worker bound for the TCP tier: a connected remote worker
    #: that does not answer a window job within this many seconds is
    #: treated like a dropped connection (discard, resubmit elsewhere).
    remote_job_timeout_s: float = 60.0
    #: Pipelining window for the TCP tier: how many requests each
    #: remote-worker connection may hold in flight at once (answers are
    #: matched by the frame header's request id, so completions may
    #: arrive out of order).  Depth 1 (the default) reproduces the old
    #: one-request-per-turn protocol; depth > 1 additionally ships
    #: windows as per-message request jobs so the *worker* accumulates
    #: batches across every connected dispatcher.
    pipeline_depth: int = 1
    #: Pre-shared key for the TCP tier's HELLO authenticator
    #: (``HMAC-SHA256(psk, context digest)``, both directions).  Both
    #: ends must configure the same key — or neither; a mismatch is
    #: refused as misprovisioning.  str or bytes.
    remote_psk: Optional[object] = None
    #: Scheduled proactive share refresh: every this-many seconds the
    #: running service performs a live refresh through the
    #: ``begin_epoch`` barrier (what :class:`ChurnFault` does randomly,
    #: as deployment policy — the proactive-security model assumes a
    #: bounded exposure window per share, and this knob *is* that
    #: bound).  None (the default) never refreshes on a timer.  The
    #: DKG math runs outside the barrier and transitions serialize
    #: with any concurrent admin-driven lifecycle call, so load sees
    #: only the bounded pause, never a rejection.
    refresh_every_s: Optional[float] = None


class SigningService:
    """Long-lived async facade over a :class:`ServiceHandle`."""

    def __init__(self, handle: ServiceHandle,
                 config: Optional[ServiceConfig] = None):
        self.handle = handle
        self.config = config or ServiceConfig()
        self.stats = ServiceStats()
        #: The durability log, open while running (None when
        #: ``config.wal_path`` is unset).
        self.wal: Optional[WriteAheadLog] = None
        self._pool: Optional[ShardPool] = None
        self._outstanding = 0
        #: Serializes key-lifecycle transitions: a scheduled refresh
        #: firing while an admin-driven reshare is mid-barrier would
        #: otherwise compute its new handle from a stale epoch and be
        #: refused by the epoch-advance check.  Transitions queue here
        #: instead (created lazily — it must belong to the running
        #: loop).
        self._transition_lock: Optional[asyncio.Lock] = None
        self._refresh_task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._pool is not None

    async def start(self) -> None:
        """Start the shard pool; when a WAL is configured, open it and
        replay every unacknowledged admit through the normal signing
        path before returning — a restarted service finishes its
        predecessor's obligations before taking new ones."""
        if self.running:
            raise ServiceClosedError("service already started")
        config = self.config
        if config.wal_path is not None:
            self.wal = WriteAheadLog.open(
                config.wal_path, WireCodec(self.handle.scheme.group))
            if self.wal.max_epoch_seen > self.handle.epoch:
                # A crash mid-transition must not silently resume on
                # pre-transition shares: the log proves a newer epoch
                # was already admitting, so this handle's key material
                # is dead.  Refuse; restart with the post-transition
                # context (which replays the same obligations).
                stale_from = self.wal.max_epoch_seen
                self.wal.close()
                self.wal = None
                raise ServiceError(
                    f"write-ahead log {config.wal_path} carries admits "
                    f"from key-lifecycle epoch {stale_from}, but this "
                    f"service holds epoch-{self.handle.epoch} key "
                    f"material — refusing to sign with stale shares")
        self._pool = ShardPool(
            self.handle, config.num_shards, config.max_batch,
            config.max_wait_ms, config.queue_depth,
            fault_injector=config.fault_injector, rng=config.rng,
            workers=config.workers, remote_workers=config.remote_workers,
            wal=self.wal, remote_job_timeout_s=config.remote_job_timeout_s,
            pipeline_depth=config.pipeline_depth,
            remote_psk=config.remote_psk)
        self._pool.start()
        self._transition_lock = asyncio.Lock()
        if self.wal is not None and self.wal.pending:
            await self._replay(dict(self.wal.pending))
        if config.refresh_every_s is not None:
            self._refresh_task = asyncio.get_running_loop().create_task(
                self._scheduled_refresh(config.refresh_every_s),
                name="scheduled-refresh")

    async def _replay(self, pending) -> None:
        """Re-admit recovered obligations.  They bypass load shedding
        (``queue.put``, not ``put_nowait``): these requests were already
        accepted — by a previous incarnation — and a durable obligation
        is not shed, it is served."""
        loop = asyncio.get_running_loop()
        futures = []
        for request_id, message in pending.items():
            request = PendingRequest(
                kind=RequestKind.SIGN, message=message,
                enqueued_at=loop.time(), future=loop.create_future(),
                deadline=self._deadline_from(loop),
                request_id=request_id)
            await self._pool.worker_for(message).queue.put(request)
            self._register(request)
            self.stats.recovered += 1
            futures.append(request.future)
        # Replay is synchronous with start-up: the caller gets a
        # service whose inherited obligations are already settled.
        await asyncio.gather(*futures, return_exceptions=True)

    async def _scheduled_refresh(self, every_s: float) -> None:
        """The ``refresh_every_s`` driver: a live proactive refresh on
        a fixed cadence, for as long as the service runs.  Runs as a
        background task; ``stop()`` cancels it before draining."""
        while True:
            await asyncio.sleep(every_s)
            if not self.running:
                return
            await self.refresh(rng=self.config.rng)

    async def stop(self) -> None:
        """Graceful shutdown: finish every accepted request, then halt."""
        if not self.running:
            return
        if self._refresh_task is not None:
            # Cancel the refresh cadence first: a transition firing
            # while the pool is being torn down would race the drain.
            self._refresh_task.cancel()
            try:
                await self._refresh_task
            except asyncio.CancelledError:
                pass
            self._refresh_task = None
        pool, self._pool = self._pool, None   # reject new admissions now
        while self._outstanding:
            await asyncio.sleep(0.001)
        await pool.stop()
        self.stats.shards = pool.stats()
        if pool.worker_pool is not None:
            self.stats.workers = pool.worker_pool.stats
        if self.wal is not None:
            self.wal.close()
            self.wal = None

    async def __aenter__(self) -> "SigningService":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- key lifecycle -------------------------------------------------------
    async def begin_epoch(self, new_handle: ServiceHandle) -> float:
        """Transition the live service to new-epoch key material with
        zero lifecycle rejections; returns the barrier pause in ms.

        The barrier: acquire every shard's lifecycle lock (draining all
        in-flight windows — admission keeps queueing throughout, so
        nothing is shed because of the transition), swap the handle and
        every shard's quorum, re-provision the worker tier (executor
        rebuild or ``C`` context push), then release.  Requests queued
        across the swap are served under the new shares — byte-identical
        signatures, because a transition provably preserves the master
        key (which is also validated here, along with the epoch being
        exactly one step forward).

        Transitions serialize: a caller that brings a pre-computed
        handle while another transition is mid-flight waits its turn —
        and is then refused by the epoch-advance check if its handle
        was derived from the superseded epoch (compute the handle under
        the same serialization by using the :meth:`refresh` /
        :meth:`reshare` wrappers instead).
        """
        async with self._serialized_transitions():
            return await self._begin_epoch(new_handle)

    def _serialized_transitions(self):
        if self._transition_lock is None:
            raise ServiceClosedError("service is not running")
        return self._transition_lock

    async def _begin_epoch(self, new_handle: ServiceHandle) -> float:
        if not self.running:
            raise ServiceClosedError("service is not running")
        if new_handle.epoch != self.handle.epoch + 1:
            raise ServiceError(
                f"epoch transition must advance by exactly one "
                f"(current {self.handle.epoch}, offered "
                f"{new_handle.epoch})")
        if (new_handle.public_key.to_bytes()
                != self.handle.public_key.to_bytes()):
            raise ServiceError(
                "epoch transition changes the public key — a "
                "refresh/reshare must preserve it")
        loop = asyncio.get_running_loop()
        started = loop.time()
        paused = await self._pool.pause_all()
        try:
            carried = self._pool.queued()
            self.handle = new_handle
            self._pool.swap_handle(new_handle)
            if self._pool.worker_pool is not None:
                await self._pool.worker_pool.update_handle(new_handle)
        finally:
            self._pool.resume_all(paused)
        pause_ms = (loop.time() - started) * 1000.0
        epochs = self.stats.epochs
        epochs.epoch = new_handle.epoch
        epochs.transitions += 1
        epochs.requests_carried += carried
        epochs.pauses_ms.append(pause_ms)
        return pause_ms

    async def refresh(self, rng=None, adversary=None) -> float:
        """Proactive share refresh as a live epoch transition: run the
        refresh protocol (on this loop, *outside* the barrier — only
        the swap pauses shards), then the epoch swap.  The new handle
        is derived *under* the transition lock, so a refresh queued
        behind another transition re-derives from the then-current
        epoch instead of being refused."""
        async with self._serialized_transitions():
            pause_ms = await self._begin_epoch(
                self.handle.refreshed(rng=rng, adversary=adversary))
        self.stats.epochs.refreshes += 1
        return pause_ms

    async def reshare(self, new_t: int, new_indices,
                      rng=None, adversary=None) -> float:
        """Reshare to a new ``(new_t, new_indices)`` committee (signer
        join/leave) as a live epoch transition."""
        async with self._serialized_transitions():
            pause_ms = await self._begin_epoch(self.handle.reshared(
                new_t, new_indices, rng=rng, adversary=adversary))
        self.stats.epochs.reshares += 1
        return pause_ms

    async def retire_signer(self, index: int) -> float:
        """Drop a crashed/compromised signer's share from the live
        quorum rotation (its verification key stays, so
        :meth:`recover_signer` can later re-derive the share)."""
        async with self._serialized_transitions():
            return await self._begin_epoch(
                self.handle.without_signer(index))

    async def recover_signer(self, index: int) -> float:
        """Re-derive a retired signer's share from t+1 helpers and fold
        the player back into the live quorum rotation."""
        async with self._serialized_transitions():
            pause_ms = await self._begin_epoch(
                self.handle.with_recovered(index))
        self.stats.epochs.recoveries += 1
        return pause_ms

    async def resize(self, num_shards: int) -> int:
        """Live shard-ring resize; returns the number of queued
        requests migrated between shards (none are dropped — see
        :meth:`ShardPool.resize <repro.service.shards.ShardPool.resize>`)."""
        if not self.running:
            raise ServiceClosedError("service is not running")
        loop = asyncio.get_running_loop()
        started = loop.time()
        async with self._serialized_transitions():
            migrated = await self._pool.resize(num_shards)
        self.config.num_shards = num_shards
        epochs = self.stats.epochs
        epochs.resizes += 1
        epochs.requests_carried += migrated
        epochs.pauses_ms.append((loop.time() - started) * 1000.0)
        return migrated

    # -- admission ----------------------------------------------------------
    def _admit(self, request: PendingRequest,
               rotation: Optional[int] = None) -> None:
        if not self.running:
            raise ServiceClosedError("service is not running")
        # Routing policy: consistent hash by default; a pinned quorum
        # rotation (the per-tenant policy) routes to the shard whose
        # rotated signer quorum has that offset.
        worker = (self._pool.worker_for(request.message)
                  if rotation is None
                  else self._pool.worker_at(rotation))
        try:
            worker.queue.put_nowait(request)
        except asyncio.QueueFull:
            self.stats.rejected += 1
            raise ServiceOverloadedError(
                worker.shard_id, worker.queue.qsize()) from None
        if self.wal is not None and request.kind is RequestKind.SIGN:
            # Logged only past backpressure: a shed request was never
            # an obligation.  The append is buffered; the shard worker
            # fsyncs once per closed window, before the window's crypto
            # runs, so the admit is durable before any completion.
            request.request_id = self.wal.append_admit(
                request.message, epoch=self.handle.epoch)
        self.stats.accepted += 1
        if request.tenant is not None:
            self.stats.tenant_accepted[request.tenant] = \
                self.stats.tenant_accepted.get(request.tenant, 0) + 1
        self._register(request)

    def _register(self, request: PendingRequest) -> None:
        self._outstanding += 1
        request.future.add_done_callback(
            lambda future, request=request: self._on_done(request, future))

    def _on_done(self, request: PendingRequest,
                 future: asyncio.Future) -> None:
        self._outstanding -= 1
        if future.cancelled():
            self.stats.failed += 1
            self._settle(request, reason="cancelled by caller")
            return
        exc = future.exception()
        if exc is not None:
            if isinstance(exc, RequestExpiredError):
                self.stats.expired += 1
            else:
                self.stats.failed += 1
            self._settle(request, reason=f"{type(exc).__name__}: {exc}")
        else:
            self.stats.completed += 1
            result = future.result()
            self.stats.egress.record(result)
            self._settle(request,
                         signature=getattr(result, "signature", None))

    def _settle(self, request: PendingRequest, signature=None,
                reason: str = "") -> None:
        """Append the WAL done record for a logged request.  Every
        resolution path settles — a failure or expiry is an *answered*
        obligation and must not replay forever."""
        if self.wal is None or request.request_id is None or \
                self.wal.closed:
            return
        self.wal.append_done(request.request_id, signature=signature,
                             reason=reason)

    def _deadline_from(self, loop) -> Optional[float]:
        if self.config.request_deadline_s is None:
            return None
        return loop.time() + self.config.request_deadline_s

    # -- the request API ----------------------------------------------------
    async def sign(self, message: bytes, *,
                   tenant: Optional[str] = None,
                   rotation: Optional[int] = None) -> SignResult:
        """Request a full threshold signature on ``message``.

        ``tenant`` labels the request for multi-tenant accounting;
        ``rotation`` pins it to the shard whose rotated quorum has that
        offset instead of routing by consistent hash (the per-tenant
        quorum policy — see
        :class:`~repro.service.tenants.TenantConfig`).

        Raises :class:`ServiceOverloadedError` (shed at admission),
        :class:`ServiceClosedError`, :class:`RequestFailedError`
        (fewer than t+1 valid shares even via the robust fallback), or
        :class:`~repro.service.types.RequestExpiredError` when
        ``config.request_deadline_s`` passed before the window ran.
        """
        loop = asyncio.get_running_loop()
        request = PendingRequest(
            kind=RequestKind.SIGN, message=message,
            enqueued_at=loop.time(), future=loop.create_future(),
            deadline=self._deadline_from(loop), tenant=tenant)
        self.stats.ingress.record(message)
        self._admit(request, rotation=rotation)
        return await request.future

    async def verify(self, message: bytes, signature: Signature, *,
                     tenant: Optional[str] = None,
                     rotation: Optional[int] = None) -> VerifyResult:
        """Request verification of ``(message, signature)``."""
        loop = asyncio.get_running_loop()
        request = PendingRequest(
            kind=RequestKind.VERIFY, message=message,
            enqueued_at=loop.time(), future=loop.create_future(),
            signature=signature, deadline=self._deadline_from(loop),
            tenant=tenant)
        self.stats.ingress.record((message, signature))
        self._admit(request, rotation=rotation)
        return await request.future

    # -- telemetry ----------------------------------------------------------
    def snapshot_stats(self) -> ServiceStats:
        """Current stats (shard breakdown live while running)."""
        if self._pool is not None:
            self.stats.shards = self._pool.stats()
            if self._pool.worker_pool is not None:
                self.stats.workers = self._pool.worker_pool.stats
        return self.stats
