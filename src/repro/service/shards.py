"""The shard pool: consistent hashing, signer quorums, window workers.

Each shard is one asyncio worker with a bounded queue, a
:class:`~repro.service.accumulator.BatchAccumulator`, and a rotated t+1
signer quorum, so signing load spreads across all n servers while any
single window is produced by one quorum (one Lagrange coefficient set,
memoized across windows).  Requests are routed by **consistent hashing**
on the SHA-256 digest of the message: adding or removing a shard remaps
only ~1/N of the key space, which is what lets a deployment resize the
pool without a global reshuffle (and is why the ring, not ``hash % N``,
is used even in this in-process simulation).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.keys import PartialSignature
from repro.core.scheme import ServiceHandle
from repro.service.accumulator import BatchAccumulator
from repro.service.types import (
    PendingRequest, RequestFailedError, RequestKind, ShardStats, SignResult,
    VerifyResult,
)

#: Virtual nodes per shard on the hash ring; enough that load imbalance
#: between shards stays within a few percent.
VNODES_PER_SHARD = 64


def _ring_position(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping message digests to shard ids."""

    def __init__(self, shard_ids: Sequence[int],
                 vnodes: int = VNODES_PER_SHARD):
        if not shard_ids:
            raise ValueError("need at least one shard")
        points = []
        for shard_id in shard_ids:
            for vnode in range(vnodes):
                points.append((_ring_position(
                    b"shard:%d:vnode:%d" % (shard_id, vnode)), shard_id))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard_id for _, shard_id in points]

    def shard_for(self, message: bytes) -> int:
        """First shard clockwise from the message's ring position."""
        position = _ring_position(message)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0
        return self._owners[index]


class ShardWorker:
    """One shard: queue -> batch windows -> amortized crypto calls."""

    def __init__(self, shard_id: int, handle: ServiceHandle,
                 max_batch: int, max_wait_ms: float, queue_depth: int,
                 fault_injector: Optional[Callable] = None, rng=None):
        self.shard_id = shard_id
        self.handle = handle
        self.queue: "asyncio.Queue[PendingRequest]" = asyncio.Queue(
            maxsize=queue_depth)
        self.accumulator = BatchAccumulator(self.queue, max_batch,
                                            max_wait_ms)
        self.max_batch = max_batch
        self.stats = ShardStats(shard_id=shard_id)
        self.fault_injector = fault_injector
        self.rng = rng
        #: Quorum rotation: shard i starts its signer window at offset i,
        #: so different shards exercise different (overlapping) quorums.
        self.quorum = handle.quorum(rotation=shard_id)
        self._task: Optional[asyncio.Task] = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name=f"shard-{self.shard_id}")

    async def stop(self) -> None:
        """Cancel the worker.  The frontend waits for all outstanding
        requests to resolve before calling this, so no accepted request
        is ever dropped mid-window."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # -- request processing -------------------------------------------------
    async def _run(self) -> None:
        while True:
            window = await self.accumulator.next_window()
            loop = asyncio.get_running_loop()
            started = loop.time()
            self._record_window(window)
            try:
                self._process_window(window, loop)
            except Exception as exc:  # defensive: fail requests, not shard
                for request in window:
                    if not request.future.done():
                        request.future.set_exception(
                            RequestFailedError(str(exc)))
            self.stats.busy_ms += (loop.time() - started) * 1000.0
            # One cooperative yield per window so admission and other
            # shards interleave with the (synchronous) crypto calls.
            await asyncio.sleep(0)

    def _record_window(self, window: List[PendingRequest]) -> None:
        self.stats.windows += 1
        size = len(window)
        self.stats.batched_requests += size
        self.stats.requests += size
        self.stats.max_batch_seen = max(self.stats.max_batch_seen, size)
        if size >= self.max_batch:
            self.stats.full_windows += 1

    def _process_window(self, window: List[PendingRequest], loop) -> None:
        signs = [r for r in window if r.kind is RequestKind.SIGN]
        verifies = [r for r in window if r.kind is RequestKind.VERIFY]
        if signs:
            self._process_signs(signs, len(window), loop)
        if verifies:
            self._process_verifies(verifies, len(window), loop)

    def _partials(self, message: bytes,
                  signers: Sequence[int]) -> List[PartialSignature]:
        partials = []
        for index in signers:
            partial = self.handle._share_sign(
                self.handle.shares[index], message)
            if self.fault_injector is not None:
                partial = self.fault_injector(
                    self.shard_id, index, message, partial)
            partials.append(partial)
        return partials

    @staticmethod
    def _resolve(request: PendingRequest, result) -> None:
        """Complete a request future unless the client already gave up
        (a cancelled/timed-out awaiter must not poison the window)."""
        if request.future.done():
            return
        if isinstance(result, Exception):
            request.future.set_exception(result)
        else:
            request.future.set_result(result)

    def _process_signs(self, requests: List[PendingRequest],
                       window_size: int, loop) -> None:
        self.stats.sign_requests += len(requests)
        scheme = self.handle.scheme
        windows = [
            (request.message, self._partials(request.message, self.quorum))
            for request in requests
        ]
        signatures, flagged = scheme.combine_window(
            self.handle.public_key, self.handle.verification_keys,
            windows, rng=self.rng)
        self.stats.faults_localized += len(flagged)
        flagged_set = set(flagged)
        for position, request in enumerate(requests):
            signature = signatures[position]
            if signature is None:
                # The quorum did not contain t+1 valid shares: per-share
                # fallback over the full signer ring (injector still
                # applied — robustness must survive a persistent fault).
                self.stats.fallback_combines += 1
                try:
                    signature = scheme.combine(
                        self.handle.public_key,
                        self.handle.verification_keys, request.message,
                        self._partials(request.message,
                                       self.handle._signer_ring),
                        verify_shares=True, rng=self.rng)
                except Exception as exc:
                    self._resolve(request, RequestFailedError(
                        f"sign failed even with the full signer set: {exc}"))
                    continue
            latency_ms = (loop.time() - request.enqueued_at) * 1000.0
            self._resolve(request, SignResult(
                message=request.message, signature=signature,
                shard_id=self.shard_id, batch_size=window_size,
                fallback=position in flagged_set, latency_ms=latency_ms))

    def _process_verifies(self, requests: List[PendingRequest],
                          window_size: int, loop) -> None:
        self.stats.verify_requests += len(requests)
        verdicts = self.handle.verify_window(
            [request.message for request in requests],
            [request.signature for request in requests], rng=self.rng)
        invalid = sum(1 for verdict in verdicts if not verdict)
        self.stats.faults_localized += invalid
        for request, verdict in zip(requests, verdicts):
            latency_ms = (loop.time() - request.enqueued_at) * 1000.0
            self._resolve(request, VerifyResult(
                message=request.message, valid=verdict,
                shard_id=self.shard_id, batch_size=window_size,
                latency_ms=latency_ms))


class ShardPool:
    """All shard workers plus the consistent-hash routing between them."""

    def __init__(self, handle: ServiceHandle, num_shards: int,
                 max_batch: int, max_wait_ms: float, queue_depth: int,
                 fault_injector: Optional[Callable] = None, rng=None):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        self.workers: Dict[int, ShardWorker] = {
            shard_id: ShardWorker(
                shard_id, handle, max_batch, max_wait_ms, queue_depth,
                fault_injector=fault_injector, rng=rng)
            for shard_id in range(num_shards)
        }
        self.ring = HashRing(sorted(self.workers))

    def worker_for(self, message: bytes) -> ShardWorker:
        return self.workers[self.ring.shard_for(message)]

    def start(self) -> None:
        for worker in self.workers.values():
            worker.start()

    async def stop(self) -> None:
        await asyncio.gather(
            *(worker.stop() for worker in self.workers.values()))

    def stats(self) -> Dict[int, ShardStats]:
        return {
            shard_id: worker.stats
            for shard_id, worker in self.workers.items()
        }
