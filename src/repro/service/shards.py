"""The shard pool: consistent hashing, signer quorums, window workers.

Each shard is one asyncio worker with a bounded queue, a
:class:`~repro.service.accumulator.BatchAccumulator`, and a rotated t+1
signer quorum, so signing load spreads across all n servers while any
single window is produced by one quorum (one Lagrange coefficient set,
memoized across windows).  Requests are routed by **consistent hashing**
on the SHA-256 digest of the message: adding or removing a shard remaps
only ~1/N of the key space, which is what lets a deployment resize the
pool without a global reshuffle (and is why the ring, not ``hash % N``,
is used even in this in-process simulation).
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.scheme import ServiceHandle
from repro.serialization import SignWindowJob, VerifyWindowJob
from repro.service.accumulator import BatchAccumulator
from repro.service.transport import RemoteWorkerPool
from repro.service.types import (
    PendingRequest, RequestExpiredError, RequestFailedError, RequestKind,
    ShardStats, SignResult, VerifyResult,
)
from repro.service.wal import WriteAheadLog
from repro.service.workers import WorkerPool

#: Virtual nodes per shard on the hash ring; enough that load imbalance
#: between shards stays within a few percent.
VNODES_PER_SHARD = 64


def _ring_position(data: bytes) -> int:
    return int.from_bytes(hashlib.sha256(data).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping message digests to shard ids."""

    def __init__(self, shard_ids: Sequence[int],
                 vnodes: int = VNODES_PER_SHARD):
        if not shard_ids:
            raise ValueError("need at least one shard")
        points = []
        for shard_id in shard_ids:
            for vnode in range(vnodes):
                points.append((_ring_position(
                    b"shard:%d:vnode:%d" % (shard_id, vnode)), shard_id))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard_id for _, shard_id in points]

    def shard_for(self, message: bytes) -> int:
        """First shard clockwise from the message's ring position."""
        position = _ring_position(message)
        index = bisect.bisect_right(self._positions, position)
        if index == len(self._positions):
            index = 0
        return self._owners[index]


class ShardWorker:
    """One shard: queue -> batch windows -> amortized crypto calls."""

    def __init__(self, shard_id: int, handle: ServiceHandle,
                 max_batch: int, max_wait_ms: float, queue_depth: int,
                 fault_injector: Optional[Callable] = None, rng=None,
                 worker_pool: Optional[WorkerPool] = None,
                 wal: Optional[WriteAheadLog] = None):
        self.shard_id = shard_id
        self.handle = handle
        self.queue: "asyncio.Queue[PendingRequest]" = asyncio.Queue(
            maxsize=queue_depth)
        self.accumulator = BatchAccumulator(self.queue, max_batch,
                                            max_wait_ms)
        self.max_batch = max_batch
        self.stats = ShardStats(shard_id=shard_id)
        self.fault_injector = fault_injector
        self.rng = rng
        #: When set, windows are encoded into wire jobs and dispatched
        #: to the shared process pool instead of running on this loop.
        self.worker_pool = worker_pool
        #: The service-wide write-ahead log (shared across shards;
        #: this worker fsyncs it once per closed window).
        self.wal = wal
        #: Quorum rotation: shard i starts its signer window at offset i,
        #: so different shards exercise different (overlapping) quorums.
        self.quorum = handle.quorum(rotation=shard_id)
        #: The epoch barrier: held across each window's [sync, shed,
        #: process] sequence, never across the blocking wait for the
        #: next window (an idle shard must not block a key swap).
        #: ``begin_epoch``/``resize`` acquire every shard's lock, which
        #: drains all in-flight windows, then mutate under the barrier.
        self.lifecycle = asyncio.Lock()
        self._task: Optional[asyncio.Task] = None

    def swap_handle(self, handle: ServiceHandle) -> None:
        """Install new-epoch key material (caller holds ``lifecycle``).

        A window formed under the old epoch but processed after the
        swap signs under the new shares — correct because LJY
        signatures are deterministic and a refresh/reshare provably
        preserves the master key, so the bytes are identical."""
        self.handle = handle
        self.quorum = handle.quorum(rotation=self.shard_id)

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> None:
        self._task = asyncio.get_running_loop().create_task(
            self._run(), name=f"shard-{self.shard_id}")

    async def stop(self) -> None:
        """Cancel the worker.  The frontend waits for all outstanding
        requests to resolve before calling this, so no accepted request
        is ever dropped mid-window."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # -- request processing -------------------------------------------------
    async def _run(self) -> None:
        while True:
            window = await self.accumulator.next_window()
            # The lifecycle barrier: if an epoch transition holds the
            # lock, this window waits it out and is then processed
            # under the *new* handle (safe — see ``swap_handle``).  A
            # cancellation while waiting (a shard leaving during a
            # resize) puts the window back for migration.
            try:
                await self.lifecycle.acquire()
            except asyncio.CancelledError:
                self.accumulator.putback(window)
                raise
            try:
                loop = asyncio.get_running_loop()
                started = loop.time()
                if self.wal is not None:
                    # Durability barrier: one fsync covers every admit
                    # buffered up to this window's close, so each
                    # request's admit record hits the disk before its
                    # signature can be observed (done records ride the
                    # *next* window's sync — losing one costs an
                    # idempotent replay).
                    self.wal.sync()
                window = self._shed_expired(window, loop)
                if window:
                    self._record_window(window)
                    try:
                        if self.worker_pool is None:
                            self._process_window(window, loop)
                        else:
                            await self._process_window_mp(window, loop)
                    except Exception as exc:  # defensive: fail requests,
                        for request in window:  # not the shard
                            if not request.future.done():
                                request.future.set_exception(
                                    RequestFailedError(str(exc)))
                    self.stats.busy_ms += (loop.time() - started) * 1000.0
            finally:
                self.lifecycle.release()
            # One cooperative yield per window so admission and other
            # shards interleave with the (synchronous) crypto calls.
            await asyncio.sleep(0)

    def _shed_expired(self, window: List[PendingRequest],
                      loop) -> List[PendingRequest]:
        """Drop requests whose end-to-end deadline passed while they
        queued: a late signature is wasted crypto, and under sustained
        overload expiry keeps window capacity for requests that can
        still make their deadlines."""
        now = loop.time()
        live = []
        for request in window:
            if request.deadline is not None and now >= request.deadline:
                self.stats.expired += 1
                self._resolve(request, RequestExpiredError(
                    self.shard_id, (now - request.deadline) * 1000.0))
            else:
                live.append(request)
        return live

    def _record_window(self, window: List[PendingRequest]) -> None:
        self.stats.windows += 1
        size = len(window)
        self.stats.batched_requests += size
        self.stats.requests += size
        self.stats.max_batch_seen = max(self.stats.max_batch_seen, size)
        if size >= self.max_batch:
            self.stats.full_windows += 1
        for request in window:
            if request.tenant is not None:
                tenants = self.stats.tenant_requests
                tenants[request.tenant] = \
                    tenants.get(request.tenant, 0) + 1

    @staticmethod
    def _split(window: List[PendingRequest]):
        signs = [r for r in window if r.kind is RequestKind.SIGN]
        verifies = [r for r in window if r.kind is RequestKind.VERIFY]
        return signs, verifies

    def _process_window(self, window: List[PendingRequest], loop) -> None:
        """In-process mode: run the window's crypto on this event loop."""
        signs, verifies = self._split(window)
        if signs:
            self.stats.sign_requests += len(signs)
            outcome = self.handle.process_sign_window(
                [request.message for request in signs], quorum=self.quorum,
                fault_injector=self.fault_injector,
                shard_id=self.shard_id, rng=self.rng)
            self._apply_sign_outcome(signs, outcome, len(window), loop)
        if verifies:
            self.stats.verify_requests += len(verifies)
            verdicts = self.handle.verify_window(
                [request.message for request in verifies],
                [request.signature for request in verifies], rng=self.rng)
            self._apply_verify_verdicts(verifies, verdicts,
                                        len(window), loop)

    async def _process_window_mp(self, window: List[PendingRequest],
                                 loop) -> None:
        """Multi-process mode: encode the window into wire jobs and
        dispatch them to the shared worker pool.  The sign and verify
        halves of a mixed window run concurrently (they are independent
        jobs, possibly on different worker processes)."""
        signs, verifies = self._split(window)
        jobs = []
        if signs:
            self.stats.sign_requests += len(signs)
            jobs.append(self.worker_pool.run_job(SignWindowJob(
                shard_id=self.shard_id, epoch=self.handle.epoch,
                messages=tuple(request.message for request in signs),
                quorum=tuple(self.quorum))))
        if verifies:
            self.stats.verify_requests += len(verifies)
            jobs.append(self.worker_pool.run_job(VerifyWindowJob(
                shard_id=self.shard_id, epoch=self.handle.epoch,
                messages=tuple(request.message for request in verifies),
                signatures=tuple(
                    request.signature for request in verifies))))
        outcomes = await asyncio.gather(*jobs)
        if signs:
            self._apply_sign_outcome(signs, outcomes.pop(0),
                                     len(window), loop)
        if verifies:
            self._apply_verify_verdicts(verifies, outcomes.pop(0).verdicts,
                                        len(window), loop)

    @staticmethod
    def _resolve(request: PendingRequest, result) -> None:
        """Complete a request future unless the client already gave up
        (a cancelled/timed-out awaiter must not poison the window)."""
        if request.future.done():
            return
        if isinstance(result, Exception):
            request.future.set_exception(result)
        else:
            request.future.set_result(result)

    def _apply_sign_outcome(self, requests: List[PendingRequest],
                            outcome, window_size: int, loop) -> None:
        """Resolve sign futures from a SignWindowOutcome (either mode)."""
        self.stats.faults_localized += outcome.faults_localized
        self.stats.fallback_combines += outcome.fallback_combines
        flagged_set = set(outcome.flagged)
        failures = dict(outcome.failures)
        for position, request in enumerate(requests):
            signature = outcome.signatures[position]
            if signature is None:
                self._resolve(request, RequestFailedError(
                    failures.get(position, "sign request failed")))
                continue
            latency_ms = (loop.time() - request.enqueued_at) * 1000.0
            self._resolve(request, SignResult(
                message=request.message, signature=signature,
                shard_id=self.shard_id, batch_size=window_size,
                fallback=position in flagged_set, latency_ms=latency_ms))

    def _apply_verify_verdicts(self, requests: List[PendingRequest],
                               verdicts: Sequence[bool],
                               window_size: int, loop) -> None:
        invalid = sum(1 for verdict in verdicts if not verdict)
        self.stats.faults_localized += invalid
        for request, verdict in zip(requests, verdicts):
            latency_ms = (loop.time() - request.enqueued_at) * 1000.0
            self._resolve(request, VerifyResult(
                message=request.message, valid=verdict,
                shard_id=self.shard_id, batch_size=window_size,
                latency_ms=latency_ms))


class ShardPool:
    """All shard workers plus the consistent-hash routing between them."""

    def __init__(self, handle: ServiceHandle, num_shards: int,
                 max_batch: int, max_wait_ms: float, queue_depth: int,
                 fault_injector: Optional[Callable] = None, rng=None,
                 workers: int = 0, remote_workers: Sequence[str] = (),
                 wal: Optional[WriteAheadLog] = None,
                 remote_job_timeout_s: float = 60.0,
                 pipeline_depth: int = 1,
                 remote_psk: Optional[object] = None):
        if num_shards < 1:
            raise ValueError("need at least one shard")
        if workers > 0 and remote_workers:
            raise ValueError(
                "configure either worker processes (workers=N) or remote "
                "workers (remote_workers=[...]), not both — a window "
                "must have one execution tier")
        # ``workers > 0`` adds the process-parallel tier: one pool of
        # warm worker processes shared by all shards, so up to
        # min(num_shards, workers) windows run crypto concurrently.  In
        # that mode the fault injector runs inside the worker processes
        # (its call-count state is per-process) and ``rng`` only drives
        # the in-parent paths — worker coins are process-local.
        # ``remote_workers`` swaps that pool for TCP endpoints
        # (standalone ``repro.service.remote_worker`` processes, possibly
        # on other machines); fault injectors are NOT shipped over the
        # wire — a remote worker configures its own at launch.
        if remote_workers:
            # Depth > 1 also ships windows as per-message request jobs:
            # pipelining exists to overlap many small frames, and
            # worker-side accumulation is what turns those frames back
            # into full-occupancy windows.
            self.worker_pool = RemoteWorkerPool(
                handle, remote_workers, job_timeout_s=remote_job_timeout_s,
                pipeline_depth=pipeline_depth, psk=remote_psk,
                ship_requests=pipeline_depth > 1)
        elif workers > 0:
            self.worker_pool = WorkerPool(
                handle, workers, fault_injector=fault_injector)
        else:
            self.worker_pool = None
        # Kept for live resize: added shards are built from the same
        # recipe (and the *current* handle, which swap_handle tracks).
        self._handle = handle
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.queue_depth = queue_depth
        self.fault_injector = fault_injector
        self.rng = rng
        self.wal = wal
        self.workers: Dict[int, ShardWorker] = {
            shard_id: ShardWorker(
                shard_id, handle, max_batch, max_wait_ms, queue_depth,
                fault_injector=fault_injector, rng=rng,
                worker_pool=self.worker_pool, wal=wal)
            for shard_id in range(num_shards)
        }
        self.ring = HashRing(sorted(self.workers))

    def worker_for(self, message: bytes) -> ShardWorker:
        return self.workers[self.ring.shard_for(message)]

    def worker_at(self, rotation: int) -> ShardWorker:
        """The shard whose rotated signer quorum has offset
        ``rotation`` — the per-tenant quorum-pinning policy
        (:class:`~repro.service.tenants.TenantConfig.quorum_rotation`):
        every shard's quorum is ``handle.quorum(rotation=shard_id)``,
        so pinning a rotation pins the signer subset.  Wraps modulo the
        current shard count, so the policy survives live resizes
        (though the *pinned* quorum may change when the ring does)."""
        shard_ids = sorted(self.workers)
        return self.workers[shard_ids[rotation % len(shard_ids)]]

    # -- key-lifecycle barrier ----------------------------------------------
    async def pause_all(self) -> List[ShardWorker]:
        """Acquire every shard's lifecycle lock (in shard-id order, so
        concurrent barriers cannot deadlock).  Returns the locked
        workers; pass them to :meth:`resume_all`.  Acquiring the set
        drains all in-flight windows — admission keeps queueing, so a
        paused pool sheds nothing."""
        workers = [self.workers[sid] for sid in sorted(self.workers)]
        for worker in workers:
            await worker.lifecycle.acquire()
        return workers

    def resume_all(self, workers: List[ShardWorker]) -> None:
        for worker in reversed(workers):
            worker.lifecycle.release()

    def queued(self) -> int:
        """Requests currently sitting in shard queues (the set a
        barrier carries across an epoch swap)."""
        return sum(w.queue.qsize() for w in self.workers.values())

    def swap_handle(self, handle: ServiceHandle) -> None:
        """Install new-epoch key material on every shard.  Caller must
        hold every lifecycle lock (:meth:`pause_all`) so no window is
        mid-crypto during the swap."""
        self._handle = handle
        for worker in self.workers.values():
            worker.swap_handle(handle)

    async def resize(self, num_shards: int) -> int:
        """Live ring resize: grow or shrink to ``num_shards`` shards,
        migrating queued requests instead of stranding them.

        Under the all-shards barrier: departing workers are stopped
        (cancellation puts their forming windows back), every queue is
        drained, the new worker set and hash ring are built, and each
        drained request is re-routed through the *new* ring — counted
        in :attr:`ShardStats.migrated` at its destination when it
        changed shards.  Returns the number of migrated requests.
        """
        if num_shards < 1:
            raise ValueError("need at least one shard")
        paused = await self.pause_all()
        started_before = any(w._task is not None for w in paused)
        try:
            removed = [w for sid, w in self.workers.items()
                       if sid >= num_shards]
            for worker in removed:
                # Safe mid-barrier: we hold its lock, so the worker is
                # parked either in next_window or at the lock — both
                # cancellation points put taken requests back.
                await worker.stop()
            drained: List = []  # (source shard id, request)
            for sid in sorted(self.workers):
                worker = self.workers[sid]
                spill = worker.accumulator.spilled
                for request in spill:
                    drained.append((sid, request))
                spill.clear()
                while True:
                    try:
                        drained.append((sid, worker.queue.get_nowait()))
                    except asyncio.QueueEmpty:
                        break
            self.workers = {
                sid: self.workers.get(sid) or ShardWorker(
                    sid, self._handle, self.max_batch, self.max_wait_ms,
                    self.queue_depth, fault_injector=self.fault_injector,
                    rng=self.rng, worker_pool=self.worker_pool,
                    wal=self.wal)
                for sid in range(num_shards)
            }
            self.ring = HashRing(sorted(self.workers))
            migrated = 0
            for source, request in drained:
                dest = self.worker_for(request.message)
                if dest.queue.full():
                    self._grow_queue(dest)
                dest.queue.put_nowait(request)
                if dest.shard_id != source:
                    dest.stats.migrated += 1
                    migrated += 1
            if started_before:
                for worker in self.workers.values():
                    if worker._task is None:
                        worker.start()
        finally:
            self.resume_all(paused)
        return migrated

    @staticmethod
    def _grow_queue(worker: ShardWorker) -> None:
        """A destination queue filled up mid-migration: rebuild it with
        double the depth (migration must not shed — the requests were
        already admitted).  The accumulator holds a queue reference, so
        it is repointed too; safe because the worker is paused."""
        grown: "asyncio.Queue[PendingRequest]" = asyncio.Queue(
            maxsize=max(1, worker.queue.maxsize) * 2)
        while True:
            try:
                grown.put_nowait(worker.queue.get_nowait())
            except asyncio.QueueEmpty:
                break
        worker.queue = grown
        worker.accumulator.queue = grown

    def start(self) -> None:
        if self.worker_pool is not None:
            self.worker_pool.start()
        for worker in self.workers.values():
            worker.start()

    async def stop(self) -> None:
        await asyncio.gather(
            *(worker.stop() for worker in self.workers.values()))
        if self.worker_pool is not None:
            # Both tiers expose the async shutdown: the process pool
            # joins its workers off-loop, the remote pool closes its
            # connections (the worker processes themselves live on —
            # they belong to their machines' supervisors, not to us).
            await self.worker_pool.aclose()

    def stats(self) -> Dict[int, ShardStats]:
        return {
            shard_id: worker.stats
            for shard_id, worker in self.workers.items()
        }
