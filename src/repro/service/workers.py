"""The process-parallel execution tier: a pool of warm worker processes.

PR 3's shard pool runs every window on one asyncio event loop, so the
multi-pairing work of the crypto layer never uses more than one core.
:class:`WorkerPool` adds the missing tier: shard workers encode their
batch windows into the wire format of :mod:`repro.serialization` and
dispatch them to a :class:`concurrent.futures.ProcessPoolExecutor` via
``loop.run_in_executor``, so N windows run on N cores while the event
loop keeps admitting and batching requests.

Three properties the pool guarantees:

* **Warm per-process state.**  Each worker process decodes the service
  context (scheme, keys, quorum material) exactly once, in the executor
  initializer — and immediately warms the hot caches: the Miller-loop
  line coefficients (``PreparedG2``) of every fixed pairing argument
  (``g_z``, ``g_r``, the public key and all verification keys) and the
  fixed-base window tables of the derived generators.  Jobs then pay
  only their own crypto, never per-job setup.
* **A real wire format.**  Jobs and results cross the process boundary
  as canonical bytes (:class:`~repro.serialization.WireCodec`), not as
  pickled object graphs — the exact encoding a multi-*machine*
  deployment would put on a socket, which keeps the job inputs trivially
  picklable and the format testable.
* **Crash detection and resubmission.**  A worker process dying
  mid-window breaks the executor (``BrokenProcessPool``); the pool
  detects it, rebuilds the executor (fresh warm workers) and resubmits
  the job, bounded by ``max_retries`` — so a crashed worker costs
  latency, never a lost request.
"""

from __future__ import annotations

import asyncio
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional

from repro.serialization import (
    PartialSignJob, SignRequestJob, SignRequestOutcome, SignWindowJob,
    VerifyRequestJob, VerifyRequestOutcome, VerifyWindowJob,
    VerifyWindowOutcome, PartialSignOutcome, WireCodec,
    decode_service_context, encode_service_context,
)
from repro.service.types import (
    StaleEpochError, WorkerCrashError, WorkerPoolStats,
)

#: Per-process worker state: (codec, handle, fault_injector).  Set once
#: by :func:`_init_worker`, read by every job the process executes.
_WORKER_STATE = None


def warm_handle(handle) -> None:
    """Warm every cache a window job's hot path touches repeatedly:
    pairing preparation (Miller-loop line coefficients) for all fixed
    G_hat arguments and fixed-base window tables for the derived
    generators.  ``ThresholdParams`` already prepares ``g_z``/``g_r`` on
    construction; the public key and verification keys are prepared
    explicitly because every window check pairs against them.

    Shared by the process tier (executor initializer, once per process)
    and the TCP tier (:mod:`repro.service.remote_worker`, once per
    server process) — jobs then pay only their own crypto.
    """
    group = handle.scheme.group
    params = handle.scheme.params
    group.prepare_pair(handle.public_key.g_1)
    group.prepare_pair(handle.public_key.g_2)
    for vk in handle.verification_keys.values():
        group.prepare_pair(vk.v_1)
        group.prepare_pair(vk.v_2)
    params.g_z.precompute()
    params.g_r.precompute()


def execute_job(handle, job, fault_injector=None):
    """Run one decoded window job against a handle; returns the outcome.

    The single dispatch both worker tiers execute — a process worker
    (:func:`_run_job`) and a TCP remote worker
    (:mod:`repro.service.transport`) must serve byte-identical
    contracts, so they share this function rather than each reimplement
    the job -> ``ServiceHandle`` mapping.

    Jobs are epoch-stamped: a job formed under key-lifecycle epoch e
    must never execute against epoch-e' key material (the shares would
    be dead, the partial checks wrong).  The dispatcher re-warms every
    worker inside the ``begin_epoch`` barrier, so a mismatch here means
    a provisioning bug — refuse loudly rather than sign quietly.
    """
    job_epoch = getattr(job, "epoch", 0)
    if job_epoch != handle.epoch:
        raise StaleEpochError(job_epoch, handle.epoch)
    if isinstance(job, SignWindowJob):
        return handle.process_sign_window(
            list(job.messages), quorum=list(job.quorum),
            fault_injector=fault_injector, shard_id=job.shard_id)
    if isinstance(job, VerifyWindowJob):
        return VerifyWindowOutcome(verdicts=tuple(handle.verify_window(
            list(job.messages), list(job.signatures))))
    if isinstance(job, PartialSignJob):
        return PartialSignOutcome(partials=tuple(
            handle.partials_with_faults(
                job.message, job.signers, fault_injector=fault_injector,
                shard_id=job.shard_id)))
    if isinstance(job, SignRequestJob):
        # A degenerate window of one.  The TCP worker normally batches
        # request jobs across connections before they reach the crypto
        # (see WorkerServer); this direct path serves stragglers and
        # keeps the contract uniform across tiers.
        outcome = handle.process_sign_window(
            [job.message], quorum=list(job.quorum),
            fault_injector=fault_injector, shard_id=job.shard_id)
        return sign_request_outcome(outcome, 0)
    if isinstance(job, VerifyRequestJob):
        return VerifyRequestOutcome(verdict=handle.verify_window(
            [job.message], [job.signature])[0])
    raise TypeError(f"unknown job type {type(job).__name__}")


def sign_request_outcome(window_outcome,
                         position: int) -> SignRequestOutcome:
    """Project one position of a window-sized outcome onto the
    single-request outcome shape (the worker-side accumulator executes
    request jobs as windows, then answers each request id from its own
    position)."""
    signature = window_outcome.signatures[position]
    flagged = position in window_outcome.flagged
    if signature is None:
        failures = dict(window_outcome.failures)
        return SignRequestOutcome(
            signature=None, flagged=flagged,
            failure=failures.get(position, "sign request failed"))
    return SignRequestOutcome(signature=signature, flagged=flagged)


def _init_worker(context_blob: bytes, fault_injector) -> None:
    """Executor initializer: rebuild the handle and warm the caches.

    Runs once per worker *process* (not per job); see
    :func:`warm_handle` for what gets prepared.
    """
    global _WORKER_STATE
    handle = decode_service_context(context_blob)
    warm_handle(handle)
    _WORKER_STATE = (WireCodec(handle.scheme.group), handle, fault_injector)


def _run_job(job_blob: bytes) -> bytes:
    """Execute one encoded window job; runs inside a worker process."""
    codec, handle, fault_injector = _WORKER_STATE
    outcome = execute_job(handle, codec.decode_job(job_blob),
                          fault_injector=fault_injector)
    return codec.encode_outcome(outcome)


def _worker_pid() -> int:
    """Identify the executing worker process (tests and diagnostics)."""
    return os.getpid()


class WorkerPool:
    """A shared pool of warm worker processes serving window jobs."""

    def __init__(self, handle, workers: int,
                 fault_injector: Optional[Callable] = None,
                 max_retries: int = 2):
        if workers < 1:
            raise ValueError("need at least one worker process")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        # Raises TypeError for schemes without window entry points —
        # fail at construction, not from deep inside a worker process.
        self._context = encode_service_context(handle)
        self._codec = WireCodec(handle.scheme.group)
        self._fault_injector = fault_injector
        self.workers = workers
        self.max_retries = max_retries
        self.stats = WorkerPoolStats(workers=workers)
        self._executor: Optional[ProcessPoolExecutor] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._executor is not None

    def start(self) -> None:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.workers, initializer=_init_worker,
                initargs=(self._context, self._fault_injector))

    def shutdown(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    async def aclose(self) -> None:
        """Async shutdown (the common worker-tier interface shared with
        :class:`~repro.service.transport.RemoteWorkerPool`).  Joining N
        worker processes can take a while; run it off-loop so the event
        loop stays cooperative."""
        await asyncio.get_running_loop().run_in_executor(
            None, self.shutdown)

    async def update_handle(self, handle) -> None:
        """Re-provision every worker process with new-epoch key
        material.  Called from inside the ``begin_epoch`` barrier (all
        shards paused, no jobs in flight), so the executor can simply
        be replaced: the next job lands on a process whose initializer
        decoded — and warmed — the new context.  Async for interface
        parity with the TCP tier, whose re-warm really does await
        network round-trips."""
        self._context = encode_service_context(handle)
        if self._executor is not None:
            self._restart(self._executor)
        self.stats.rewarms += 1

    def _restart(self, broken: ProcessPoolExecutor) -> bool:
        """Replace a broken executor (idempotent under concurrent
        callers: asyncio is single-threaded, so the identity check and
        the swap run atomically between awaits — the first coroutine to
        observe the break rebuilds, later ones see a fresh executor).
        Returns True for the coroutine that actually performed the
        swap, so one worker death is counted once even when it breaks
        many in-flight jobs."""
        if self._executor is not broken:
            return False
        broken.shutdown(wait=False, cancel_futures=True)
        self._executor = ProcessPoolExecutor(
            max_workers=self.workers, initializer=_init_worker,
            initargs=(self._context, self._fault_injector))
        return True

    # -- job dispatch -------------------------------------------------------
    async def run_job(self, job):
        """Dispatch one window job to a worker process and decode its
        outcome, resubmitting (to a rebuilt pool) on worker crashes."""
        if self._executor is None:
            raise WorkerCrashError("worker pool is not running")
        blob = self._codec.encode_job(job)
        loop = asyncio.get_running_loop()
        last_error = None
        for attempt in range(self.max_retries + 1):
            executor = self._executor
            try:
                outcome_blob = await loop.run_in_executor(
                    executor, _run_job, blob)
            except BrokenProcessPool as exc:
                # A worker died mid-job (OOM-kill, segfault, os._exit);
                # the whole executor is poisoned and must be rebuilt.
                # One death breaks every in-flight job, so only the
                # coroutine that performs the rebuild counts the crash.
                last_error = exc
                if self._restart(executor):
                    self.stats.crashes += 1
                if attempt < self.max_retries:
                    self.stats.resubmissions += 1
                continue
            self.stats.jobs += 1
            return self._codec.decode_outcome(outcome_blob)
        raise WorkerCrashError(
            f"job failed after {self.max_retries + 1} attempts on "
            f"crashing workers: {last_error}")

    async def worker_pids(self) -> set:
        """PIDs of (a sample of) live worker processes."""
        if self._executor is None:
            raise WorkerCrashError("worker pool is not running")
        loop = asyncio.get_running_loop()
        pids = await asyncio.gather(*(
            loop.run_in_executor(self._executor, _worker_pid)
            for _ in range(2 * self.workers)))
        return set(pids)
