"""TCP transport for the worker tier: multi-machine shard workers.

The process-parallel tier (:mod:`repro.service.workers`) already ships
every job as canonical wire bytes — the encoding was built to cross
machine boundaries, but PR 4 only ever carried it over a
``ProcessPoolExecutor`` pipe on one host.  This module puts the same
bytes on real sockets:

* :func:`read_frame` / :func:`write_frame` — length-prefixed, versioned
  framing over asyncio streams (header layout and compatibility rule:
  ``docs/WIRE_FORMAT.md``; the byte-level codecs live in
  :mod:`repro.serialization`).
* :class:`WorkerServer` — the accept loop a standalone worker process
  (:mod:`repro.service.remote_worker`) runs: handshake, then a
  pipelined read loop per connection (frames matched to answers by the
  header's request id, so many jobs ride one connection), dispatching
  through the same :func:`~repro.service.workers.execute_job` the
  process tier uses.  Single-request jobs
  (:class:`~repro.serialization.SignRequestJob` /
  :class:`~repro.serialization.VerifyRequestJob`) are not executed one
  by one: a server-wide accumulator re-batches them — across *all*
  connected dispatchers — into windows, so batch occupancy follows
  total traffic instead of any one shard's share of it.
* :class:`RemoteWorkerPool` — the dispatcher side, a drop-in for
  :class:`~repro.service.workers.WorkerPool` behind the shard workers
  (``ServiceConfig(remote_workers=["host:port", ...])``): round-robin
  over configured endpoints, lazy dialing, up to ``pipeline_depth``
  concurrently in-flight requests per connection (a per-connection
  reader task resolves them by request id, in whatever order the
  worker answers), and the same crash-recovery contract as the process
  pool — a dropped connection fails every in-flight request id at
  once, each owning call re-dials/resubmits exactly its own job, so a
  killed worker costs latency, never a lost or double-served request.
  With ``ship_requests`` the pool fans a window job out into
  per-message request jobs down the pipeline (the worker re-batches
  them), cutting parent-side batching latency at high shard counts.

**Handshake.**  A connection is useless unless both ends hold the same
service context (scheme, curve, threshold parameters, keys), so the
first frame each way is a HELLO carrying the backend name and the
SHA-256 digest of the encoded context
(:func:`~repro.serialization.service_context_digest`).  When a
pre-shared key is configured the HELLO also carries
``HMAC-SHA256(psk, digest)`` (:func:`~repro.serialization.hello_mac`),
checked in both directions — holding the context blob is no longer
enough to speak the protocol.  A mismatch (digest, backend, frame
version or PSK) is misprovisioning, not a transient fault: the server
refuses with an error frame and the client raises a typed
:class:`~repro.service.types.HandshakeError` instead of retrying.

**Failure taxonomy** (mirrors the process tier's
``BrokenProcessPool`` handling):

===========================  ============================================
observation                  reaction
===========================  ============================================
dial refused / timed out     try the next endpoint; backoff when all down
connection drops mid-job     count a crash, re-dial, resubmit the job
no answer within             count a timeout, discard the connection
``job_timeout_s`` (a hung,   (a late answer would desync the stream),
still-connected worker)      resubmit — hung is treated like dropped
garbage frame (bad magic,    the stream cannot be re-synchronized: close
version, oversized length)   the connection, resubmit elsewhere
``E`` frame from the server  :class:`~repro.service.types.RemoteJobError`
                             — resubmitting identical bytes cannot help
repeated failures on one     circuit breaker: quarantine the endpoint
endpoint                     for ``breaker_cooldown_s``, then re-probe
                             (half-open); it must serve to close
HELLO mismatch               sticky quarantine (misprovisioning cannot
                             heal); when *every* endpoint mismatches, a
                             typed HandshakeError after one round-robin
                             pass — not ``dial_deadline_s`` of retries
retry budget exhausted       :class:`~repro.service.types.TransportError`
===========================  ============================================
"""

from __future__ import annotations

import asyncio
import hmac
import os
import pathlib
import select
import subprocess
import sys
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import SerializationError
from repro.serialization import (
    FRAME_HEADER_BYTES, FRAME_KIND_CONTEXT, FRAME_KIND_ERROR,
    FRAME_KIND_HELLO, FRAME_KIND_JOB, FRAME_KIND_OUTCOME,
    SignRequestJob, SignWindowJob, SignWindowOutcome, VerifyRequestJob,
    VerifyRequestOutcome, VerifyWindowJob, VerifyWindowOutcome, WireCodec,
    decode_frame_header, decode_hello, decode_service_context,
    encode_frame, encode_hello, encode_service_context, hello_mac,
    service_context_digest,
)
from repro.service.types import (
    HandshakeError, RemoteJobError, TransportError, WorkerPoolStats,
)
from repro.service.workers import (
    execute_job, sign_request_outcome, warm_handle,
)

#: Errors that mean "this connection is gone" (``IncompleteReadError``
#: is an ``EOFError``; ``ConnectionError`` and timeouts are ``OSError``
#: subclasses or raised alongside them).
_CONNECTION_ERRORS = (OSError, EOFError)


# ---------------------------------------------------------------------------
# Stream framing
# ---------------------------------------------------------------------------

async def read_frame(reader: asyncio.StreamReader
                     ) -> Tuple[bytes, int, bytes]:
    """Read one frame; returns ``(kind, request_id, payload)``.

    Raises :class:`asyncio.IncompleteReadError` when the peer closes
    (cleanly between frames or mid-frame — the transport treats both as
    a drop) and :class:`~repro.errors.SerializationError` on a header
    that fails validation, after which the stream must be closed: the
    length field of a garbage header cannot be trusted, so there is no
    way to find the next frame boundary.
    """
    header = await reader.readexactly(FRAME_HEADER_BYTES)
    kind, request_id, length = decode_frame_header(header)
    payload = await reader.readexactly(length)
    return kind, request_id, payload


def write_frame(writer: asyncio.StreamWriter, kind: bytes,
                payload: bytes, request_id: int = 0) -> None:
    """Queue one frame on the writer (callers ``await writer.drain()``)."""
    writer.write(encode_frame(kind, payload, request_id))


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (the last colon, so bare IPv6 literals
    work; the conventional bracketed form ``[::1]:9401`` is unwrapped —
    ``getaddrinfo`` wants the brackets gone)."""
    host, sep, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    if not sep or not host or not 0 < port < 65536:
        raise ValueError(
            f"remote worker address must look like 'host:port', "
            f"got {address!r}")
    return host, port


# ---------------------------------------------------------------------------
# The server side (what a remote worker process runs)
# ---------------------------------------------------------------------------

class _ServedConnection:
    """One accepted dispatcher connection: its writer, the write lock
    that keeps concurrently-answering tasks (the inline executor and
    the server-wide accumulator flush) from interleaving frames, and
    the set of request ids currently in flight on it (the duplicate-id
    guard)."""

    __slots__ = ("writer", "write_lock", "pending")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.write_lock = asyncio.Lock()
        self.pending: Set[int] = set()

    @property
    def open(self) -> bool:
        return not self.writer.is_closing()


class WorkerServer:
    """Serve window jobs over TCP for one service context.

    One instance per worker process; any number of dispatcher
    connections, each handled by its own coroutine.  Per connection the
    protocol is pipelined: a reader coroutine keeps draining frames
    (socket buffers stay open while crypto runs) and every answer
    carries the request id of the job that caused it, so a dispatcher
    may hold many in-flight jobs and receive completions out of order.
    A job frame reusing an id that is still in flight on the same
    connection is refused with an error frame — silently serving it
    would let one answer settle two different requests.

    Window jobs execute inline, in arrival order, on the loop — a
    worker process exists to burn its core on pairings.  Single-request
    jobs instead land in a server-wide accumulator that re-batches them
    into windows across *all* connections (``max_batch`` /
    ``max_wait_ms``, the same greedy-then-linger policy as the parent's
    :class:`~repro.service.accumulator.BatchAccumulator`), so the
    cross-message amortization follows the worker's total traffic.
    """

    def __init__(self, handle, host: str = "127.0.0.1", port: int = 0,
                 fault_injector=None, psk: Optional[bytes] = None,
                 max_batch: int = 16, max_wait_ms: float = 2.0):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        # Raises TypeError for schemes without window entry points —
        # fail at construction, like WorkerPool.
        self._context = encode_service_context(handle)
        self._digest = service_context_digest(self._context)
        self._handle = handle
        self._codec = WireCodec(handle.scheme.group)
        self._group_name = handle.scheme.group.name
        self._psk = psk or None
        self.host = host
        self.port = port
        self.fault_injector = fault_injector
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.jobs_served = 0
        #: Accumulator telemetry: windows flushed and the requests they
        #: carried (``requests_accumulated / windows_accumulated`` is
        #: the worker-side batch occupancy the request-shipping mode
        #: exists to raise).
        self.windows_accumulated = 0
        self.requests_accumulated = 0
        self._server: Optional[asyncio.base_events.Server] = None
        #: (connection, request_id, job) triples awaiting a window.
        self._request_queue: "asyncio.Queue[Tuple[_ServedConnection, int, object]]" = \
            asyncio.Queue()
        self._flush_task: Optional[asyncio.Task] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _hello_payload(self) -> bytes:
        mac = hello_mac(self._psk, self._digest) if self._psk else b""
        return encode_hello(self._group_name, self._digest, mac)

    async def start(self) -> "WorkerServer":
        """Bind and start accepting; resolves ``port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._flush_task = asyncio.get_running_loop().create_task(
            self._flush_loop(), name="worker-accumulator")
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._flush_task is not None:
            self._flush_task.cancel()
            try:
                await self._flush_task
            except asyncio.CancelledError:
                pass
            self._flush_task = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- frame output (any task answering on a connection) ------------------
    async def _send(self, connection: _ServedConnection, kind: bytes,
                    payload: bytes, request_id: int = 0) -> None:
        """Write one frame under the connection's write lock.  Send
        failures are swallowed: a connection dying with answers in
        flight is the dispatcher's crash-recovery problem (it resubmits
        elsewhere), not a reason to kill the task that was answering."""
        async with connection.write_lock:
            if not connection.open:
                return
            try:
                write_frame(connection.writer, kind, payload, request_id)
                await connection.writer.drain()
            except _CONNECTION_ERRORS:
                pass

    async def _send_error(self, connection: _ServedConnection,
                          request_id: int, reason: str) -> None:
        await self._send(connection, FRAME_KIND_ERROR,
                         reason.encode("utf-8"), request_id)

    # -- per-connection protocol -------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        connection = _ServedConnection(writer)
        executor_task = None
        try:
            if not await self._handshake(reader, connection):
                return
            # Inline-job mailbox: the reader keeps draining the socket
            # (that is what makes the connection pipelined) while this
            # task runs the crypto in arrival order.
            inline_jobs: "asyncio.Queue[Tuple[int, bytes]]" = \
                asyncio.Queue()
            executor_task = asyncio.get_running_loop().create_task(
                self._execute_loop(connection, inline_jobs))
            while True:
                try:
                    kind, request_id, payload = await read_frame(reader)
                except _CONNECTION_ERRORS:
                    return                      # dispatcher went away
                except SerializationError as exc:
                    # Garbage header: framing is lost, close after a
                    # best-effort explanation.
                    await self._refuse(connection, str(exc))
                    return
                if kind == FRAME_KIND_CONTEXT:
                    # Live re-provisioning: a key-lifecycle transition
                    # pushes the new epoch's context in place instead
                    # of tearing the worker down.  Pushes arrive inside
                    # the dispatcher's epoch barrier (no jobs in
                    # flight), so applying it here cannot interleave
                    # with a window mid-crypto.  A refused push answers
                    # with an E frame and keeps serving the *old*
                    # epoch.
                    await self._apply_context_push(
                        connection, request_id, payload)
                    continue
                if kind != FRAME_KIND_JOB:
                    await self._refuse(
                        connection,
                        f"expected a job frame, got {kind!r}")
                    return
                if request_id in connection.pending:
                    # Answering two jobs under one id would make one
                    # outcome settle both; refuse the duplicate and
                    # keep the stream (the header parsed fine, framing
                    # is intact).
                    await self._send_error(
                        connection, request_id,
                        f"duplicate request id {request_id} is already "
                        f"in flight on this connection")
                    continue
                connection.pending.add(request_id)
                inline_jobs.put_nowait((request_id, payload))
        except _CONNECTION_ERRORS:
            pass
        finally:
            if executor_task is not None:
                executor_task.cancel()
                try:
                    await executor_task
                except asyncio.CancelledError:
                    pass
            writer.close()
            try:
                await writer.wait_closed()
            except _CONNECTION_ERRORS + (asyncio.CancelledError,):
                # Loop teardown can cancel this task while it drains
                # the close handshake; the socket is closed either way.
                pass

    async def _execute_loop(self, connection: _ServedConnection,
                            inline_jobs: "asyncio.Queue") -> None:
        """Decode and answer this connection's jobs in arrival order;
        single-request jobs detour through the server-wide accumulator
        and are answered by its flush task instead."""
        while True:
            request_id, payload = await inline_jobs.get()
            try:
                job = self._codec.decode_job(payload)
            except Exception as exc:
                await self._send_error(
                    connection, request_id,
                    f"{type(exc).__name__}: {exc}")
                connection.pending.discard(request_id)
                continue
            if isinstance(job, (SignRequestJob, VerifyRequestJob)):
                self._request_queue.put_nowait(
                    (connection, request_id, job))
                continue
            try:
                outcome_blob = self._codec.encode_outcome(execute_job(
                    self._handle, job, fault_injector=self.fault_injector))
            except Exception as exc:
                # The frame arrived intact, so the stream is still in
                # sync: report the job-level failure and keep serving
                # this connection (the dispatcher raises RemoteJobError
                # instead of resubmitting).
                await self._send_error(
                    connection, request_id,
                    f"{type(exc).__name__}: {exc}")
                connection.pending.discard(request_id)
                continue
            await self._send(connection, FRAME_KIND_OUTCOME, outcome_blob,
                             request_id)
            connection.pending.discard(request_id)
            self.jobs_served += 1
            # One cooperative yield per job so the reader task drains
            # newly-arrived frames between crypto calls.
            await asyncio.sleep(0)

    # -- the server-wide request accumulator --------------------------------
    async def _flush_loop(self) -> None:
        """Gather single-request jobs — from every connection — into
        windows: greedy drain, then linger up to ``max_wait_ms`` for
        stragglers, flush at ``max_batch``."""
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._request_queue.get()]
            deadline = loop.time() + self.max_wait_ms / 1000.0
            while len(batch) < self.max_batch:
                while len(batch) < self.max_batch:
                    try:
                        batch.append(self._request_queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
                remaining = deadline - loop.time()
                if len(batch) >= self.max_batch or remaining <= 0:
                    break
                try:
                    batch.append(await asyncio.wait_for(
                        self._request_queue.get(), remaining))
                except asyncio.TimeoutError:
                    break
            try:
                await self._execute_accumulated(batch)
            except asyncio.CancelledError:
                raise
            except Exception as exc:   # defensive: fail the batch's
                for connection, request_id, _ in batch:  # ids, not the
                    await self._send_error(                # flush loop
                        connection, request_id,
                        f"{type(exc).__name__}: {exc}")
                    connection.pending.discard(request_id)

    async def _execute_accumulated(self, batch) -> None:
        """Execute one accumulated window, grouped into the largest
        batchable units: sign requests by (epoch, quorum) — different
        quorums need different Lagrange sets — and verify requests by
        epoch.  Answers go back per request id, to whichever connection
        each request arrived on."""
        self.windows_accumulated += 1
        self.requests_accumulated += len(batch)
        sign_groups: Dict[Tuple[int, Tuple[int, ...]], list] = {}
        verify_groups: Dict[int, list] = {}
        for item in batch:
            job = item[2]
            if isinstance(job, SignRequestJob):
                sign_groups.setdefault(
                    (job.epoch, tuple(job.quorum)), []).append(item)
            else:
                verify_groups.setdefault(job.epoch, []).append(item)
        for (epoch, quorum), items in sign_groups.items():
            window_job = SignWindowJob(
                shard_id=items[0][2].shard_id, epoch=epoch,
                messages=tuple(item[2].message for item in items),
                quorum=quorum)
            await self._answer_group(
                items, window_job,
                lambda outcome, position: self._codec.encode_outcome(
                    sign_request_outcome(outcome, position)))
        for epoch, items in verify_groups.items():
            window_job = VerifyWindowJob(
                shard_id=items[0][2].shard_id, epoch=epoch,
                messages=tuple(item[2].message for item in items),
                signatures=tuple(item[2].signature for item in items))
            await self._answer_group(
                items, window_job,
                lambda outcome, position: self._codec.encode_outcome(
                    VerifyRequestOutcome(
                        verdict=outcome.verdicts[position])))
        # Yield between accumulated windows, like the inline executor.
        await asyncio.sleep(0)

    async def _answer_group(self, items, window_job, project) -> None:
        """Run one synthesized window job and answer each request id
        from its own position (or fail them all with one E frame each
        when the window itself refuses, e.g. a stale epoch)."""
        try:
            outcome = execute_job(self._handle, window_job,
                                  fault_injector=self.fault_injector)
        except Exception as exc:
            reason = f"{type(exc).__name__}: {exc}"
            for connection, request_id, _ in items:
                await self._send_error(connection, request_id, reason)
                connection.pending.discard(request_id)
            return
        for position, (connection, request_id, _) in enumerate(items):
            await self._send(connection, FRAME_KIND_OUTCOME,
                             project(outcome, position), request_id)
            connection.pending.discard(request_id)
            self.jobs_served += 1

    async def _apply_context_push(self, connection: _ServedConnection,
                                  request_id: int,
                                  payload: bytes) -> None:
        """Validate and install a pushed new-epoch service context.

        Three invariants gate the swap — each one distinguishes a
        legitimate lifecycle transition from misprovisioning (or a
        replayed stale push after a crash): the backend must match, the
        public key bytes must be *identical* (refresh/reshare never
        change the master key), and the epoch must be strictly newer.
        On success the caches are re-warmed and the new HELLO (with the
        new context digest, echoing the push's request id) is the
        acknowledgement.
        """
        try:
            handle = decode_service_context(payload)
        except Exception as exc:
            await self._send_error(connection, request_id,
                                   f"bad context push: {exc}")
            return
        problem = None
        if handle.scheme.group.name != self._group_name:
            problem = (f"context push is for backend "
                       f"{handle.scheme.group.name!r}, this worker "
                       f"serves {self._group_name!r}")
        elif (handle.public_key.to_bytes()
                != self._handle.public_key.to_bytes()):
            problem = ("context push changes the public key — a "
                       "lifecycle transition must preserve it")
        elif handle.epoch <= self._handle.epoch:
            problem = (f"stale context push: epoch {handle.epoch} is "
                       f"not newer than epoch {self._handle.epoch}")
        if problem is not None:
            await self._send_error(connection, request_id, problem)
            return
        warm_handle(handle)
        self._handle = handle
        self._context = payload
        self._digest = service_context_digest(payload)
        await self._send(connection, FRAME_KIND_HELLO,
                         self._hello_payload(), request_id)

    def _psk_agrees(self, mac: bytes, digest: bytes) -> bool:
        """Constant-time check of the peer's HELLO authenticator.  Both
        ends must agree on *whether* a PSK is configured, exactly like
        they must agree on the digest itself."""
        if not self._psk:
            return not mac
        return len(mac) == 32 and hmac.compare_digest(
            mac, hello_mac(self._psk, digest))

    async def _handshake(self, reader: asyncio.StreamReader,
                         connection: _ServedConnection) -> bool:
        """First frame must be a HELLO matching our context digest (and
        PSK authenticator, when a pre-shared key is configured)."""
        try:
            kind, _, payload = await read_frame(reader)
        except _CONNECTION_ERRORS:
            return False
        except SerializationError as exc:
            await self._refuse(connection, str(exc))
            return False
        if kind != FRAME_KIND_HELLO:
            await self._refuse(
                connection,
                f"expected HELLO as the first frame, got {kind!r}")
            return False
        try:
            group_name, digest, mac = decode_hello(payload)
        except SerializationError as exc:
            await self._refuse(connection, f"bad HELLO payload: {exc}")
            return False
        if group_name != self._group_name or digest != self._digest:
            await self._refuse(
                connection,
                f"service-context mismatch: this worker serves backend "
                f"{self._group_name!r} with context digest "
                f"{self._digest.hex()[:16]}..., dispatcher offered "
                f"{group_name!r}/{digest.hex()[:16]}...")
            return False
        if not self._psk_agrees(mac, digest):
            await self._refuse(
                connection,
                "pre-shared-key mismatch: the dispatcher's HELLO "
                "authenticator does not match this worker's PSK "
                "configuration")
            return False
        await self._send(connection, FRAME_KIND_HELLO,
                         self._hello_payload())
        return True

    async def _refuse(self, connection: _ServedConnection,
                      reason: str) -> None:
        await self._send_error(connection, 0, reason)


# ---------------------------------------------------------------------------
# The dispatcher side (what the shard pool runs)
# ---------------------------------------------------------------------------

class _Endpoint:
    """One configured remote worker address plus its live connection,
    in-flight request window and circuit-breaker state."""

    __slots__ = ("host", "port", "reader", "writer", "send_lock",
                 "depth", "pending", "reader_task", "dial_lock",
                 "dialed_once", "failures", "open_until",
                 "misprovisioned")

    def __init__(self, host: str, port: int, pipeline_depth: int):
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        #: Serializes frame *writes* only — reads are the reader task's
        #: job, and completions are matched by request id, so up to
        #: ``depth`` requests ride the connection concurrently.
        self.send_lock = asyncio.Lock()
        #: Admission window: how many requests may be in flight on this
        #: connection at once (``pipeline_depth`` 1 reproduces the old
        #: one-request-per-turn protocol exactly).
        self.depth = asyncio.Semaphore(pipeline_depth)
        #: In-flight request ids -> the futures their answers resolve.
        self.pending: Dict[int, asyncio.Future] = {}
        #: Per-connection reader: drains answer frames and resolves
        #: ``pending`` futures by id, in whatever order they arrive.
        self.reader_task: Optional[asyncio.Task] = None
        #: One dial at a time, so concurrent shards cannot open
        #: duplicate connections to the same worker.
        self.dial_lock = asyncio.Lock()
        self.dialed_once = False
        #: Consecutive failures (dial refused, drop mid-job, job
        #: timeout) since the last success; resets on any success.
        self.failures = 0
        #: Circuit breaker: loop-clock instant until which the endpoint
        #: is quarantined (skipped by the round-robin).  After it
        #: passes, the next acquire re-probes (half-open).
        self.open_until = 0.0
        #: HELLO refusal reason.  Misprovisioning (wrong backend, keys,
        #: committee, PSK) is a *configuration* error, not a transient
        #: fault: the quarantine is sticky for the pool's lifetime.
        self.misprovisioned: Optional[str] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()


class RemoteWorkerPool:
    """A pool of TCP remote workers serving window jobs.

    Drop-in for :class:`~repro.service.workers.WorkerPool` behind
    :class:`~repro.service.shards.ShardWorker` (same ``run_job`` /
    ``start`` / ``aclose`` / ``stats`` surface), so the in-process,
    process-pool and remote tiers all serve the
    ``ServiceHandle.process_sign_window`` contract through one shard
    code path.

    Connections are dialed lazily (on the first job, and again after
    any drop), with exponential backoff while every endpoint is down —
    a worker restarted by its supervisor is picked up automatically,
    which is what lets ``serve-smoke`` kill a worker mid-window and
    still complete every request.
    """

    def __init__(self, handle, addresses: Sequence[str],
                 max_retries: int = 4, dial_timeout_s: float = 5.0,
                 dial_deadline_s: float = 30.0,
                 backoff_initial_s: float = 0.05,
                 backoff_max_s: float = 1.0,
                 job_timeout_s: float = 60.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 2.0,
                 pipeline_depth: int = 1,
                 psk: Optional[bytes] = None,
                 ship_requests: bool = False):
        if not addresses:
            raise ValueError("need at least one remote worker address")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        if pipeline_depth < 1:
            raise ValueError("pipeline_depth must be at least 1")
        if isinstance(psk, str):
            psk = psk.encode("utf-8")
        # Raises TypeError for schemes without window entry points.
        self._context = encode_service_context(handle)
        self._digest = service_context_digest(self._context)
        self._group_name = handle.scheme.group.name
        self._psk = psk or None
        self._codec = WireCodec(handle.scheme.group)
        #: How many requests each connection may hold in flight.
        self.pipeline_depth = pipeline_depth
        #: Ship per-message request jobs down the pipeline instead of
        #: pre-built windows, letting the worker re-batch across every
        #: connected dispatcher (see :class:`WorkerServer`).
        self.ship_requests = ship_requests
        self._endpoints: List[_Endpoint] = [
            _Endpoint(*parse_address(address),
                      pipeline_depth=pipeline_depth)
            for address in addresses]
        #: Monotonic request-id source, shared by every endpoint (ids
        #: are scoped per connection by the protocol, but a pool-wide
        #: counter costs nothing and makes traces unambiguous).  Id 0
        #: is reserved for handshake-phase frames.
        self._request_counter = 0
        self.max_retries = max_retries
        self.dial_timeout_s = dial_timeout_s
        self.dial_deadline_s = dial_deadline_s
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        #: Hung-worker bound: a connected worker that has not answered
        #: a job within this window is treated as dead (discard the
        #: connection — a late answer would desync the stream — and
        #: resubmit elsewhere).
        self.job_timeout_s = job_timeout_s
        #: Circuit breaker: after this many consecutive failures an
        #: endpoint is quarantined for ``breaker_cooldown_s`` instead
        #: of being re-dialed on every round-robin pass.
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.stats = WorkerPoolStats(workers=len(self._endpoints))
        self._next = 0
        self._running = False

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Mark the pool live.  Dialing is lazy: a worker that is still
        booting (or being restarted) must not fail service start-up —
        the first job waits for it inside the backoff loop instead."""
        self._running = True

    def _hello_payload(self) -> bytes:
        mac = hello_mac(self._psk, self._digest) if self._psk else b""
        return encode_hello(self._group_name, self._digest, mac)

    def _psk_agrees(self, mac: bytes, digest: bytes) -> bool:
        """Constant-time check of the worker's HELLO authenticator —
        mutual authentication, so a dispatcher cannot be fooled into
        shipping jobs to a worker that merely replayed a digest."""
        if not self._psk:
            return not mac
        return len(mac) == 32 and hmac.compare_digest(
            mac, hello_mac(self._psk, digest))

    async def aclose(self) -> None:
        self._running = False
        for endpoint in self._endpoints:
            await self._discard(endpoint)

    async def update_handle(self, handle) -> None:
        """Push new-epoch key material to every endpoint in place (a
        ``C`` context-push frame, acknowledged by a HELLO carrying the
        new digest) — the TCP analogue of the process pool's executor
        rebuild.  Called from inside the ``begin_epoch`` barrier, so no
        job shares a connection with the push.

        An endpoint that cannot be updated (unreachable, or it refuses
        the push) still holds the *old* shares — dead key material —
        so it is sticky-quarantined like any misprovisioned worker.
        Raises :class:`TransportError` when no endpoint took the push.
        """
        context = encode_service_context(handle)
        digest = service_context_digest(context)
        updated = 0
        for endpoint in self._endpoints:
            if endpoint.misprovisioned is not None:
                continue
            pushed = False
            try:
                if endpoint.connected or await self._dial(endpoint):
                    pushed = await self._push_context(
                        endpoint, context, digest)
            except HandshakeError as exc:
                endpoint.misprovisioned = str(exc)
                await self._discard(endpoint)
                continue
            except _CONNECTION_ERRORS + (SerializationError,
                                         asyncio.TimeoutError):
                pushed = False
            if pushed:
                updated += 1
            else:
                await self._discard(endpoint)
                endpoint.misprovisioned = (
                    f"unreachable during the epoch-{handle.epoch} context "
                    f"push; it still holds stale key material")
        if not updated:
            raise TransportError(
                f"no remote worker accepted the epoch-{handle.epoch} "
                f"context push (endpoints: "
                f"{', '.join(e.address for e in self._endpoints)})")
        self._context = context
        self._digest = digest
        self.stats.rewarms += 1

    async def _push_context(self, endpoint: "_Endpoint", context: bytes,
                            digest: bytes) -> bool:
        if not endpoint.connected:
            return False
        kind, payload = await asyncio.wait_for(
            self._roundtrip(endpoint, FRAME_KIND_CONTEXT, context),
            self.job_timeout_s)
        if kind == FRAME_KIND_ERROR:
            raise HandshakeError(
                f"remote worker {endpoint.address} refused the context "
                f"push: {payload.decode('utf-8', 'replace')}")
        if kind != FRAME_KIND_HELLO:
            raise SerializationError(
                f"expected HELLO after a context push, got {kind!r}")
        group_name, answered, mac = decode_hello(payload)
        if group_name != self._group_name or answered != digest:
            raise HandshakeError(
                f"remote worker {endpoint.address} acknowledged the "
                f"context push with the wrong digest")
        if not self._psk_agrees(mac, answered):
            raise HandshakeError(
                f"remote worker {endpoint.address} acknowledged the "
                f"context push with a bad PSK authenticator")
        return True

    # -- connection management ----------------------------------------------
    def _fail_pending(self, endpoint: _Endpoint) -> bool:
        """Fail every unresolved in-flight future on a dead connection
        (their owning ``run_job`` calls each resubmit exactly their own
        job).  Returns True when at least one request really was in
        flight — the connection died mid-job, not idle."""
        had_inflight = False
        for future in list(endpoint.pending.values()):
            if not future.done():
                future.set_exception(ConnectionResetError(
                    f"connection to {endpoint.address} lost with the "
                    f"request in flight"))
                had_inflight = True
        return had_inflight

    async def _discard(self, endpoint: _Endpoint) -> bool:
        """Tear down a (broken) connection.  Returns True only for the
        caller that actually closed it, so one worker death breaking a
        whole window of in-flight requests is counted as one crash —
        the same first-observer rule as ``WorkerPool._restart``.  The
        reader task tears its own connection down when the socket dies
        under it, so callers arriving here afterwards get False."""
        writer = endpoint.writer
        reader_task = endpoint.reader_task
        endpoint.reader = endpoint.writer = None
        endpoint.reader_task = None
        if writer is None:
            return False
        if reader_task is not None and \
                reader_task is not asyncio.current_task():
            reader_task.cancel()
            try:
                await reader_task
            except asyncio.CancelledError:
                pass
        self._fail_pending(endpoint)
        writer.close()
        try:
            await writer.wait_closed()
        except _CONNECTION_ERRORS:
            pass
        return True

    async def _reader_loop(self, endpoint: _Endpoint) -> None:
        """Drain answer frames from one connection for as long as it
        lives, resolving in-flight futures by request id — out-of-order
        completion is the point: a slow window job no longer blocks the
        answers queued behind it.

        When the socket dies (drop, EOF, garbage frame) *this* task
        owns the teardown: every in-flight future fails at once with
        ``ConnectionResetError`` and each owning call resubmits its own
        job — so a killed worker fails a whole pipeline window in one
        instant instead of one ``job_timeout_s`` at a time.  Dying
        mid-job counts as one crash; a drop while idle is just churn.
        """
        reader, writer = endpoint.reader, endpoint.writer
        try:
            while True:
                kind, request_id, payload = await read_frame(reader)
                future = endpoint.pending.get(request_id)
                if future is not None and not future.done():
                    future.set_result((kind, payload))
                # An unknown id is an answer whose owner already gave
                # up (timed out and discarded) — by then this reader is
                # cancelled, so in practice: ignore and keep draining.
        except asyncio.CancelledError:
            raise               # _discard owns this teardown
        except _CONNECTION_ERRORS + (SerializationError,):
            pass
        if endpoint.writer is not writer:
            return              # somebody else already tore it down
        endpoint.reader = endpoint.writer = None
        endpoint.reader_task = None
        if self._fail_pending(endpoint):
            self.stats.crashes += 1
            self._record_failure(endpoint, asyncio.get_running_loop())
        writer.close()
        try:
            await writer.wait_closed()
        except _CONNECTION_ERRORS:
            pass

    async def _roundtrip(self, endpoint: _Endpoint, kind: bytes,
                         blob: bytes) -> Tuple[bytes, bytes]:
        """Ship one frame and await its answer ``(kind, payload)``,
        matched by request id.  Concurrent callers interleave freely up
        to the endpoint's depth; only the write itself is serialized."""
        self._request_counter += 1
        request_id = self._request_counter
        future = asyncio.get_running_loop().create_future()
        endpoint.pending[request_id] = future
        inflight = len(endpoint.pending)
        if inflight > self.stats.max_inflight:
            self.stats.max_inflight = inflight
        try:
            async with endpoint.send_lock:
                if not endpoint.connected:
                    # The connection died while we queued on the lock;
                    # the caller discards (a no-op for non-first
                    # observers) and resubmits.
                    raise ConnectionResetError(
                        f"connection to {endpoint.address} lost before "
                        "dispatch")
                write_frame(endpoint.writer, kind, blob, request_id)
                await endpoint.writer.drain()
            return await future
        finally:
            endpoint.pending.pop(request_id, None)

    async def _dial(self, endpoint: _Endpoint) -> bool:
        """(Re)connect one endpoint and run the HELLO handshake.

        Returns False on unreachable/dropped (the caller moves on to
        the next endpoint); raises
        :class:`~repro.service.types.HandshakeError` on a live worker
        that answers with the wrong version, backend or context digest
        (retrying cannot fix misprovisioning).
        """
        async with endpoint.dial_lock:
            if endpoint.connected:
                return True
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(endpoint.host, endpoint.port),
                    self.dial_timeout_s)
            except _CONNECTION_ERRORS + (asyncio.TimeoutError,):
                return False
            try:
                write_frame(writer, FRAME_KIND_HELLO,
                            self._hello_payload())
                await writer.drain()
                kind, _, payload = await asyncio.wait_for(
                    read_frame(reader), self.dial_timeout_s)
            except _CONNECTION_ERRORS + (asyncio.TimeoutError,):
                writer.close()
                return False
            except SerializationError as exc:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} sent a malformed "
                    f"handshake frame: {exc}")
            if kind == FRAME_KIND_ERROR:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} refused the "
                    f"handshake: {payload.decode('utf-8', 'replace')}")
            if kind != FRAME_KIND_HELLO:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} answered HELLO "
                    f"with frame kind {kind!r}")
            try:
                group_name, digest, mac = decode_hello(payload)
            except SerializationError as exc:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} sent a bad HELLO "
                    f"payload: {exc}")
            if group_name != self._group_name or digest != self._digest:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} serves a different "
                    f"service context ({group_name!r}/"
                    f"{digest.hex()[:16]}..., expected "
                    f"{self._group_name!r}/{self._digest.hex()[:16]}...)")
            if not self._psk_agrees(mac, digest):
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} answered HELLO "
                    f"with a bad PSK authenticator (pre-shared keys "
                    f"differ, or only one side has one configured)")
            endpoint.reader, endpoint.writer = reader, writer
            endpoint.reader_task = asyncio.get_running_loop().create_task(
                self._reader_loop(endpoint),
                name=f"remote-worker-reader-{endpoint.address}")
            if endpoint.dialed_once:
                self.stats.reconnects += 1
            endpoint.dialed_once = True
            return True

    def _record_failure(self, endpoint: _Endpoint, loop) -> None:
        """Count one failure against the endpoint's breaker; trip the
        breaker (quarantine for ``breaker_cooldown_s``) at the
        threshold.  A tripped endpoint re-trips on a single half-open
        failure — a worker must actually serve something to close it."""
        endpoint.failures += 1
        if endpoint.failures >= self.breaker_threshold:
            endpoint.open_until = loop.time() + self.breaker_cooldown_s
            # Half-open probes that fail re-trip immediately.
            endpoint.failures = self.breaker_threshold - 1
            self.stats.breaker_trips += 1

    @staticmethod
    def _record_success(endpoint: _Endpoint) -> None:
        endpoint.failures = 0
        endpoint.open_until = 0.0

    async def _acquire(self) -> _Endpoint:
        """A connected endpoint, round-robin; dial-with-backoff until
        one answers or the dial deadline expires.

        Quarantined endpoints (breaker open, or sticky-misprovisioned
        after a HELLO refusal) are skipped.  When *every* endpoint is
        misprovisioned the pool raises a typed
        :class:`~repro.service.types.HandshakeError` after one full
        round-robin pass — re-dialing a worker provisioned with the
        wrong service context for ``dial_deadline_s`` cannot fix a
        configuration error.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.dial_deadline_s
        backoff = self.backoff_initial_s
        while True:
            if not self._running:
                raise TransportError("remote worker pool is not running")
            now = loop.time()
            for _ in range(len(self._endpoints)):
                endpoint = self._endpoints[self._next
                                           % len(self._endpoints)]
                self._next += 1
                if endpoint.misprovisioned is not None or \
                        endpoint.open_until > now:
                    continue
                if endpoint.connected:
                    return endpoint
                try:
                    if await self._dial(endpoint):
                        self._record_success(endpoint)
                        return endpoint
                except HandshakeError as exc:
                    endpoint.misprovisioned = str(exc)
                    continue
                self._record_failure(endpoint, loop)
            if all(e.misprovisioned is not None for e in self._endpoints):
                raise HandshakeError(
                    "every remote worker endpoint refused the HELLO "
                    "handshake (misprovisioned): " + "; ".join(
                        e.misprovisioned for e in self._endpoints))
            if loop.time() >= deadline:
                raise TransportError(
                    f"no remote worker reachable within "
                    f"{self.dial_deadline_s:.1f}s (endpoints: "
                    f"{', '.join(e.address for e in self._endpoints)})")
            await asyncio.sleep(backoff)
            backoff = min(2 * backoff, self.backoff_max_s)

    # -- job dispatch -------------------------------------------------------
    async def run_job(self, job):
        """Dispatch one window job to a remote worker and decode its
        outcome, reconnecting and resubmitting on dropped connections —
        the socket analogue of ``WorkerPool.run_job``'s
        ``BrokenProcessPool`` recovery.

        With ``ship_requests`` a window job never crosses the wire
        whole: it fans out into per-message request jobs that ride the
        pipeline individually and are re-batched *worker-side* (see
        :class:`WorkerServer`), then the outcomes are reassembled into
        the window shape the shard expects.
        """
        if not self._running:
            raise TransportError("remote worker pool is not running")
        if self.ship_requests and isinstance(
                job, (SignWindowJob, VerifyWindowJob)) and job.messages:
            return await self._run_window_as_requests(job)
        return await self._run_single(self._codec.encode_job(job))

    async def _run_window_as_requests(self, job):
        """Fan one window job out into per-message request jobs (each
        with its own request id, its own retry budget and its own
        crash recovery) and reassemble the window outcome.  Positions
        are preserved: outcome ``i`` answers message ``i``."""
        if isinstance(job, SignWindowJob):
            subjobs = [SignRequestJob(
                shard_id=job.shard_id, message=message,
                quorum=tuple(job.quorum), epoch=job.epoch)
                for message in job.messages]
        else:
            subjobs = [VerifyRequestJob(
                shard_id=job.shard_id, message=message,
                signature=signature, epoch=job.epoch)
                for message, signature in zip(job.messages,
                                              job.signatures)]
        outcomes = await asyncio.gather(
            *(self._run_single(self._codec.encode_job(subjob))
              for subjob in subjobs),
            return_exceptions=True)
        for outcome in outcomes:
            if isinstance(outcome, BaseException):
                raise outcome
        if isinstance(job, VerifyWindowJob):
            return VerifyWindowOutcome(verdicts=tuple(
                outcome.verdict for outcome in outcomes))
        signatures, flagged, failures = [], [], []
        for position, outcome in enumerate(outcomes):
            signatures.append(outcome.signature)
            if outcome.flagged:
                flagged.append(position)
            if outcome.signature is None:
                failures.append((position, outcome.failure))
        # fallback_combines stays 0: the robust recombines (if any)
        # happened inside the worker's accumulated windows, and their
        # count belongs to whichever window each request landed in.
        return SignWindowOutcome(
            signatures=tuple(signatures), flagged=tuple(flagged),
            failures=tuple(failures), fallback_combines=0)

    async def _run_single(self, blob: bytes):
        """Ship one encoded job, with the retry/teardown state machine
        both dispatch shapes share."""
        loop = asyncio.get_running_loop()
        last_error = None
        for attempt in range(self.max_retries + 1):
            endpoint = await self._acquire()
            async with endpoint.depth:
                try:
                    outcome_blob = await asyncio.wait_for(
                        self._request(endpoint, blob), self.job_timeout_s)
                except asyncio.TimeoutError:
                    # Hung worker: connected but silent past the job
                    # timeout.  Its event loop is stuck, so every job
                    # on the connection is doomed — discard it and
                    # resubmit (the breaker keeps a chronically hung
                    # endpoint out of the rotation).
                    last_error = TransportError(
                        f"remote worker {endpoint.address} did not "
                        f"answer a job within {self.job_timeout_s:.1f}s")
                    if await self._discard(endpoint):
                        self.stats.timeouts += 1
                        self._record_failure(endpoint, loop)
                    if attempt < self.max_retries:
                        self.stats.resubmissions += 1
                    continue
                except _CONNECTION_ERRORS + (SerializationError,) as exc:
                    # The worker died or the stream desynchronized.
                    # The reader task usually observes the death first
                    # and already tore the connection down (counting
                    # the one crash for the whole in-flight window);
                    # _discard is then a no-op.  Everyone resubmits
                    # exactly their own job.
                    last_error = exc
                    if await self._discard(endpoint):
                        self.stats.crashes += 1
                        self._record_failure(endpoint, loop)
                    if attempt < self.max_retries:
                        self.stats.resubmissions += 1
                    continue
                self.stats.jobs += 1
                self._record_success(endpoint)
                return self._codec.decode_outcome(outcome_blob)
        raise TransportError(
            f"job failed after {self.max_retries + 1} attempts on "
            f"dropped or unresponsive remote-worker connections: "
            f"{last_error}")

    async def _request(self, endpoint: _Endpoint, blob: bytes) -> bytes:
        kind, payload = await self._roundtrip(
            endpoint, FRAME_KIND_JOB, blob)
        if kind == FRAME_KIND_ERROR:
            raise RemoteJobError(
                f"remote worker {endpoint.address} rejected the job: "
                f"{payload.decode('utf-8', 'replace')}")
        if kind != FRAME_KIND_OUTCOME:
            raise SerializationError(
                f"expected an outcome frame, got {kind!r}")
        return payload


# ---------------------------------------------------------------------------
# Spawning local worker processes (tests, smoke, benchmarks, demos)
# ---------------------------------------------------------------------------

READY_MARKER = "remote-worker listening on "


def start_worker_process(context_path, host: str = "127.0.0.1",
                         port: int = 0, crash_sentinel=None,
                         timeout_s: float = 120.0,
                         psk: Optional[str] = None,
                         max_batch: Optional[int] = None,
                         max_wait_ms: Optional[float] = None
                         ) -> "Tuple[subprocess.Popen, str]":
    """Spawn ``python -m repro.service.remote_worker`` on this machine
    and block until its ready line; returns ``(process, "host:port")``.

    The deployment story is one worker per machine under a supervisor;
    this helper is the loopback stand-in the tests, ``serve-smoke`` and
    the ``svc_tcp_*`` benchmarks share.  ``port=0`` lets the worker
    pick an ephemeral port (parsed from the ready line);
    ``crash_sentinel`` forwards ``--crash-sentinel`` for the
    kill-mid-window acts; ``psk`` / ``max_batch`` / ``max_wait_ms``
    forward the v2-protocol knobs (handshake authenticator and the
    worker-side accumulator policy).
    """
    import repro
    src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    command = [sys.executable, "-m", "repro.service.remote_worker",
               "--context", str(context_path),
               "--host", host, "--listen", str(port)]
    if crash_sentinel is not None:
        command += ["--crash-sentinel", str(crash_sentinel)]
    if psk is not None:
        command += ["--psk", psk]
    if max_batch is not None:
        command += ["--max-batch", str(max_batch)]
    if max_wait_ms is not None:
        command += ["--max-wait-ms", str(max_wait_ms)]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               env=env, text=True)
    deadline = time.monotonic() + timeout_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            process.kill()
            raise TransportError(
                f"remote worker did not become ready within "
                f"{timeout_s:.0f}s")
        if process.poll() is not None:
            raise TransportError(
                f"remote worker exited with code {process.returncode} "
                "before becoming ready")
        readable, _, _ = select.select([process.stdout], [], [],
                                       min(remaining, 0.25))
        if readable:
            line = process.stdout.readline()
            if READY_MARKER in line:
                address = line.split(READY_MARKER, 1)[1].strip()
                return process, address
