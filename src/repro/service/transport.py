"""TCP transport for the worker tier: multi-machine shard workers.

The process-parallel tier (:mod:`repro.service.workers`) already ships
every job as canonical wire bytes — the encoding was built to cross
machine boundaries, but PR 4 only ever carried it over a
``ProcessPoolExecutor`` pipe on one host.  This module puts the same
bytes on real sockets:

* :func:`read_frame` / :func:`write_frame` — length-prefixed, versioned
  framing over asyncio streams (header layout and compatibility rule:
  ``docs/WIRE_FORMAT.md``; the byte-level codecs live in
  :mod:`repro.serialization`).
* :class:`WorkerServer` — the accept loop a standalone worker process
  (:mod:`repro.service.remote_worker`) runs: handshake, then a
  read-job/execute/write-outcome loop per connection, dispatching
  through the same :func:`~repro.service.workers.execute_job` the
  process tier uses.
* :class:`RemoteWorkerPool` — the dispatcher side, a drop-in for
  :class:`~repro.service.workers.WorkerPool` behind the shard workers
  (``ServiceConfig(remote_workers=["host:port", ...])``): round-robin
  over configured endpoints, lazy dialing, and the same
  crash-recovery contract as the process pool — a dropped connection
  is detected, the endpoint is re-dialed with exponential backoff, and
  the window job is resubmitted (to the reconnected worker or any
  other live endpoint), so a killed worker costs latency, never a
  lost request.

**Handshake.**  A connection is useless unless both ends hold the same
service context (scheme, curve, threshold parameters, keys), so the
first frame each way is a HELLO carrying the backend name and the
SHA-256 digest of the encoded context
(:func:`~repro.serialization.service_context_digest`).  A mismatch is
misprovisioning, not a transient fault: the server refuses with an
error frame and the client raises a typed
:class:`~repro.service.types.HandshakeError` instead of retrying.

**Failure taxonomy** (mirrors the process tier's
``BrokenProcessPool`` handling):

===========================  ============================================
observation                  reaction
===========================  ============================================
dial refused / timed out     try the next endpoint; backoff when all down
connection drops mid-job     count a crash, re-dial, resubmit the job
no answer within             count a timeout, discard the connection
``job_timeout_s`` (a hung,   (a late answer would desync the stream),
still-connected worker)      resubmit — hung is treated like dropped
garbage frame (bad magic,    the stream cannot be re-synchronized: close
version, oversized length)   the connection, resubmit elsewhere
``E`` frame from the server  :class:`~repro.service.types.RemoteJobError`
                             — resubmitting identical bytes cannot help
repeated failures on one     circuit breaker: quarantine the endpoint
endpoint                     for ``breaker_cooldown_s``, then re-probe
                             (half-open); it must serve to close
HELLO mismatch               sticky quarantine (misprovisioning cannot
                             heal); when *every* endpoint mismatches, a
                             typed HandshakeError after one round-robin
                             pass — not ``dial_deadline_s`` of retries
retry budget exhausted       :class:`~repro.service.types.TransportError`
===========================  ============================================
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import select
import subprocess
import sys
import time
from typing import List, Optional, Sequence, Tuple

from repro.errors import SerializationError
from repro.serialization import (
    FRAME_HEADER_BYTES, FRAME_KIND_CONTEXT, FRAME_KIND_ERROR,
    FRAME_KIND_HELLO, FRAME_KIND_JOB, FRAME_KIND_OUTCOME, WireCodec,
    decode_frame_header, decode_hello, decode_service_context,
    encode_frame, encode_hello, encode_service_context,
    service_context_digest,
)
from repro.service.types import (
    HandshakeError, RemoteJobError, TransportError, WorkerPoolStats,
)
from repro.service.workers import execute_job, warm_handle

#: Errors that mean "this connection is gone" (``IncompleteReadError``
#: is an ``EOFError``; ``ConnectionError`` and timeouts are ``OSError``
#: subclasses or raised alongside them).
_CONNECTION_ERRORS = (OSError, EOFError)


# ---------------------------------------------------------------------------
# Stream framing
# ---------------------------------------------------------------------------

async def read_frame(reader: asyncio.StreamReader) -> Tuple[bytes, bytes]:
    """Read one frame; returns ``(kind, payload)``.

    Raises :class:`asyncio.IncompleteReadError` when the peer closes
    (cleanly between frames or mid-frame — the transport treats both as
    a drop) and :class:`~repro.errors.SerializationError` on a header
    that fails validation, after which the stream must be closed: the
    length field of a garbage header cannot be trusted, so there is no
    way to find the next frame boundary.
    """
    header = await reader.readexactly(FRAME_HEADER_BYTES)
    kind, length = decode_frame_header(header)
    payload = await reader.readexactly(length)
    return kind, payload


def write_frame(writer: asyncio.StreamWriter, kind: bytes,
                payload: bytes) -> None:
    """Queue one frame on the writer (callers ``await writer.drain()``)."""
    writer.write(encode_frame(kind, payload))


def parse_address(address: str) -> Tuple[str, int]:
    """Split ``"host:port"`` (the last colon, so bare IPv6 literals
    work; the conventional bracketed form ``[::1]:9401`` is unwrapped —
    ``getaddrinfo`` wants the brackets gone)."""
    host, sep, port_text = address.rpartition(":")
    try:
        port = int(port_text)
    except ValueError:
        port = -1
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    if not sep or not host or not 0 < port < 65536:
        raise ValueError(
            f"remote worker address must look like 'host:port', "
            f"got {address!r}")
    return host, port


# ---------------------------------------------------------------------------
# The server side (what a remote worker process runs)
# ---------------------------------------------------------------------------

class WorkerServer:
    """Serve window jobs over TCP for one service context.

    One instance per worker process; any number of dispatcher
    connections, each handled by its own coroutine (handshake, then a
    job/outcome loop).  The crypto itself runs synchronously on the
    loop — a worker process exists to burn its core on pairings, and
    back-to-back jobs on separate connections simply queue, exactly
    like a process-pool worker's mailbox.
    """

    def __init__(self, handle, host: str = "127.0.0.1", port: int = 0,
                 fault_injector=None):
        # Raises TypeError for schemes without window entry points —
        # fail at construction, like WorkerPool.
        self._context = encode_service_context(handle)
        self._digest = service_context_digest(self._context)
        self._handle = handle
        self._codec = WireCodec(handle.scheme.group)
        self._group_name = handle.scheme.group.name
        self.host = host
        self.port = port
        self.fault_injector = fault_injector
        self.jobs_served = 0
        self._server: Optional[asyncio.base_events.Server] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    async def start(self) -> "WorkerServer":
        """Bind and start accepting; resolves ``port`` when it was 0."""
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        await self._server.serve_forever()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    # -- per-connection protocol -------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        try:
            if not await self._handshake(reader, writer):
                return
            while True:
                try:
                    kind, payload = await read_frame(reader)
                except _CONNECTION_ERRORS:
                    return                      # dispatcher went away
                except SerializationError as exc:
                    # Garbage header: framing is lost, close after a
                    # best-effort explanation.
                    await self._refuse(writer, str(exc))
                    return
                if kind == FRAME_KIND_CONTEXT:
                    # Live re-provisioning: a key-lifecycle transition
                    # pushes the new epoch's context in place instead
                    # of tearing the worker down.  The stream stays in
                    # sync either way, so a refused push answers with
                    # an E frame and keeps serving the *old* epoch.
                    await self._apply_context_push(writer, payload)
                    continue
                if kind != FRAME_KIND_JOB:
                    await self._refuse(
                        writer, f"expected a job frame, got {kind!r}")
                    return
                try:
                    job = self._codec.decode_job(payload)
                    outcome_blob = self._codec.encode_outcome(execute_job(
                        self._handle, job,
                        fault_injector=self.fault_injector))
                except Exception as exc:
                    # The frame arrived intact, so the stream is still
                    # in sync: report the job-level failure and keep
                    # serving this connection (the dispatcher raises
                    # RemoteJobError instead of resubmitting).
                    write_frame(writer, FRAME_KIND_ERROR,
                                f"{type(exc).__name__}: {exc}".encode(
                                    "utf-8"))
                    await writer.drain()
                    continue
                write_frame(writer, FRAME_KIND_OUTCOME, outcome_blob)
                await writer.drain()
                self.jobs_served += 1
        except _CONNECTION_ERRORS:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except _CONNECTION_ERRORS:
                pass

    async def _apply_context_push(self, writer: asyncio.StreamWriter,
                                  payload: bytes) -> None:
        """Validate and install a pushed new-epoch service context.

        Three invariants gate the swap — each one distinguishes a
        legitimate lifecycle transition from misprovisioning (or a
        replayed stale push after a crash): the backend must match, the
        public key bytes must be *identical* (refresh/reshare never
        change the master key), and the epoch must be strictly newer.
        On success the caches are re-warmed and the new HELLO (with the
        new context digest) is the acknowledgement.
        """
        try:
            handle = decode_service_context(payload)
        except Exception as exc:
            write_frame(writer, FRAME_KIND_ERROR,
                        f"bad context push: {exc}".encode("utf-8"))
            await writer.drain()
            return
        problem = None
        if handle.scheme.group.name != self._group_name:
            problem = (f"context push is for backend "
                       f"{handle.scheme.group.name!r}, this worker "
                       f"serves {self._group_name!r}")
        elif (handle.public_key.to_bytes()
                != self._handle.public_key.to_bytes()):
            problem = ("context push changes the public key — a "
                       "lifecycle transition must preserve it")
        elif handle.epoch <= self._handle.epoch:
            problem = (f"stale context push: epoch {handle.epoch} is "
                       f"not newer than epoch {self._handle.epoch}")
        if problem is not None:
            write_frame(writer, FRAME_KIND_ERROR, problem.encode("utf-8"))
            await writer.drain()
            return
        warm_handle(handle)
        self._handle = handle
        self._context = payload
        self._digest = service_context_digest(payload)
        write_frame(writer, FRAME_KIND_HELLO,
                    encode_hello(self._group_name, self._digest))
        await writer.drain()

    async def _handshake(self, reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> bool:
        """First frame must be a HELLO matching our context digest."""
        try:
            kind, payload = await read_frame(reader)
        except _CONNECTION_ERRORS:
            return False
        except SerializationError as exc:
            await self._refuse(writer, str(exc))
            return False
        if kind != FRAME_KIND_HELLO:
            await self._refuse(
                writer, f"expected HELLO as the first frame, got {kind!r}")
            return False
        try:
            group_name, digest = decode_hello(payload)
        except SerializationError as exc:
            await self._refuse(writer, f"bad HELLO payload: {exc}")
            return False
        if group_name != self._group_name or digest != self._digest:
            await self._refuse(
                writer,
                f"service-context mismatch: this worker serves backend "
                f"{self._group_name!r} with context digest "
                f"{self._digest.hex()[:16]}..., dispatcher offered "
                f"{group_name!r}/{digest.hex()[:16]}...")
            return False
        write_frame(writer, FRAME_KIND_HELLO,
                    encode_hello(self._group_name, self._digest))
        await writer.drain()
        return True

    async def _refuse(self, writer: asyncio.StreamWriter,
                      reason: str) -> None:
        try:
            write_frame(writer, FRAME_KIND_ERROR, reason.encode("utf-8"))
            await writer.drain()
        except _CONNECTION_ERRORS:
            pass


# ---------------------------------------------------------------------------
# The dispatcher side (what the shard pool runs)
# ---------------------------------------------------------------------------

class _Endpoint:
    """One configured remote worker address plus its live connection
    and circuit-breaker state."""

    __slots__ = ("host", "port", "reader", "writer", "request_lock",
                 "dial_lock", "dialed_once", "failures", "open_until",
                 "misprovisioned")

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port
        self.reader: Optional[asyncio.StreamReader] = None
        self.writer: Optional[asyncio.StreamWriter] = None
        #: One in-flight request per connection — the protocol has no
        #: request ids, so responses are matched by ordering.
        self.request_lock = asyncio.Lock()
        #: One dial at a time, so concurrent shards cannot open
        #: duplicate connections to the same worker.
        self.dial_lock = asyncio.Lock()
        self.dialed_once = False
        #: Consecutive failures (dial refused, drop mid-job, job
        #: timeout) since the last success; resets on any success.
        self.failures = 0
        #: Circuit breaker: loop-clock instant until which the endpoint
        #: is quarantined (skipped by the round-robin).  After it
        #: passes, the next acquire re-probes (half-open).
        self.open_until = 0.0
        #: HELLO refusal reason.  Misprovisioning (wrong backend, keys,
        #: committee) is a *configuration* error, not a transient fault:
        #: the quarantine is sticky for the pool's lifetime.
        self.misprovisioned: Optional[str] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    @property
    def connected(self) -> bool:
        return self.writer is not None and not self.writer.is_closing()


class RemoteWorkerPool:
    """A pool of TCP remote workers serving window jobs.

    Drop-in for :class:`~repro.service.workers.WorkerPool` behind
    :class:`~repro.service.shards.ShardWorker` (same ``run_job`` /
    ``start`` / ``aclose`` / ``stats`` surface), so the in-process,
    process-pool and remote tiers all serve the
    ``ServiceHandle.process_sign_window`` contract through one shard
    code path.

    Connections are dialed lazily (on the first job, and again after
    any drop), with exponential backoff while every endpoint is down —
    a worker restarted by its supervisor is picked up automatically,
    which is what lets ``serve-smoke`` kill a worker mid-window and
    still complete every request.
    """

    def __init__(self, handle, addresses: Sequence[str],
                 max_retries: int = 4, dial_timeout_s: float = 5.0,
                 dial_deadline_s: float = 30.0,
                 backoff_initial_s: float = 0.05,
                 backoff_max_s: float = 1.0,
                 job_timeout_s: float = 60.0,
                 breaker_threshold: int = 3,
                 breaker_cooldown_s: float = 2.0):
        if not addresses:
            raise ValueError("need at least one remote worker address")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if job_timeout_s <= 0:
            raise ValueError("job_timeout_s must be positive")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be at least 1")
        # Raises TypeError for schemes without window entry points.
        self._context = encode_service_context(handle)
        self._digest = service_context_digest(self._context)
        self._group_name = handle.scheme.group.name
        self._hello = encode_hello(self._group_name, self._digest)
        self._codec = WireCodec(handle.scheme.group)
        self._endpoints: List[_Endpoint] = [
            _Endpoint(*parse_address(address)) for address in addresses]
        self.max_retries = max_retries
        self.dial_timeout_s = dial_timeout_s
        self.dial_deadline_s = dial_deadline_s
        self.backoff_initial_s = backoff_initial_s
        self.backoff_max_s = backoff_max_s
        #: Hung-worker bound: a connected worker that has not answered
        #: a job within this window is treated as dead (discard the
        #: connection — a late answer would desync the stream — and
        #: resubmit elsewhere).
        self.job_timeout_s = job_timeout_s
        #: Circuit breaker: after this many consecutive failures an
        #: endpoint is quarantined for ``breaker_cooldown_s`` instead
        #: of being re-dialed on every round-robin pass.
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.stats = WorkerPoolStats(workers=len(self._endpoints))
        self._next = 0
        self._running = False

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def start(self) -> None:
        """Mark the pool live.  Dialing is lazy: a worker that is still
        booting (or being restarted) must not fail service start-up —
        the first job waits for it inside the backoff loop instead."""
        self._running = True

    async def aclose(self) -> None:
        self._running = False
        for endpoint in self._endpoints:
            await self._discard(endpoint)

    async def update_handle(self, handle) -> None:
        """Push new-epoch key material to every endpoint in place (a
        ``C`` context-push frame, acknowledged by a HELLO carrying the
        new digest) — the TCP analogue of the process pool's executor
        rebuild.  Called from inside the ``begin_epoch`` barrier, so no
        job shares a connection with the push.

        An endpoint that cannot be updated (unreachable, or it refuses
        the push) still holds the *old* shares — dead key material —
        so it is sticky-quarantined like any misprovisioned worker.
        Raises :class:`TransportError` when no endpoint took the push.
        """
        context = encode_service_context(handle)
        digest = service_context_digest(context)
        updated = 0
        for endpoint in self._endpoints:
            if endpoint.misprovisioned is not None:
                continue
            pushed = False
            try:
                if endpoint.connected or await self._dial(endpoint):
                    pushed = await self._push_context(
                        endpoint, context, digest)
            except HandshakeError as exc:
                endpoint.misprovisioned = str(exc)
                await self._discard(endpoint)
                continue
            except _CONNECTION_ERRORS + (SerializationError,
                                         asyncio.TimeoutError):
                pushed = False
            if pushed:
                updated += 1
            else:
                await self._discard(endpoint)
                endpoint.misprovisioned = (
                    f"unreachable during the epoch-{handle.epoch} context "
                    f"push; it still holds stale key material")
        if not updated:
            raise TransportError(
                f"no remote worker accepted the epoch-{handle.epoch} "
                f"context push (endpoints: "
                f"{', '.join(e.address for e in self._endpoints)})")
        self._context = context
        self._digest = digest
        self._hello = encode_hello(self._group_name, digest)
        self.stats.rewarms += 1

    async def _push_context(self, endpoint: "_Endpoint", context: bytes,
                            digest: bytes) -> bool:
        async with endpoint.request_lock:
            if not endpoint.connected:
                return False
            write_frame(endpoint.writer, FRAME_KIND_CONTEXT, context)
            await endpoint.writer.drain()
            kind, payload = await asyncio.wait_for(
                read_frame(endpoint.reader), self.job_timeout_s)
        if kind == FRAME_KIND_ERROR:
            raise HandshakeError(
                f"remote worker {endpoint.address} refused the context "
                f"push: {payload.decode('utf-8', 'replace')}")
        if kind != FRAME_KIND_HELLO:
            raise SerializationError(
                f"expected HELLO after a context push, got {kind!r}")
        group_name, answered = decode_hello(payload)
        if group_name != self._group_name or answered != digest:
            raise HandshakeError(
                f"remote worker {endpoint.address} acknowledged the "
                f"context push with the wrong digest")
        return True

    # -- connection management ----------------------------------------------
    async def _discard(self, endpoint: _Endpoint) -> bool:
        """Tear down a (broken) connection.  Returns True only for the
        caller that actually closed it, so one worker death breaking
        several queued jobs is counted as one crash — the same
        first-observer rule as ``WorkerPool._restart``."""
        writer = endpoint.writer
        endpoint.reader = endpoint.writer = None
        if writer is None:
            return False
        writer.close()
        try:
            await writer.wait_closed()
        except _CONNECTION_ERRORS:
            pass
        return True

    async def _dial(self, endpoint: _Endpoint) -> bool:
        """(Re)connect one endpoint and run the HELLO handshake.

        Returns False on unreachable/dropped (the caller moves on to
        the next endpoint); raises
        :class:`~repro.service.types.HandshakeError` on a live worker
        that answers with the wrong version, backend or context digest
        (retrying cannot fix misprovisioning).
        """
        async with endpoint.dial_lock:
            if endpoint.connected:
                return True
            try:
                reader, writer = await asyncio.wait_for(
                    asyncio.open_connection(endpoint.host, endpoint.port),
                    self.dial_timeout_s)
            except _CONNECTION_ERRORS + (asyncio.TimeoutError,):
                return False
            try:
                write_frame(writer, FRAME_KIND_HELLO, self._hello)
                await writer.drain()
                kind, payload = await asyncio.wait_for(
                    read_frame(reader), self.dial_timeout_s)
            except _CONNECTION_ERRORS + (asyncio.TimeoutError,):
                writer.close()
                return False
            except SerializationError as exc:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} sent a malformed "
                    f"handshake frame: {exc}")
            if kind == FRAME_KIND_ERROR:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} refused the "
                    f"handshake: {payload.decode('utf-8', 'replace')}")
            if kind != FRAME_KIND_HELLO:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} answered HELLO "
                    f"with frame kind {kind!r}")
            try:
                group_name, digest = decode_hello(payload)
            except SerializationError as exc:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} sent a bad HELLO "
                    f"payload: {exc}")
            if group_name != self._group_name or digest != self._digest:
                writer.close()
                raise HandshakeError(
                    f"remote worker {endpoint.address} serves a different "
                    f"service context ({group_name!r}/"
                    f"{digest.hex()[:16]}..., expected "
                    f"{self._group_name!r}/{self._digest.hex()[:16]}...)")
            endpoint.reader, endpoint.writer = reader, writer
            if endpoint.dialed_once:
                self.stats.reconnects += 1
            endpoint.dialed_once = True
            return True

    def _record_failure(self, endpoint: _Endpoint, loop) -> None:
        """Count one failure against the endpoint's breaker; trip the
        breaker (quarantine for ``breaker_cooldown_s``) at the
        threshold.  A tripped endpoint re-trips on a single half-open
        failure — a worker must actually serve something to close it."""
        endpoint.failures += 1
        if endpoint.failures >= self.breaker_threshold:
            endpoint.open_until = loop.time() + self.breaker_cooldown_s
            # Half-open probes that fail re-trip immediately.
            endpoint.failures = self.breaker_threshold - 1
            self.stats.breaker_trips += 1

    @staticmethod
    def _record_success(endpoint: _Endpoint) -> None:
        endpoint.failures = 0
        endpoint.open_until = 0.0

    async def _acquire(self) -> _Endpoint:
        """A connected endpoint, round-robin; dial-with-backoff until
        one answers or the dial deadline expires.

        Quarantined endpoints (breaker open, or sticky-misprovisioned
        after a HELLO refusal) are skipped.  When *every* endpoint is
        misprovisioned the pool raises a typed
        :class:`~repro.service.types.HandshakeError` after one full
        round-robin pass — re-dialing a worker provisioned with the
        wrong service context for ``dial_deadline_s`` cannot fix a
        configuration error.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.dial_deadline_s
        backoff = self.backoff_initial_s
        while True:
            if not self._running:
                raise TransportError("remote worker pool is not running")
            now = loop.time()
            for _ in range(len(self._endpoints)):
                endpoint = self._endpoints[self._next
                                           % len(self._endpoints)]
                self._next += 1
                if endpoint.misprovisioned is not None or \
                        endpoint.open_until > now:
                    continue
                if endpoint.connected:
                    return endpoint
                try:
                    if await self._dial(endpoint):
                        self._record_success(endpoint)
                        return endpoint
                except HandshakeError as exc:
                    endpoint.misprovisioned = str(exc)
                    continue
                self._record_failure(endpoint, loop)
            if all(e.misprovisioned is not None for e in self._endpoints):
                raise HandshakeError(
                    "every remote worker endpoint refused the HELLO "
                    "handshake (misprovisioned): " + "; ".join(
                        e.misprovisioned for e in self._endpoints))
            if loop.time() >= deadline:
                raise TransportError(
                    f"no remote worker reachable within "
                    f"{self.dial_deadline_s:.1f}s (endpoints: "
                    f"{', '.join(e.address for e in self._endpoints)})")
            await asyncio.sleep(backoff)
            backoff = min(2 * backoff, self.backoff_max_s)

    # -- job dispatch -------------------------------------------------------
    async def run_job(self, job):
        """Dispatch one window job to a remote worker and decode its
        outcome, reconnecting and resubmitting on dropped connections —
        the socket analogue of ``WorkerPool.run_job``'s
        ``BrokenProcessPool`` recovery."""
        if not self._running:
            raise TransportError("remote worker pool is not running")
        blob = self._codec.encode_job(job)
        loop = asyncio.get_running_loop()
        last_error = None
        for attempt in range(self.max_retries + 1):
            endpoint = await self._acquire()
            try:
                outcome_blob = await asyncio.wait_for(
                    self._request(endpoint, blob), self.job_timeout_s)
            except asyncio.TimeoutError:
                # Hung worker: connected but silent past the job
                # timeout.  A late answer would desync the one-in-
                # flight stream, so the connection is as dead as a
                # dropped one — discard and resubmit (the breaker keeps
                # a chronically hung endpoint out of the rotation).
                last_error = TransportError(
                    f"remote worker {endpoint.address} did not answer a "
                    f"job within {self.job_timeout_s:.1f}s")
                if await self._discard(endpoint):
                    self.stats.timeouts += 1
                self._record_failure(endpoint, loop)
                if attempt < self.max_retries:
                    self.stats.resubmissions += 1
                continue
            except _CONNECTION_ERRORS + (SerializationError,) as exc:
                # The worker died or the stream desynchronized; either
                # way this connection is unusable.  First observer
                # counts the crash; everyone resubmits.
                last_error = exc
                if await self._discard(endpoint):
                    self.stats.crashes += 1
                self._record_failure(endpoint, loop)
                if attempt < self.max_retries:
                    self.stats.resubmissions += 1
                continue
            self.stats.jobs += 1
            self._record_success(endpoint)
            return self._codec.decode_outcome(outcome_blob)
        raise TransportError(
            f"job failed after {self.max_retries + 1} attempts on "
            f"dropped or unresponsive remote-worker connections: "
            f"{last_error}")

    async def _request(self, endpoint: _Endpoint, blob: bytes) -> bytes:
        async with endpoint.request_lock:
            if not endpoint.connected:
                # The connection died while we queued on the lock; the
                # caller discards (a no-op for non-first observers) and
                # resubmits.
                raise ConnectionResetError(
                    f"connection to {endpoint.address} lost before "
                    "dispatch")
            write_frame(endpoint.writer, FRAME_KIND_JOB, blob)
            await endpoint.writer.drain()
            kind, payload = await read_frame(endpoint.reader)
        if kind == FRAME_KIND_ERROR:
            raise RemoteJobError(
                f"remote worker {endpoint.address} rejected the job: "
                f"{payload.decode('utf-8', 'replace')}")
        if kind != FRAME_KIND_OUTCOME:
            raise SerializationError(
                f"expected an outcome frame, got {kind!r}")
        return payload


# ---------------------------------------------------------------------------
# Spawning local worker processes (tests, smoke, benchmarks, demos)
# ---------------------------------------------------------------------------

READY_MARKER = "remote-worker listening on "


def start_worker_process(context_path, host: str = "127.0.0.1",
                         port: int = 0, crash_sentinel=None,
                         timeout_s: float = 120.0
                         ) -> "Tuple[subprocess.Popen, str]":
    """Spawn ``python -m repro.service.remote_worker`` on this machine
    and block until its ready line; returns ``(process, "host:port")``.

    The deployment story is one worker per machine under a supervisor;
    this helper is the loopback stand-in the tests, ``serve-smoke`` and
    the ``svc_tcp_*`` benchmarks share.  ``port=0`` lets the worker
    pick an ephemeral port (parsed from the ready line);
    ``crash_sentinel`` forwards ``--crash-sentinel`` for the
    kill-mid-window acts.
    """
    import repro
    src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    command = [sys.executable, "-m", "repro.service.remote_worker",
               "--context", str(context_path),
               "--host", host, "--listen", str(port)]
    if crash_sentinel is not None:
        command += ["--crash-sentinel", str(crash_sentinel)]
    process = subprocess.Popen(command, stdout=subprocess.PIPE,
                               env=env, text=True)
    deadline = time.monotonic() + timeout_s
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            process.kill()
            raise TransportError(
                f"remote worker did not become ready within "
                f"{timeout_s:.0f}s")
        if process.poll() is not None:
            raise TransportError(
                f"remote worker exited with code {process.returncode} "
                "before becoming ready")
        readable, _, _ = select.select([process.stdout], [], [],
                                       min(remaining, 0.25))
        if readable:
            line = process.stdout.readline()
            if READY_MARKER in line:
                address = line.split(READY_MARKER, 1)[1].strip()
                return process, address
