"""Client-side load generation and latency measurement.

Two classic load models:

* **closed loop** — ``concurrency`` virtual clients, each issuing its
  next request the moment the previous one completes.  Offered load
  adapts to service speed; this is the model that fills batch windows
  deterministically and measures peak throughput.
* **open loop** — Poisson arrivals at ``rate_rps``, independent of
  completions (the "millions of users" model: users do not wait for each
  other).  Under overload the bounded queues shed requests, which the
  report counts rather than hides.

Latency is measured per request from submission to completion and
reported as p50/p99/mean plus throughput over the wall-clock span.

The generator is execution-tier agnostic: the same workload drives an
in-process service or the process-parallel worker tier — the knob is
``ServiceConfig(workers=N)`` on the service under test, which is how
``tools/bench_snapshot.py`` (``svc_mp_*``) and the F6d experiment
measure multi-core scaling at fixed offered load.  It is also
*transport* agnostic: :class:`GatewayClient` wraps the HTTP front door
(:class:`~repro.service.gateway.HttpGateway`) in the same
``sign``/``verify`` shape with the same typed errors, so a workload
closure swaps between in-process and HTTP by swapping the client
object (the ``svc_http_*`` benchmark ops).
"""

from __future__ import annotations

import asyncio
import json
import math
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, List, Optional, Tuple

from repro.service.tenants import TenantQuotaError
from repro.service.types import (
    RequestExpiredError, RequestFailedError, ServiceClosedError,
    ServiceOverloadedError, SignResult, VerifyResult,
)


def percentile(samples: List[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by the nearest-rank method."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    sent: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    #: Requests shed past admission because their deadline expired
    #: while queued (only with ``ServiceConfig(request_deadline_s=...)``).
    expired: int = 0
    invalid: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99)

    @property
    def mean_ms(self) -> float:
        return (sum(self.latencies_ms) / len(self.latencies_ms)
                if self.latencies_ms else float("nan"))

    def summary(self) -> dict:
        return {
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "expired": self.expired,
            "invalid": self.invalid,
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


#: A workload maps the request ordinal to an awaitable service call.
Workload = Callable[[int], Awaitable[object]]


class LoadGenerator:
    """Drives a workload against the service and measures it."""

    def __init__(self, workload: Workload, rng: Optional[random.Random] = None):
        self.workload = workload
        self.rng = rng or random.Random()

    async def _issue(self, ordinal: int, report: LoadReport,
                     loop) -> None:
        report.sent += 1
        started = loop.time()
        try:
            result = await self.workload(ordinal)
        except ServiceOverloadedError:
            report.rejected += 1
            return
        except RequestExpiredError:
            report.expired += 1
            return
        except RequestFailedError:
            report.failed += 1
            return
        report.completed += 1
        report.latencies_ms.append((loop.time() - started) * 1000.0)
        if isinstance(result, VerifyResult) and not result.valid:
            report.invalid += 1

    async def run_closed(self, total: int, concurrency: int) -> LoadReport:
        """Closed loop: ``concurrency`` clients, ``total`` requests."""
        report = LoadReport()
        loop = asyncio.get_running_loop()
        counter = iter(range(total))
        started = loop.time()

        async def client() -> None:
            for ordinal in counter:
                await self._issue(ordinal, report, loop)

        await asyncio.gather(*(client() for _ in range(concurrency)))
        report.duration_s = loop.time() - started
        return report

    async def run_open(self, total: int, rate_rps: float) -> LoadReport:
        """Open loop: Poisson arrivals at ``rate_rps``, ``total`` requests.

        Inter-arrival gaps are exponential with mean ``1/rate_rps``;
        requests are fired without waiting for completions, so queueing
        delay and load shedding show up instead of throttling the
        source.
        """
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        report = LoadReport()
        loop = asyncio.get_running_loop()
        started = loop.time()
        tasks = []
        for ordinal in range(total):
            tasks.append(loop.create_task(
                self._issue(ordinal, report, loop)))
            if ordinal + 1 < total:
                await asyncio.sleep(self.rng.expovariate(rate_rps))
        await asyncio.gather(*tasks)
        report.duration_s = loop.time() - started
        return report


class GatewayError(Exception):
    """An HTTP error from the gateway with no richer typed mapping
    (400/401/403/404/405/413 — caller bugs, not load outcomes)."""

    def __init__(self, status: int, error: str, detail: str = ""):
        super().__init__(f"HTTP {status} {error}: {detail}")
        self.status = status
        self.error = error
        self.detail = detail


class GatewayClient:
    """A keep-alive HTTP client for the gateway, shaped so the same
    :class:`LoadGenerator` workloads drive the HTTP front door.

    ``sign``/``verify`` raise the *same* typed errors as the in-process
    service API — ``429`` becomes :class:`TenantQuotaError`, ``503``
    :class:`ServiceOverloadedError`, ``504`` :class:`RequestExpiredError`
    and ``500`` :class:`RequestFailedError` — so load reports count HTTP
    shedding exactly as they count in-process shedding.  Connections are
    pooled per client; a pooled connection the server closed between
    requests (drain, idle timeout) is retried once on a fresh socket —
    only when EOF arrives before any response byte, so a request is
    never replayed past the point the server might have answered it.

    ``codec`` (a :class:`~repro.serialization.WireCodec`) decodes
    signature hex into :class:`~repro.core.keys.Signature` objects; with
    ``codec=None`` the :class:`SignResult` carries the raw hex string.
    """

    def __init__(self, host: str, port: int, api_key: str, codec=None):
        self.host = host
        self.port = port
        self.api_key = api_key
        self.codec = codec
        self._idle: List[Tuple[asyncio.StreamReader,
                               asyncio.StreamWriter]] = []

    # -- the service-shaped API ---------------------------------------------
    async def sign(self, message: bytes) -> SignResult:
        payload = await self.request(
            "POST", "/v1/sign", {"message": message.hex()})
        signature = payload["signature"]
        if self.codec is not None:
            signature = self.codec.decode_signature(
                bytes.fromhex(signature))
        return SignResult(
            message=message, signature=signature,
            shard_id=payload["shard_id"], batch_size=payload["batch_size"],
            fallback=payload["fallback"], latency_ms=payload["latency_ms"])

    async def verify(self, message: bytes, signature) -> VerifyResult:
        if self.codec is not None and not isinstance(signature, str):
            signature = self.codec.encode_signature(signature).hex()
        payload = await self.request(
            "POST", "/v1/verify",
            {"message": message.hex(), "signature": signature})
        return VerifyResult(
            message=message, valid=payload["valid"],
            shard_id=payload["shard_id"], batch_size=payload["batch_size"],
            latency_ms=payload["latency_ms"])

    async def healthz(self) -> dict:
        return await self.request("GET", "/healthz")

    async def metrics(self) -> str:
        return await self.request("GET", "/metrics")

    async def admin_refresh(self) -> dict:
        return await self.request("POST", "/admin/refresh", {})

    async def admin_reshare(self, threshold: int, indices) -> dict:
        return await self.request(
            "POST", "/admin/reshare",
            {"threshold": threshold, "indices": list(indices)})

    async def admin_resize(self, shards: int) -> dict:
        return await self.request(
            "POST", "/admin/resize", {"shards": shards})

    async def close(self) -> None:
        while self._idle:
            _, writer = self._idle.pop()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # -- HTTP plumbing ------------------------------------------------------
    async def request(self, method: str, path: str,
                      payload: Optional[dict] = None):
        """One HTTP exchange; returns the decoded response body and
        raises the typed error the status code maps to."""
        body = (json.dumps(payload).encode("utf-8")
                if payload is not None else b"")
        pooled = bool(self._idle)
        reader, writer = (self._idle.pop() if pooled
                          else await self._connect())
        try:
            status, headers, response = await self._exchange(
                reader, writer, method, path, body)
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            writer.close()
            if not pooled:
                raise
            # A stale pooled connection: the server closed it while it
            # sat idle.  Nothing of this request was answered, so one
            # retry on a fresh socket is safe.
            reader, writer = await self._connect()
            status, headers, response = await self._exchange(
                reader, writer, method, path, body)
        if headers.get("connection", "").lower() == "keep-alive":
            self._idle.append((reader, writer))
        else:
            writer.close()
        if headers.get("content-type", "").startswith("application/json"):
            decoded = json.loads(response.decode("utf-8"))
        else:
            decoded = response.decode("utf-8")
        if status == 200:
            return decoded
        raise self._error_for(status, headers, decoded)

    async def _connect(self):
        return await asyncio.open_connection(self.host, self.port)

    async def _exchange(self, reader, writer, method: str, path: str,
                        body: bytes):
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {self.host}:{self.port}\r\n"
            f"X-API-Key: {self.api_key}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"\r\n").encode("latin-1")
        writer.write(head + body)
        await writer.drain()
        status_line = await reader.readline()
        if not status_line:
            raise ConnectionResetError("connection closed by gateway")
        status = int(status_line.decode("ascii").split()[1])
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        response = await reader.readexactly(length) if length else b""
        return status, headers, response

    @staticmethod
    def _error_for(status: int, headers: Dict[str, str], decoded):
        error = (decoded.get("error", "unknown")
                 if isinstance(decoded, dict) else "unknown")
        detail = (decoded.get("detail", "")
                  if isinstance(decoded, dict) else str(decoded))
        if status == 429:
            retry_after = float(headers.get("retry-after", "1"))
            reason = "rate" if "rate" in detail else "in-flight"
            return TenantQuotaError("remote", reason, retry_after)
        if status == 503:
            if error == "closed":
                return ServiceClosedError(detail)
            return ServiceOverloadedError(-1, 0)
        if status == 504:
            return RequestExpiredError(-1, 0.0)
        if status == 500:
            return RequestFailedError(detail)
        return GatewayError(status, error, detail)
