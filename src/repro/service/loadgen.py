"""Client-side load generation and latency measurement.

Two classic load models:

* **closed loop** — ``concurrency`` virtual clients, each issuing its
  next request the moment the previous one completes.  Offered load
  adapts to service speed; this is the model that fills batch windows
  deterministically and measures peak throughput.
* **open loop** — Poisson arrivals at ``rate_rps``, independent of
  completions (the "millions of users" model: users do not wait for each
  other).  Under overload the bounded queues shed requests, which the
  report counts rather than hides.

Latency is measured per request from submission to completion and
reported as p50/p99/mean plus throughput over the wall-clock span.

The generator is execution-tier agnostic: the same workload drives an
in-process service or the process-parallel worker tier — the knob is
``ServiceConfig(workers=N)`` on the service under test, which is how
``tools/bench_snapshot.py`` (``svc_mp_*``) and the F6d experiment
measure multi-core scaling at fixed offered load.
"""

from __future__ import annotations

import asyncio
import math
import random
from dataclasses import dataclass, field
from typing import Awaitable, Callable, List, Optional

from repro.service.types import (
    RequestExpiredError, RequestFailedError, ServiceOverloadedError,
    VerifyResult,
)


def percentile(samples: List[float], q: float) -> float:
    """The q-th percentile (0 < q <= 100) by the nearest-rank method."""
    if not samples:
        return float("nan")
    ordered = sorted(samples)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass
class LoadReport:
    """Outcome of one load-generation run."""

    sent: int = 0
    completed: int = 0
    rejected: int = 0
    failed: int = 0
    #: Requests shed past admission because their deadline expired
    #: while queued (only with ``ServiceConfig(request_deadline_s=...)``).
    expired: int = 0
    invalid: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.duration_s if self.duration_s else 0.0

    @property
    def p50_ms(self) -> float:
        return percentile(self.latencies_ms, 50)

    @property
    def p99_ms(self) -> float:
        return percentile(self.latencies_ms, 99)

    @property
    def mean_ms(self) -> float:
        return (sum(self.latencies_ms) / len(self.latencies_ms)
                if self.latencies_ms else float("nan"))

    def summary(self) -> dict:
        return {
            "sent": self.sent,
            "completed": self.completed,
            "rejected": self.rejected,
            "failed": self.failed,
            "expired": self.expired,
            "invalid": self.invalid,
            "throughput_rps": round(self.throughput_rps, 2),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }


#: A workload maps the request ordinal to an awaitable service call.
Workload = Callable[[int], Awaitable[object]]


class LoadGenerator:
    """Drives a workload against the service and measures it."""

    def __init__(self, workload: Workload, rng: Optional[random.Random] = None):
        self.workload = workload
        self.rng = rng or random.Random()

    async def _issue(self, ordinal: int, report: LoadReport,
                     loop) -> None:
        report.sent += 1
        started = loop.time()
        try:
            result = await self.workload(ordinal)
        except ServiceOverloadedError:
            report.rejected += 1
            return
        except RequestExpiredError:
            report.expired += 1
            return
        except RequestFailedError:
            report.failed += 1
            return
        report.completed += 1
        report.latencies_ms.append((loop.time() - started) * 1000.0)
        if isinstance(result, VerifyResult) and not result.valid:
            report.invalid += 1

    async def run_closed(self, total: int, concurrency: int) -> LoadReport:
        """Closed loop: ``concurrency`` clients, ``total`` requests."""
        report = LoadReport()
        loop = asyncio.get_running_loop()
        counter = iter(range(total))
        started = loop.time()

        async def client() -> None:
            for ordinal in counter:
                await self._issue(ordinal, report, loop)

        await asyncio.gather(*(client() for _ in range(concurrency)))
        report.duration_s = loop.time() - started
        return report

    async def run_open(self, total: int, rate_rps: float) -> LoadReport:
        """Open loop: Poisson arrivals at ``rate_rps``, ``total`` requests.

        Inter-arrival gaps are exponential with mean ``1/rate_rps``;
        requests are fired without waiting for completions, so queueing
        delay and load shedding show up instead of throttling the
        source.
        """
        if rate_rps <= 0:
            raise ValueError("rate_rps must be positive")
        report = LoadReport()
        loop = asyncio.get_running_loop()
        started = loop.time()
        tasks = []
        for ordinal in range(total):
            tasks.append(loop.create_task(
                self._issue(ordinal, report, loop)))
            if ordinal + 1 < total:
                await asyncio.sleep(self.rng.expovariate(rate_rps))
        await asyncio.gather(*tasks)
        report.duration_s = loop.time() - started
        return report
