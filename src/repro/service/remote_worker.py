"""Standalone TCP shard worker: ``python -m repro.service.remote_worker``.

One process per machine.  It decodes an encoded service context once
(``--context ctx.bin``), warms the hot caches (``PreparedG2`` line
coefficients for every fixed pairing argument, fixed-base window tables
for the derived generators — the same
:func:`~repro.service.workers.warm_handle` the process tier runs), then
serves ``combine_window`` / ``verify_window`` / ``PartialSignJob``
requests over the framed TCP protocol of
:mod:`repro.service.transport` until killed.  Point a service at it
with ``ServiceConfig(remote_workers=["host:port", ...])``.

Serve a context on an ephemeral port (printed on the ready line)::

    PYTHONPATH=src python -m repro.service.remote_worker \\
        --context ctx.bin --listen 0

Provision a demo context (a trusted-dealer committee; a real
deployment ships contexts out of band and each server only its own
share)::

    PYTHONPATH=src python -m repro.service.remote_worker \\
        --write-context ctx.bin --backend bn254 --t 2 --n 5

Fault injection for the crash-recovery acts (``--crash-sentinel``): the
worker dies hard (``os._exit``) on the first partial it signs while the
sentinel file does not exist — the TCP analogue of the
:class:`~repro.service.faults.WorkerCrashFault` process test.  A
restarted worker sees the sentinel and serves honestly, so a
supervisor restart plus the dispatcher's reconnect/resubmission
completes every request.
"""

from __future__ import annotations

import argparse
import asyncio
import pathlib
import random
import sys


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.remote_worker",
        description=__doc__.splitlines()[0])
    parser.add_argument("--context", type=pathlib.Path,
                        help="encoded service context to serve "
                        "(see repro.serialization.encode_service_context)")
    parser.add_argument("--listen", type=int, default=0, metavar="PORT",
                        help="TCP port (0 = ephemeral; the bound port is "
                        "printed on the ready line)")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default loopback; use "
                        "0.0.0.0 for a LAN worker)")
    parser.add_argument("--crash-sentinel", type=pathlib.Path,
                        default=None,
                        help="die (os._exit) on the first partial signed "
                        "while this file does not exist — crash-recovery "
                        "fault injection")
    parser.add_argument("--psk", default=None, metavar="KEY",
                        help="pre-shared key: require dispatchers to "
                        "authenticate their HELLO with "
                        "HMAC-SHA256(psk, context digest); both ends "
                        "must configure the same key (or neither)")
    parser.add_argument("--max-batch", type=int, default=16,
                        help="worker-side accumulator: flush a window "
                        "once this many shipped requests are pending "
                        "(default 16)")
    parser.add_argument("--max-wait-ms", type=float, default=2.0,
                        help="worker-side accumulator: linger this long "
                        "for stragglers before flushing a short window "
                        "(default 2.0)")
    parser.add_argument("--write-context", type=pathlib.Path,
                        default=None, metavar="PATH",
                        help="provisioning mode: dealer-generate a "
                        "committee, write its encoded context to PATH "
                        "and exit (no serving)")
    parser.add_argument("--backend", default="bn254",
                        choices=["toy", "bn254"],
                        help="--write-context: bilinear group backend")
    parser.add_argument("--t", type=int, default=2,
                        help="--write-context: threshold")
    parser.add_argument("--n", type=int, default=5,
                        help="--write-context: committee size")
    parser.add_argument("--seed", type=int, default=1,
                        help="--write-context: key-generation RNG seed")
    return parser


def write_context(args) -> int:
    from repro.core.scheme import ServiceHandle
    from repro.groups import get_group
    from repro.serialization import encode_service_context

    handle = ServiceHandle.dealer(get_group(args.backend), args.t, args.n,
                                  rng=random.Random(args.seed))
    blob = encode_service_context(handle)
    args.write_context.write_bytes(blob)
    print(f"wrote service context ({args.backend}, t={args.t}, "
          f"n={args.n}, {len(blob)} bytes) to {args.write_context}")
    return 0


async def serve(args) -> int:
    from repro.serialization import decode_service_context
    from repro.service.faults import WorkerCrashFault
    from repro.service.transport import READY_MARKER, WorkerServer
    from repro.service.workers import warm_handle

    handle = decode_service_context(args.context.read_bytes())
    # Warm before binding: once the ready line is printed, the first
    # job pays only its own crypto (same guarantee as a process-pool
    # worker's initializer).
    warm_handle(handle)
    fault_injector = (WorkerCrashFault(args.crash_sentinel)
                      if args.crash_sentinel is not None else None)
    psk = args.psk.encode("utf-8") if args.psk else None
    server = WorkerServer(handle, host=args.host, port=args.listen,
                          fault_injector=fault_injector, psk=psk,
                          max_batch=args.max_batch,
                          max_wait_ms=args.max_wait_ms)
    await server.start()
    print(f"{READY_MARKER}{server.host}:{server.port}", flush=True)
    try:
        await server.serve_forever()
    except asyncio.CancelledError:
        pass
    finally:
        await server.aclose()
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.write_context is not None:
        return write_context(args)
    if args.context is None:
        build_parser().error("--context is required to serve "
                             "(or use --write-context)")
    if not args.context.exists():
        print(f"remote-worker: context file {args.context} not found",
              file=sys.stderr)
        return 2
    try:
        return asyncio.run(serve(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
