"""The production front door: a dependency-free asyncio HTTP gateway.

Everything below :class:`~repro.service.frontend.SigningService` speaks
Python — callers ``await service.sign(...)`` in-process.  Real
deployments (Thetacrypt's REST front end is the model) put the signing
core behind HTTP so heterogeneous applications can reach it.  This
module is that layer, built directly on ``asyncio.start_server`` with a
small HTTP/1.1 implementation (request line, headers, Content-Length
bodies, keep-alive) — no web framework, per the repo's
no-new-dependencies rule.

The route table:

* ``POST /v1/sign`` / ``POST /v1/verify`` — the data plane.  JSON in
  (hex-encoded message bytes; signatures in the
  :class:`~repro.serialization.WireCodec` encoding), JSON out, with a
  server-assigned request id echoed in ``X-Request-Id``.
* ``GET /healthz`` — liveness (unauthenticated).
* ``GET /metrics`` — Prometheus text exposition (unauthenticated),
  rendering the whole telemetry surface: gateway route counters and
  latency histograms, per-tenant quota accounting, service admission
  counters, per-shard window stats, worker-tier stats and epoch
  lifecycle stats.
* ``POST /admin/refresh`` / ``/admin/reshare`` / ``/admin/resize`` —
  the control plane: the PR 7 live key-lifecycle machinery driven over
  the wire (requires a tenant with ``admin=True``).

Typed shedding maps onto HTTP status codes: a tenant over its own quota
gets ``429`` with a ``Retry-After`` derived from its token bucket; a
request shed by the service's bounded queues gets ``503``; a deadline
miss gets ``504``; an exhausted robust fallback gets ``500``.  Every
error body is JSON with a stable ``error`` discriminator.

Graceful drain: :meth:`HttpGateway.stop` closes the listener, lets
every in-flight request finish and be answered, then closes idle
keep-alive connections — so the shutdown order *gateway drain, then
service stop* loses nothing.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ReproError
from repro.net.metrics import (
    Histogram, MetricFamily, render_prometheus,
)
from repro.serialization import WireCodec
from repro.service.frontend import SigningService
from repro.service.tenants import (
    TenantConfig, TenantQuotaError, TenantRegistry, TenantState,
    UnknownTenantError,
)
from repro.service.types import (
    RequestExpiredError, RequestFailedError, ServiceClosedError,
    ServiceOverloadedError,
)

#: Request bodies larger than this are refused with ``413`` before the
#: service sees them (a sign request is a digest-sized message; anything
#: megabyte-scale is a client bug or abuse).
MAX_BODY_BYTES = 1 << 20

_JSON = "application/json"
_PROMETHEUS = "text/plain; version=0.0.4; charset=utf-8"

_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 401: "Unauthorized", 403: "Forbidden",
    404: "Not Found", 405: "Method Not Allowed",
    413: "Payload Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HttpError(Exception):
    """An error with a ready HTTP mapping, raised by route handlers."""

    def __init__(self, status: int, error: str, detail: str = "",
                 headers: Iterable[Tuple[str, str]] = ()):
        super().__init__(detail or error)
        self.status = status
        self.error = error
        self.detail = detail
        self.headers = list(headers)


class _Request:
    """One parsed HTTP request."""

    __slots__ = ("method", "path", "headers", "body", "request_id")

    def __init__(self, method: str, path: str,
                 headers: Dict[str, str], body: bytes):
        self.method = method
        self.path = path
        self.headers = headers
        self.body = body
        self.request_id = ""

    def json(self) -> dict:
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise _HttpError(400, "bad-json",
                             f"request body is not JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise _HttpError(400, "bad-json",
                             "request body must be a JSON object")
        return payload


def _hex_field(payload: dict, field: str) -> bytes:
    value = payload.get(field)
    if not isinstance(value, str):
        raise _HttpError(400, "missing-field",
                         f"field {field!r} must be a hex string")
    try:
        return bytes.fromhex(value)
    except ValueError:
        raise _HttpError(400, "bad-hex",
                         f"field {field!r} is not valid hex") from None


def _int_field(payload: dict, field: str) -> int:
    value = payload.get(field)
    if not isinstance(value, int) or isinstance(value, bool):
        raise _HttpError(400, "missing-field",
                         f"field {field!r} must be an integer")
    return value


class _Connection:
    """Per-connection bookkeeping for the drain protocol."""

    __slots__ = ("writer", "busy")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.busy = False


class HttpGateway:
    """HTTP/1.1 front end for a :class:`SigningService`.

    The gateway does not own the service: ``start``/``stop`` manage only
    the listener, so the correct shutdown order is ``await
    gateway.stop()`` (drain the HTTP edge) then ``await service.stop()``
    (close the signing barrier).  ``port=0`` binds an ephemeral port;
    the bound address is available as :attr:`host`/:attr:`port` after
    :meth:`start`.
    """

    def __init__(self, service: SigningService,
                 tenants: Iterable[TenantConfig] = (),
                 host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self.tenants = TenantRegistry(tenants)
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: Dict[asyncio.Task, _Connection] = {}
        self._draining = False
        self._next_request_id = 0
        #: (route, status) -> count; the ``ljy_gateway_requests_total``
        #: family.  Routes are the table patterns, ``other`` for 404s.
        self.requests_total: Dict[Tuple[str, int], int] = {}
        #: route -> latency histogram (parse-to-response-written ms).
        self.request_ms: Dict[str, Histogram] = {}
        self.inflight = 0
        self._codec: Optional[WireCodec] = None

    # -- lifecycle ----------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._server is not None

    async def start(self) -> None:
        if self._server is not None:
            raise RuntimeError("gateway already started")
        if not self.service.running:
            raise ServiceClosedError(
                "start the signing service before the gateway")
        self._codec = WireCodec(self.service.handle.scheme.group)
        self._draining = False
        self._server = await asyncio.start_server(
            self._serve_connection, host=self.host, port=self.port)
        sock = self._server.sockets[0]
        self.host, self.port = sock.getsockname()[:2]

    async def stop(self) -> None:
        """Graceful drain: stop accepting, answer every in-flight
        request, then close idle keep-alive connections."""
        if self._server is None:
            return
        server, self._server = self._server, None
        self._draining = True
        server.close()
        await server.wait_closed()
        # Idle connections are parked in readline(); closing the socket
        # wakes them with EOF.  Busy ones finish their response first —
        # their handler loop re-checks _draining before the next read.
        for conn in self._connections.values():
            if not conn.busy:
                conn.writer.close()
        if self._connections:
            await asyncio.gather(*self._connections, return_exceptions=True)
        self._connections.clear()

    # -- connection handling ------------------------------------------------
    async def _serve_connection(self, reader: asyncio.StreamReader,
                                writer: asyncio.StreamWriter) -> None:
        conn = _Connection(writer)
        task = asyncio.current_task()
        self._connections[task] = conn
        try:
            while not self._draining:
                request = await self._read_request(reader, writer)
                if request is None:
                    return
                conn.busy = True
                self.inflight += 1
                try:
                    keep_alive = await self._dispatch(request, writer)
                finally:
                    self.inflight -= 1
                    conn.busy = False
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._connections.pop(task, None)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
            self, reader: asyncio.StreamReader,
            writer: asyncio.StreamWriter) -> Optional[_Request]:
        """Parse one request off the connection; ``None`` on EOF.  Raises
        ``_HttpError`` only via the caller's dispatch (malformed framing
        is answered with 400 and the connection closed)."""
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, version = line.decode("ascii").split()
        except ValueError:
            await self._write_error(
                writer, None, 400, "bad-request-line",
                "malformed HTTP request line")
            return None
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or "0")
        if length > MAX_BODY_BYTES:
            await self._write_error(
                writer, None, 413, "payload-too-large",
                f"body of {length} bytes exceeds {MAX_BODY_BYTES}")
            return None
        if headers.get("expect", "").lower() == "100-continue":
            writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await writer.drain()
        body = await reader.readexactly(length) if length else b""
        request = _Request(method.upper(), path.split("?", 1)[0],
                           headers, body)
        self._next_request_id += 1
        request.request_id = f"gw-{self._next_request_id}"
        return request

    # -- routing ------------------------------------------------------------
    def _routes(self):
        return {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/metrics"): self._handle_metrics,
            ("POST", "/v1/sign"): self._handle_sign,
            ("POST", "/v1/verify"): self._handle_verify,
            ("POST", "/admin/refresh"): self._handle_refresh,
            ("POST", "/admin/reshare"): self._handle_reshare,
            ("POST", "/admin/resize"): self._handle_resize,
        }

    async def _dispatch(self, request: _Request,
                        writer: asyncio.StreamWriter) -> bool:
        loop = asyncio.get_running_loop()
        started = loop.time()
        routes = self._routes()
        handler = routes.get((request.method, request.path))
        route = request.path if handler is not None else "other"
        if handler is not None:
            try:
                status, payload = await handler(request)
                headers: List[Tuple[str, str]] = []
            except _HttpError as exc:
                status, payload, headers = exc.status, {
                    "error": exc.error, "detail": exc.detail,
                    "request_id": request.request_id,
                }, exc.headers
        elif any(path == request.path for _, path in routes):
            allowed = ", ".join(sorted(
                method for method, path in routes if path == request.path))
            status, payload, headers = 405, {
                "error": "method-not-allowed",
                "detail": f"{request.method} not supported",
                "request_id": request.request_id,
            }, [("Allow", allowed)]
        else:
            status, payload, headers = 404, {
                "error": "not-found",
                "detail": f"no route {request.path!r}",
                "request_id": request.request_id,
            }, []
        if request.path == "/metrics" and status == 200:
            body = payload.encode("utf-8")
            content_type = _PROMETHEUS
        else:
            body = json.dumps(payload).encode("utf-8")
            content_type = _JSON
        keep_alive = (
            not self._draining and
            request.headers.get("connection", "").lower() != "close")
        await self._write_response(
            writer, status, body, content_type, keep_alive,
            [("X-Request-Id", request.request_id), *headers])
        self.requests_total[(route, status)] = \
            self.requests_total.get((route, status), 0) + 1
        self.request_ms.setdefault(route, Histogram()).observe(
            (loop.time() - started) * 1000.0)
        return keep_alive

    async def _write_response(
            self, writer: asyncio.StreamWriter, status: int, body: bytes,
            content_type: str, keep_alive: bool,
            headers: Iterable[Tuple[str, str]] = ()) -> None:
        reason = _STATUS_TEXT.get(status, "Unknown")
        lines = [
            f"HTTP/1.1 {status} {reason}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        lines.extend(f"{name}: {value}" for name, value in headers)
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        try:
            await writer.drain()
        except ConnectionError:
            pass

    async def _write_error(self, writer, request_id, status, error,
                           detail) -> None:
        payload = {"error": error, "detail": detail}
        if request_id:
            payload["request_id"] = request_id
        await self._write_response(
            writer, status, json.dumps(payload).encode("utf-8"),
            _JSON, keep_alive=False)
        self.requests_total[("other", status)] = \
            self.requests_total.get(("other", status), 0) + 1

    # -- auth ---------------------------------------------------------------
    def _authorize(self, request: _Request,
                   admin: bool = False) -> TenantState:
        try:
            state = self.tenants.resolve(request.headers.get("x-api-key"))
        except UnknownTenantError as exc:
            raise _HttpError(401, "unauthorized", str(exc)) from None
        if admin and not state.config.admin:
            raise _HttpError(
                403, "forbidden",
                f"tenant {state.config.name!r} may not use admin routes")
        return state

    # -- data plane ---------------------------------------------------------
    async def _handle_sign(self, request: _Request):
        state = self._authorize(request)
        message = _hex_field(request.json(), "message")
        return await self._submit(
            request, state, self.service.sign(
                message, tenant=state.config.name,
                rotation=state.config.quorum_rotation),
            self._sign_payload)

    async def _handle_verify(self, request: _Request):
        state = self._authorize(request)
        payload = request.json()
        message = _hex_field(payload, "message")
        try:
            signature = self._codec.decode_signature(
                _hex_field(payload, "signature"))
        except _HttpError:
            raise
        except (ReproError, ValueError) as exc:
            raise _HttpError(400, "bad-signature",
                             f"signature does not decode: {exc}") from None
        return await self._submit(
            request, state, self.service.verify(
                message, signature, tenant=state.config.name,
                rotation=state.config.quorum_rotation),
            self._verify_payload)

    async def _submit(self, request: _Request, state: TenantState,
                      operation, render):
        """Shared sign/verify tail: edge quota, service call, typed
        error mapping, per-tenant accounting."""
        loop = asyncio.get_running_loop()
        try:
            state.admit(loop.time())
        except TenantQuotaError as exc:
            operation.close()
            raise _HttpError(
                429, "over-quota", str(exc),
                [("Retry-After",
                  TenantRegistry.retry_after_header(exc.retry_after_s))],
            ) from None
        try:
            result = await operation
        except ServiceClosedError as exc:
            state.stats.shed += 1
            raise _HttpError(503, "closed", str(exc)) from None
        except ServiceOverloadedError as exc:
            state.stats.shed += 1
            raise _HttpError(503, "overloaded", str(exc),
                             [("Retry-After", "1")]) from None
        except RequestExpiredError as exc:
            state.stats.failed += 1
            raise _HttpError(504, "expired", str(exc)) from None
        except ReproError as exc:
            state.stats.failed += 1
            raise _HttpError(500, "failed",
                             f"{type(exc).__name__}: {exc}") from None
        finally:
            state.release()
        state.stats.completed += 1
        return 200, render(request, state, result)

    def _sign_payload(self, request: _Request, state: TenantState,
                      result) -> dict:
        return {
            "request_id": request.request_id,
            "tenant": state.config.name,
            "signature": self._codec.encode_signature(
                result.signature).hex(),
            "shard_id": result.shard_id,
            "batch_size": result.batch_size,
            "fallback": result.fallback,
            "latency_ms": round(result.latency_ms, 3),
            "epoch": self.service.handle.epoch,
        }

    def _verify_payload(self, request: _Request, state: TenantState,
                        result) -> dict:
        return {
            "request_id": request.request_id,
            "tenant": state.config.name,
            "valid": result.valid,
            "shard_id": result.shard_id,
            "batch_size": result.batch_size,
            "latency_ms": round(result.latency_ms, 3),
            "epoch": self.service.handle.epoch,
        }

    # -- control plane ------------------------------------------------------
    async def _handle_refresh(self, request: _Request):
        self._authorize(request, admin=True)
        pause_ms = await self._lifecycle(
            request, self.service.refresh(rng=self.service.config.rng))
        return 200, {
            "request_id": request.request_id,
            "epoch": self.service.handle.epoch,
            "pause_ms": round(pause_ms, 3),
        }

    async def _handle_reshare(self, request: _Request):
        self._authorize(request, admin=True)
        payload = request.json()
        threshold = _int_field(payload, "threshold")
        indices = payload.get("indices")
        if not isinstance(indices, list) or \
                not all(isinstance(i, int) for i in indices):
            raise _HttpError(400, "missing-field",
                             "field 'indices' must be a list of integers")
        pause_ms = await self._lifecycle(
            request, self.service.reshare(
                threshold, indices, rng=self.service.config.rng))
        return 200, {
            "request_id": request.request_id,
            "epoch": self.service.handle.epoch,
            "pause_ms": round(pause_ms, 3),
            "threshold": self.service.handle.threshold,
            "signers": sorted(self.service.handle.shares),
        }

    async def _handle_resize(self, request: _Request):
        self._authorize(request, admin=True)
        shards = _int_field(request.json(), "shards")
        migrated = await self._lifecycle(
            request, self.service.resize(shards))
        return 200, {
            "request_id": request.request_id,
            "shards": shards,
            "migrated": migrated,
        }

    async def _lifecycle(self, request: _Request, operation):
        try:
            return await operation
        except ServiceClosedError as exc:
            raise _HttpError(503, "closed", str(exc)) from None
        except (ReproError, ValueError) as exc:
            # Bad lifecycle parameters (threshold out of range, unknown
            # signer indices, shards < 1) are caller errors.
            raise _HttpError(400, "bad-lifecycle",
                             f"{type(exc).__name__}: {exc}") from None

    # -- observability ------------------------------------------------------
    async def _handle_healthz(self, request: _Request):
        return 200, {
            "status": "ok" if self.service.running else "stopped",
            "epoch": self.service.handle.epoch,
            "draining": self._draining,
        }

    async def _handle_metrics(self, request: _Request):
        return 200, render_prometheus(self.metric_families())

    def metric_families(self) -> List[MetricFamily]:
        """The full telemetry surface as Prometheus metric families.

        Counters here mirror — exactly, the serve-smoke gate asserts it
        — the numbers in :meth:`SigningService.snapshot_stats` and the
        tenant registry; the gateway adds only its own route counters
        and latency histograms.
        """
        stats = self.service.snapshot_stats()
        families: List[MetricFamily] = []

        gw_requests = MetricFamily(
            "ljy_gateway_requests_total", "counter",
            "HTTP requests served, by route and status code.")
        for (route, status), count in sorted(self.requests_total.items()):
            gw_requests.add({"route": route, "code": str(status)}, count)
        families.append(gw_requests)
        families.append(MetricFamily(
            "ljy_gateway_inflight", "gauge",
            "HTTP requests currently being served.").add({}, self.inflight))
        gw_latency = MetricFamily(
            "ljy_gateway_request_ms", "histogram",
            "HTTP request latency (parse to response written), by route.")
        for route in sorted(self.request_ms):
            gw_latency.add({"route": route}, self.request_ms[route])
        families.append(gw_latency)

        tenant_counters = [
            ("ljy_tenant_admitted_total",
             "Requests admitted past the tenant's edge quota.",
             lambda s: s.stats.admitted),
            ("ljy_tenant_completed_total",
             "Requests answered with a result.",
             lambda s: s.stats.completed),
            ("ljy_tenant_shed_total",
             "Requests shed by the service's bounded queues (503).",
             lambda s: s.stats.shed),
            ("ljy_tenant_failed_total",
             "Requests failed or expired inside the service (5xx).",
             lambda s: s.stats.failed),
        ]
        states = self.tenants.states()
        for name, help_text, getter in tenant_counters:
            family = MetricFamily(name, "counter", help_text)
            for tenant in sorted(states):
                family.add({"tenant": tenant}, getter(states[tenant]))
            families.append(family)
        rejected = MetricFamily(
            "ljy_tenant_rejected_total", "counter",
            "Requests shed by the tenant's own quota (429), by reason.")
        inflight = MetricFamily(
            "ljy_tenant_inflight", "gauge",
            "Requests the tenant currently holds open.")
        for tenant in sorted(states):
            state = states[tenant]
            rejected.add({"tenant": tenant, "reason": "rate"},
                         state.stats.rejected_quota)
            rejected.add({"tenant": tenant, "reason": "in-flight"},
                         state.stats.rejected_inflight)
            inflight.add({"tenant": tenant}, state.inflight)
        families.extend([rejected, inflight])

        service_counters = [
            ("ljy_service_accepted_total",
             "Requests admitted into shard queues.", stats.accepted),
            ("ljy_service_rejected_total",
             "Requests shed at admission (queue full).", stats.rejected),
            ("ljy_service_completed_total",
             "Requests completed with a result.", stats.completed),
            ("ljy_service_failed_total",
             "Requests failed past admission.", stats.failed),
            ("ljy_service_expired_total",
             "Requests shed because their deadline passed.", stats.expired),
            ("ljy_service_recovered_total",
             "WAL admits replayed at start-up.", stats.recovered),
            ("ljy_service_ingress_messages_total",
             "Request payloads received.", stats.ingress.messages),
            ("ljy_service_ingress_bytes_total",
             "Estimated request payload bytes received.",
             stats.ingress.bytes_total),
            ("ljy_service_egress_messages_total",
             "Results returned.", stats.egress.messages),
            ("ljy_service_egress_bytes_total",
             "Estimated result bytes returned.", stats.egress.bytes_total),
        ]
        for name, help_text, value in service_counters:
            families.append(MetricFamily(
                name, "counter", help_text).add({}, value))
        tenant_accepted = MetricFamily(
            "ljy_service_tenant_accepted_total", "counter",
            "Admissions into shard queues, by tenant label.")
        for tenant in sorted(stats.tenant_accepted):
            tenant_accepted.add({"tenant": tenant},
                                stats.tenant_accepted[tenant])
        families.append(tenant_accepted)

        shard_counters = [
            ("ljy_shard_requests_total", "counter",
             "Requests served, by shard.", lambda s: s.requests),
            ("ljy_shard_windows_total", "counter",
             "Batch windows executed, by shard.", lambda s: s.windows),
            ("ljy_shard_expired_total", "counter",
             "Requests shed at window formation (deadline), by shard.",
             lambda s: s.expired),
            ("ljy_shard_migrated_total", "counter",
             "Queued requests received by live resize migration.",
             lambda s: s.migrated),
            ("ljy_shard_busy_ms_total", "counter",
             "Wall-clock ms spent executing windows, by shard.",
             lambda s: round(s.busy_ms, 3)),
        ]
        for name, kind, help_text, getter in shard_counters:
            family = MetricFamily(name, kind, help_text)
            for shard_id in sorted(stats.shards):
                family.add({"shard": str(shard_id)},
                           getter(stats.shards[shard_id]))
            families.append(family)
        shard_tenants = MetricFamily(
            "ljy_shard_tenant_requests_total", "counter",
            "Requests served per shard per tenant (the quorum-pinning "
            "audit trail).")
        for shard_id in sorted(stats.shards):
            shard = stats.shards[shard_id]
            for tenant in sorted(shard.tenant_requests):
                shard_tenants.add(
                    {"shard": str(shard_id), "tenant": tenant},
                    shard.tenant_requests[tenant])
        families.append(shard_tenants)

        if stats.workers is not None:
            worker_counters = [
                ("ljy_worker_jobs_total", "Window jobs completed.",
                 stats.workers.jobs),
                ("ljy_worker_crashes_total", "Worker deaths observed.",
                 stats.workers.crashes),
                ("ljy_worker_resubmissions_total",
                 "Jobs resubmitted after a crash or dropped connection.",
                 stats.workers.resubmissions),
                ("ljy_worker_reconnects_total",
                 "Successful re-dials after a lost connection.",
                 stats.workers.reconnects),
                ("ljy_worker_timeouts_total",
                 "Jobs abandoned on a hung worker.", stats.workers.timeouts),
                ("ljy_worker_breaker_trips_total",
                 "Endpoint quarantines (circuit breaker).",
                 stats.workers.breaker_trips),
                ("ljy_worker_rewarms_total",
                 "Live worker context re-warms on epoch swaps.",
                 stats.workers.rewarms),
            ]
            for name, help_text, value in worker_counters:
                families.append(MetricFamily(
                    name, "counter", help_text).add({}, value))

        epochs = stats.epochs
        families.append(MetricFamily(
            "ljy_epoch", "gauge",
            "Current key-lifecycle generation.").add({}, epochs.epoch))
        transitions = MetricFamily(
            "ljy_epoch_transitions_total", "counter",
            "Completed lifecycle transitions, by kind.")
        for kind, value in (("refresh", epochs.refreshes),
                            ("reshare", epochs.reshares),
                            ("recovery", epochs.recoveries),
                            ("resize", epochs.resizes)):
            transitions.add({"kind": kind}, value)
        families.append(transitions)
        families.append(MetricFamily(
            "ljy_epoch_requests_carried_total", "counter",
            "Requests carried across epoch swaps in shard queues.")
            .add({}, epochs.requests_carried))
        pause = Histogram()
        for pause_ms in epochs.pauses_ms:
            pause.observe(pause_ms)
        families.append(MetricFamily(
            "ljy_epoch_pause_ms", "histogram",
            "Barrier pause per lifecycle transition.").add({}, pause))
        return families
