"""The batch-window accumulator.

A window closes on whichever trigger fires first:

* ``max_batch`` requests have been collected (a *full* window — the best
  amortization the crypto layer offers), or
* ``max_wait_ms`` has elapsed since the **first** request of the window
  (the latency bound: a lone request never waits longer than one window).

This is the standard batching trade-off dial: ``max_wait_ms = 0``
degenerates to single-request dispatch, large values approach pure
throughput mode.  The accumulator never holds an empty window open — it
blocks until a first request arrives, so an idle service burns no CPU.
"""

from __future__ import annotations

import asyncio
from typing import Generic, List, TypeVar

T = TypeVar("T")


class BatchAccumulator(Generic[T]):
    """Collects items from an :class:`asyncio.Queue` into windows."""

    def __init__(self, queue: "asyncio.Queue[T]", max_batch: int,
                 max_wait_ms: float):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be non-negative")
        self.queue = queue
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        #: Items put back on cancellation that no longer fit the queue
        #: (admission refilled it while the window was forming).  A
        #: shard-pool drain collects these ahead of the queue proper.
        self.spilled: List[T] = []

    def putback(self, items: List[T]) -> None:
        """Return items that were taken off the queue but never served
        (a worker cancelled mid-window, e.g. a shard leaving during a
        live resize).  Overflow — the queue refilled behind them — goes
        to :attr:`spilled` so nothing is dropped."""
        for position, item in enumerate(items):
            try:
                self.queue.put_nowait(item)
            except asyncio.QueueFull:
                self.spilled.extend(items[position:])
                return

    async def next_window(self) -> List[T]:
        """Block for the next non-empty window.

        Greedily drains whatever is already queued (requests that
        arrived while the worker was busy crypto-crunching the previous
        window form the next one immediately — under sustained load the
        window fills without ever sleeping), then waits out the
        remainder of the time budget for stragglers.

        Cancellation-safe: a partially formed window is put back (queue
        first, :attr:`spilled` on overflow), so cancelling the consumer
        never loses admitted requests.
        """
        window: List[T] = []
        try:
            window.append(await self.queue.get())
            loop = asyncio.get_running_loop()
            deadline = loop.time() + self.max_wait_ms / 1000.0
            while len(window) < self.max_batch:
                try:
                    window.append(self.queue.get_nowait())
                except asyncio.QueueEmpty:
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        break
                    try:
                        window.append(await asyncio.wait_for(
                            self.queue.get(), remaining))
                    except asyncio.TimeoutError:
                        break
        except asyncio.CancelledError:
            self.putback(window)
            raise
        return window
