"""Feldman's verifiable secret sharing.

The dealer publishes commitments ``C_l = g^{a_l}`` to the coefficients of
the sharing polynomial; receiver i checks ``g^{A(i)} = prod_l C_l^{i^l}``.
Feldman's VSS leaks ``g^{secret}`` (the commitment to the constant term),
which is exactly why Pedersen's DKG built on it produces a public key an
attacker can bias — the paper's Section 1 discussion.  We use it for the
GJKR baseline DKG and the bias experiments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.groups.api import BilinearGroup, GroupElement
from repro.math.polynomial import Polynomial
from repro.sharing.shamir import validate_threshold


@dataclass
class FeldmanVSS:
    """Dealer-side state: the polynomial and its public commitments."""

    group: BilinearGroup
    generator: GroupElement
    polynomial: Polynomial
    commitments: List[GroupElement]

    @classmethod
    def deal(cls, group: BilinearGroup, generator: GroupElement,
             secret: int, t: int, n: int, rng=None) -> "FeldmanVSS":
        validate_threshold(t, n)
        polynomial = Polynomial.random(t, group.order, constant=secret,
                                       rng=rng)
        commitments = [generator ** coeff for coeff in polynomial.coeffs]
        return cls(group, generator, polynomial, commitments)

    def share_for(self, index: int) -> int:
        """The share sent privately to player ``index`` (1-based)."""
        return self.polynomial(index)

    @staticmethod
    def verify_share(group: BilinearGroup, generator: GroupElement,
                     commitments: List[GroupElement], index: int,
                     share: int) -> bool:
        """Check ``g^share == prod_l C_l^{index^l}``."""
        expected = generator ** share
        product = None
        power = 1
        for commitment in commitments:
            term = commitment ** power
            product = term if product is None else product * term
            power = power * index % group.order
        return product == expected

    def public_secret_commitment(self) -> GroupElement:
        """``g^secret`` — public in Feldman's VSS (the uniformity leak)."""
        return self.commitments[0]
