"""Pedersen's two-generator verifiable secret sharing.

This is the VSS inside the paper's Dist-Keygen (Section 3.1, step 1): a
dealer shares a *pair* (a, b) with two degree-t polynomials A[X], B[X] and
broadcasts the commitments

    W_hat_l = g_z^{a_l} * g_r^{b_l}        for l = 0..t

Receiver i checks equation (1) of the paper:

    g_z^{A(i)} * g_r^{B(i)} == prod_l W_hat_l^{i^l}.

Unlike Feldman's VSS, the constant-term commitment ``g_z^a g_r^b``
information-theoretically hides ``a`` (it is a Pedersen commitment), which
is what the paper's adaptive security proof exploits.

The commitments live in G_hat (the paper commits in the second group since
the public key ``g_hat_k`` lives there).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.groups.api import BilinearGroup, GroupElement
from repro.math.polynomial import Polynomial
from repro.sharing.shamir import validate_threshold


@dataclass
class PedersenVSS:
    """Dealer-side state for one shared pair (a, b)."""

    group: BilinearGroup
    g_z: GroupElement
    g_r: GroupElement
    poly_a: Polynomial
    poly_b: Polynomial
    commitments: List[GroupElement]

    @classmethod
    def deal(cls, group: BilinearGroup, g_z: GroupElement,
             g_r: GroupElement, t: int, n: int,
             secret_pair: Tuple[int, int] | None = None,
             rng=None) -> "PedersenVSS":
        """Share a random pair (or a fixed one, e.g. (0, 0) for refresh)."""
        validate_threshold(t, n)
        secret_a = secret_b = None
        if secret_pair is not None:
            secret_a, secret_b = secret_pair
        poly_a = Polynomial.random(t, group.order, constant=secret_a, rng=rng)
        poly_b = Polynomial.random(t, group.order, constant=secret_b, rng=rng)
        commitments = [
            (g_z ** poly_a.coeffs[l]) * (g_r ** poly_b.coeffs[l])
            for l in range(t + 1)
        ]
        return cls(group, g_z, g_r, poly_a, poly_b, commitments)

    @property
    def secret_pair(self) -> Tuple[int, int]:
        return (self.poly_a.constant_term, self.poly_b.constant_term)

    def share_for(self, index: int) -> Tuple[int, int]:
        """The pair (A(i), B(i)) sent privately to player ``index``."""
        return (self.poly_a(index), self.poly_b(index))

    @staticmethod
    def verify_share(group: BilinearGroup, g_z: GroupElement,
                     g_r: GroupElement,
                     commitments: Sequence[GroupElement], index: int,
                     share: Tuple[int, int]) -> bool:
        """The paper's check (1): g_z^{A(i)} g_r^{B(i)} = prod W_l^{i^l}."""
        share_a, share_b = share
        expected = group.multi_exp([g_z, g_r], [share_a, share_b])
        return expected == commitment_eval(group, commitments, index)


def index_powers(order: int, index: int, count: int) -> list:
    """``[index^0, index^1, ..., index^{count-1}] mod order``."""
    powers = [1]
    for _ in range(count - 1):
        powers.append(powers[-1] * index % order)
    return powers


def commitment_eval(group: BilinearGroup,
                    commitments: Sequence[GroupElement],
                    index: int) -> GroupElement:
    """``prod_l W_l^{index^l}`` — the committed value of the polynomials
    at ``index``, as one (t+1)-term multi-exponentiation.  Used both for
    share verification and to derive the public verification keys VK_i
    from the broadcast transcript."""
    commitments = list(commitments)
    return group.multi_exp(
        commitments, index_powers(group.order, index, len(commitments)))
