"""Plain (t, n) Shamir secret sharing over Z_p.

A degree-t polynomial hides the secret in its constant term; any t+1 of the
n evaluations recover it, any t reveal nothing.  Player indices are 1-based
(evaluation at 0 would leak the secret).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

from repro.errors import ParameterError
from repro.math.lagrange import interpolate_at
from repro.math.polynomial import Polynomial


@dataclass(frozen=True)
class ShamirSharing:
    """The result of sharing a secret: shares plus the polynomial used.

    The polynomial is kept so that verifiable wrappers (Feldman, Pedersen)
    can commit to its coefficients; plain users only need ``shares``.
    """

    threshold: int
    num_players: int
    modulus: int
    shares: Dict[int, int]
    polynomial: Polynomial

    @property
    def secret(self) -> int:
        return self.polynomial.constant_term


def validate_threshold(t: int, n: int) -> None:
    """Check 1 <= t < n (t+1 players are needed to reconstruct)."""
    if t < 0:
        raise ParameterError("threshold t must be non-negative")
    if n < 1:
        raise ParameterError("need at least one player")
    if t >= n:
        raise ParameterError(f"threshold t={t} needs n > t players, got n={n}")


def share_secret(secret: int, t: int, n: int, modulus: int,
                 rng=None) -> ShamirSharing:
    """Produce a (t, n) sharing of ``secret``: any t+1 shares reconstruct."""
    validate_threshold(t, n)
    polynomial = Polynomial.random(t, modulus, constant=secret, rng=rng)
    shares = {i: polynomial(i) for i in range(1, n + 1)}
    return ShamirSharing(t, n, modulus, shares, polynomial)


def reconstruct(shares: Mapping[int, int], modulus: int) -> int:
    """Recover the secret from at least t+1 shares (indices are x-values)."""
    return interpolate_at(shares, modulus, x=0)
