"""Secret sharing substrate: Shamir, Feldman VSS and Pedersen VSS.

These are the building blocks of the paper's distributed key generation:

* :mod:`repro.sharing.shamir` — plain (t, n) Shamir sharing over Z_p.
* :mod:`repro.sharing.feldman` — Feldman's VSS (commitments ``g^{a_l}``),
  used by the GJKR baseline and by the bias-attack discussion.
* :mod:`repro.sharing.pedersen_vss` — Pedersen's two-generator VSS with
  commitments ``g_z^{a_l} g_r^{b_l}``; the broadcast values ``W_hat_ikl``
  of the paper's Dist-Keygen are exactly these commitments.
"""

from repro.sharing.shamir import ShamirSharing, share_secret, reconstruct
from repro.sharing.feldman import FeldmanVSS
from repro.sharing.pedersen_vss import PedersenVSS

__all__ = [
    "ShamirSharing", "share_secret", "reconstruct",
    "FeldmanVSS", "PedersenVSS",
]
