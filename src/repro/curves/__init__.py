"""BN254 elliptic-curve substrate: groups G1/G2, pairing and hashing.

The paper's schemes are stated over asymmetric bilinear groups
``(G, G_hat, G_T)`` on Barreto-Naehrig curves; this package provides exactly
that, built from scratch:

* :mod:`repro.curves.bn254` — curve constants and generators.
* :mod:`repro.curves.weierstrass` — generic Jacobian point arithmetic.
* :mod:`repro.curves.g1` / :mod:`repro.curves.g2` — the two source groups.
* :mod:`repro.curves.pairing` — optimal ate pairing and multi-pairing.
* :mod:`repro.curves.hash_to_curve` — hashing messages into G1 and G2.
"""

from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.pairing import pairing, multi_pairing

__all__ = ["G1Point", "G2Point", "pairing", "multi_pairing"]
