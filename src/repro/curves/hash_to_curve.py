"""Hashing arbitrary messages into G1, G1^n and G2.

The paper models ``H : {0,1}* -> G x G`` as a random oracle (Section 3) and
derives the extra generator ``g_r_hat`` of the public parameters from a
random oracle as well ("it can simply be derived from a random oracle", so
nobody knows its discrete logarithm).  We implement the classic
try-and-increment method with domain separation:

* for G1: hash to an x-coordinate candidate and take the first valid curve
  point, choosing the y whose parity matches one hashed bit (G1 has cofactor
  1, so every curve point is in the subgroup);
* for G2: same over F_p2, followed by cofactor clearing.

Try-and-increment is not constant time, which is irrelevant here: inputs are
public messages.
"""

from __future__ import annotations

from collections import OrderedDict
from functools import lru_cache
from typing import List, Tuple

from repro.curves import bn254
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.math.field import sqrt_mod
from repro.math.rng import hash_to_int
from repro.math.tower import f2_neg, f2_sqrt

_P = bn254.P

#: Module-scope memo for try-and-increment hashing, keyed by
#: ``(domain, message)``.  Per-instance caches (``ThresholdParams``) die
#: with their instance; services and tests that rebuild parameters per
#: request re-hash the same hot messages, so the memo lives here.
#: Bounded because messages are arbitrary caller input — and sized with
#: the auto-precompute behaviour in mind: a cached point exponentiated
#: more than ``_AUTO_PRECOMPUTE_USES`` times grows a ~150 KB fixed-base
#: table that stays pinned with the cache entry, so the worst case is
#: limit * ~150 KB of resident tables, not just bare points.
_HASH_G1_CACHE: "OrderedDict[tuple, G1Point]" = OrderedDict()
_HASH_G1_CACHE_LIMIT = 256


def hash_to_g1_uncached(message: bytes,
                        domain: str = "repro:H:G1") -> G1Point:
    """Try-and-increment hashing onto the G1 curve (no memo).

    The seed-equivalent code path; ``tools/bench_snapshot.py`` uses it so
    the naive baseline keeps paying the hashing the caches now avoid.
    """
    counter = 0
    while True:
        tag = f"{domain}:{counter}"
        x = hash_to_int(tag, message, _P)
        parity = hash_to_int(tag + ":sign", message, 2)
        y_squared = (x * x * x + bn254.B) % _P
        y = sqrt_mod(y_squared, _P)
        if y is not None:
            if (y & 1) != parity:
                y = _P - y
            return G1Point(x, y)
        counter += 1


def hash_to_g1(message: bytes, domain: str = "repro:H:G1") -> G1Point:
    """Try-and-increment hashing onto the G1 curve (memoized)."""
    key = (domain, message)
    hit = _HASH_G1_CACHE.get(key)
    if hit is not None:
        _HASH_G1_CACHE.move_to_end(key)
        return hit
    point = hash_to_g1_uncached(message, domain)
    _HASH_G1_CACHE[key] = point
    if len(_HASH_G1_CACHE) > _HASH_G1_CACHE_LIMIT:
        _HASH_G1_CACHE.popitem(last=False)
    return point


def hash_to_g1_vector(message: bytes, dimension: int,
                      domain: str = "repro:H:G1vec") -> List[G1Point]:
    """Hash a message to a vector of ``dimension`` independent G1 points.

    This is the paper's ``H : {0,1}* -> G^N`` random oracle (N = 2 for the
    main scheme, N = 3 for the DLIN variant, N = K + 1 for Appendix D.1).
    """
    return [
        hash_to_g1(message, domain=f"{domain}:{k}") for k in range(dimension)
    ]


def hash_to_g2(message: bytes, domain: str = "repro:H:G2") -> G2Point:
    """Try-and-increment onto the twist followed by cofactor clearing."""
    counter = 0
    while True:
        tag = f"{domain}:{counter}"
        x = (
            hash_to_int(tag + ":x0", message, _P),
            hash_to_int(tag + ":x1", message, _P),
        )
        from repro.curves.g2 import _twist_rhs
        y = f2_sqrt(_twist_rhs(x))
        if y is not None:
            parity = hash_to_int(tag + ":sign", message, 2)
            if (y[0] & 1) != parity:
                y = f2_neg(y)
            point = G2Point(x, y).clear_cofactor()
            if not point.is_identity():
                return point
        counter += 1


@lru_cache(maxsize=128)
def derive_generator_g1(label: str) -> G1Point:
    """Nothing-up-my-sleeve G1 generator with unknown discrete log.

    Memoized at module scope: protocol labels form a small fixed set, and
    returning the *same instance* lets its fixed-base table survive
    repeated parameter construction.
    """
    return hash_to_g1(label.encode("utf-8"), domain="repro:params:G1")


@lru_cache(maxsize=128)
def derive_generator_g2(label: str) -> G2Point:
    """Nothing-up-my-sleeve G2 generator (e.g. the paper's g_r_hat).

    Memoized at module scope so repeated ``ThresholdParams`` construction
    reuses one instance — and with it the memoized ``PreparedG2`` line
    coefficients, instead of re-running try-and-increment, cofactor
    clearing and Miller-loop preparation per construction.
    """
    return hash_to_g2(label.encode("utf-8"), domain="repro:params:G2")
