"""The group G1: points of y^2 = x^3 + 3 over F_p (prime order r).

Elements are immutable :class:`G1Point` objects supporting the group law
through ``+``, ``-`` and scalar ``*``.  Serialization uses the common
compressed encoding: 32 bytes holding x with the parity of y in the top bit
(the field prime leaves the two top bits of the byte string free).
"""

from __future__ import annotations

from repro.curves import bn254
from repro.curves.weierstrass import (
    FieldOps, jac_add, jac_batch_normalize, jac_double, jac_eq, jac_neg,
    jac_normalize,
)
from repro.errors import NotOnCurveError, SerializationError
from repro.math import msm
from repro.math.field import sqrt_mod

_P = bn254.P
_R = bn254.R

FP_OPS = FieldOps(
    add=lambda a, b: (a + b) % _P,
    sub=lambda a, b: (a - b) % _P,
    mul=lambda a, b: a * b % _P,
    sqr=lambda a: a * a % _P,
    neg=lambda a: -a % _P,
    inv=lambda a: pow(a, -1, _P),
    is_zero=lambda a: a % _P == 0,
    eq=lambda a, b: (a - b) % _P == 0,
    zero=0,
    one=1,
    modulus=_P,
)

#: Flag bit marking the y-parity in the compressed encoding.
_SIGN_BIT = 0x80
_INFINITY_BYTE = 0x40

#: Scalar multiplications on one point instance before a fixed-base table
#: is built automatically (the table costs ~6 multiplications to build).
_AUTO_PRECOMPUTE_USES = 8

ENCODED_SIZE = 32


class G1Point:
    """An element of G1, stored in Jacobian coordinates."""

    __slots__ = ("_jac", "_affine", "_table", "_uses")

    order = _R

    def __init__(self, x: int | None = None, y: int | None = None,
                 _jac=None):
        self._table = None
        self._uses = 0
        if _jac is not None:
            self._jac = _jac
            self._affine = False
            return
        if x is None:  # point at infinity
            self._jac = (1, 1, 0)
        else:
            x %= _P
            y %= _P
            if (y * y - (x * x * x + bn254.B)) % _P != 0:
                raise NotOnCurveError(f"({x}, {y}) is not on G1")
            self._jac = (x, y, 1)
        self._affine = True

    # -- constructors ------------------------------------------------------
    @classmethod
    def generator(cls) -> "G1Point":
        return cls(*bn254.G1_GENERATOR)

    @classmethod
    def identity(cls) -> "G1Point":
        return cls()

    # -- group law ---------------------------------------------------------
    def __add__(self, other: "G1Point") -> "G1Point":
        return G1Point(_jac=jac_add(FP_OPS, self._jac, other._jac))

    def __neg__(self) -> "G1Point":
        return G1Point(_jac=jac_neg(FP_OPS, self._jac))

    def __sub__(self, other: "G1Point") -> "G1Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "G1Point":
        if self._table is not None:
            return G1Point(_jac=self._table.mul(scalar))
        if not self.is_identity():
            self._uses += 1
            if self._uses >= _AUTO_PRECOMPUTE_USES:
                self.precompute()
                return G1Point(_jac=self._table.mul(scalar))
        return G1Point(_jac=msm.scalar_mul(FP_OPS, self._jac, scalar, _R))

    __rmul__ = __mul__

    def precompute(self, window: int = 4) -> "G1Point":
        """Build a fixed-base window table so later multiplications run in
        ~order.bit_length()/window additions.  Worth it for bases reused
        across many scalars; see :mod:`repro.math.msm`."""
        if self._table is None or self._table.window != window:
            self._table = msm.FixedBaseTable(FP_OPS, self._jac, _R, window)
        return self

    @classmethod
    def multi_mul(cls, points, scalars) -> "G1Point":
        """``sum_i scalars[i] * points[i]`` as one multi-scalar
        multiplication (shared doubling chain)."""
        return cls(_jac=msm.multi_scalar_mul(
            FP_OPS, [point._jac for point in points], scalars, _R))

    @classmethod
    def batch_normalize(cls, points) -> None:
        """Normalize many points to affine with ONE field inversion.

        Mutates only the cached representation (exactly like
        :meth:`affine`); combiners call it before an MSM so the w-NAF
        table build starts from affine inputs.
        """
        dirty = [
            point for point in points
            if not point._affine and not point.is_identity()
        ]
        if not dirty:
            return
        normalized = jac_batch_normalize(
            FP_OPS, [point._jac for point in dirty])
        for point, aff in zip(dirty, normalized):
            point._jac = (aff[0], aff[1], 1)
            point._affine = True

    def double(self) -> "G1Point":
        return G1Point(_jac=jac_double(FP_OPS, self._jac))

    # -- queries -----------------------------------------------------------
    def is_identity(self) -> bool:
        return self._jac[2] % _P == 0

    def affine(self):
        """Return affine (x, y), or None for the identity."""
        result = jac_normalize(FP_OPS, self._jac)
        if result is not None and not self._affine:
            self._jac = (result[0], result[1], 1)
            self._affine = True
        return result

    def is_on_curve(self) -> bool:
        aff = self.affine()
        if aff is None:
            return True
        x, y = aff
        return (y * y - (x * x * x + bn254.B)) % _P == 0

    def in_subgroup(self) -> bool:
        """G1 has cofactor 1, so any curve point is in the subgroup."""
        return self.is_on_curve()

    def __eq__(self, other) -> bool:
        if not isinstance(other, G1Point):
            return NotImplemented
        return jac_eq(FP_OPS, self._jac, other._jac)

    def __hash__(self):
        aff = self.affine()
        return hash(("G1", aff))

    def __repr__(self):
        aff = self.affine()
        if aff is None:
            return "G1Point(infinity)"
        return f"G1Point(x={aff[0]:#x})"

    def __bool__(self):
        return not self.is_identity()

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        aff = self.affine()
        if aff is None:
            out = bytearray(ENCODED_SIZE)
            out[0] = _INFINITY_BYTE
            return bytes(out)
        x, y = aff
        out = bytearray(x.to_bytes(ENCODED_SIZE, "big"))
        if y & 1:
            out[0] |= _SIGN_BIT
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "G1Point":
        if len(data) != ENCODED_SIZE:
            raise SerializationError("G1 encoding must be 32 bytes")
        if data[0] == _INFINITY_BYTE and not any(data[1:]):
            return cls.identity()
        sign = data[0] & _SIGN_BIT
        x_bytes = bytes([data[0] & ~_SIGN_BIT]) + data[1:]
        x = int.from_bytes(x_bytes, "big")
        if x >= _P:
            raise SerializationError("G1 x-coordinate out of range")
        y_squared = (x * x * x + bn254.B) % _P
        y = sqrt_mod(y_squared, _P)
        if y is None:
            raise NotOnCurveError("no curve point with the encoded x")
        if (y & 1) != (1 if sign else 0):
            y = _P - y
        return cls(x, y)
