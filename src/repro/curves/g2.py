"""The group G2: the order-r subgroup of the sextic twist over F_p2.

The twist curve is ``y^2 = x^3 + 3/xi``.  Unlike G1 the twist has a large
cofactor (``2p - r``), so deserialization and untrusted inputs must pass a
subgroup check (multiplication by r).  Serialization is the compressed
64-byte encoding: x as two 32-byte limbs with a parity flag for y.
"""

from __future__ import annotations

from repro.curves import bn254
from repro.curves.weierstrass import (
    FieldOps, jac_add, jac_batch_normalize, jac_double, jac_eq, jac_neg,
    jac_normalize, jac_scalar_mul,
)
from repro.errors import NotOnCurveError, SerializationError
from repro.math import msm
from repro.math.tower import (
    F2_ONE, F2_ZERO, f2_add, f2_eq, f2_inv, f2_is_zero, f2_mul, f2_neg,
    f2_sqr, f2_sqrt, f2_sub,
)

_P = bn254.P
_R = bn254.R

FP2_OPS = FieldOps(
    add=f2_add,
    sub=f2_sub,
    mul=f2_mul,
    sqr=f2_sqr,
    neg=f2_neg,
    inv=f2_inv,
    is_zero=f2_is_zero,
    eq=f2_eq,
    zero=F2_ZERO,
    one=F2_ONE,
)

_SIGN_BIT = 0x80
_INFINITY_BYTE = 0x40

ENCODED_SIZE = 64

#: Scalar multiplications on one point instance before a fixed-base table
#: is built automatically (the table costs ~6 multiplications to build).
_AUTO_PRECOMPUTE_USES = 8


def _twist_rhs(x):
    return f2_add(f2_mul(f2_sqr(x), x), bn254.B2)


class G2Point:
    """An element of G2 (point on the twist), Jacobian coordinates."""

    __slots__ = ("_jac", "_affine", "_table", "_prep", "_uses")

    order = _R

    def __init__(self, x=None, y=None, _jac=None, _skip_check: bool = False):
        self._table = None
        self._prep = None
        self._uses = 0
        if _jac is not None:
            self._jac = _jac
            self._affine = False
            return
        if x is None:
            self._jac = (F2_ONE, F2_ONE, F2_ZERO)
        else:
            x = (x[0] % _P, x[1] % _P)
            y = (y[0] % _P, y[1] % _P)
            if not _skip_check and not f2_eq(f2_sqr(y), _twist_rhs(x)):
                raise NotOnCurveError("point is not on the G2 twist")
            self._jac = (x, y, F2_ONE)
        self._affine = True

    # -- constructors ------------------------------------------------------
    @classmethod
    def generator(cls) -> "G2Point":
        return cls(bn254.G2_GENERATOR_X, bn254.G2_GENERATOR_Y)

    @classmethod
    def identity(cls) -> "G2Point":
        return cls()

    # -- group law ---------------------------------------------------------
    def __add__(self, other: "G2Point") -> "G2Point":
        return G2Point(_jac=jac_add(FP2_OPS, self._jac, other._jac))

    def __neg__(self) -> "G2Point":
        return G2Point(_jac=jac_neg(FP2_OPS, self._jac))

    def __sub__(self, other: "G2Point") -> "G2Point":
        return self + (-other)

    def __mul__(self, scalar: int) -> "G2Point":
        if self._table is not None:
            return G2Point(_jac=self._table.mul(scalar))
        if not self.is_identity():
            self._uses += 1
            if self._uses >= _AUTO_PRECOMPUTE_USES:
                self.precompute()
                return G2Point(_jac=self._table.mul(scalar))
        return G2Point(_jac=msm.scalar_mul(FP2_OPS, self._jac, scalar, _R))

    __rmul__ = __mul__

    def precompute(self, window: int = 4) -> "G2Point":
        """Fixed-base window table for bases reused across many scalars
        (``g_z``/``g_r`` in key generation and DKG commitment checks)."""
        if self._table is None or self._table.window != window:
            self._table = msm.FixedBaseTable(FP2_OPS, self._jac, _R, window)
        return self

    @classmethod
    def multi_mul(cls, points, scalars) -> "G2Point":
        """One multi-scalar multiplication over the twist."""
        return cls(_jac=msm.multi_scalar_mul(
            FP2_OPS, [point._jac for point in points], scalars, _R))

    @classmethod
    def batch_normalize(cls, points) -> None:
        """Normalize many points to affine with ONE F_p2 inversion."""
        dirty = [
            point for point in points
            if not point._affine and not point.is_identity()
        ]
        if not dirty:
            return
        normalized = jac_batch_normalize(
            FP2_OPS, [point._jac for point in dirty])
        for point, aff in zip(dirty, normalized):
            point._jac = (aff[0], aff[1], F2_ONE)
            point._affine = True

    def double(self) -> "G2Point":
        return G2Point(_jac=jac_double(FP2_OPS, self._jac))

    # -- queries -----------------------------------------------------------
    def is_identity(self) -> bool:
        return f2_is_zero(self._jac[2])

    def affine(self):
        result = jac_normalize(FP2_OPS, self._jac)
        if result is not None and not self._affine:
            self._jac = (result[0], result[1], F2_ONE)
            self._affine = True
        return result

    def is_on_curve(self) -> bool:
        aff = self.affine()
        if aff is None:
            return True
        x, y = aff
        return f2_eq(f2_sqr(y), _twist_rhs(x))

    def in_subgroup(self) -> bool:
        """Check membership in the order-r subgroup (cofactor is 2p - r)."""
        if not self.is_on_curve():
            return False
        return (self * _R).is_identity()

    def clear_cofactor(self) -> "G2Point":
        """Map an arbitrary twist point into the order-r subgroup."""
        return G2Point(
            _jac=jac_scalar_mul(
                FP2_OPS, self._jac, bn254.G2_COFACTOR,
                bn254.G2_COFACTOR * _R))

    def __eq__(self, other) -> bool:
        if not isinstance(other, G2Point):
            return NotImplemented
        return jac_eq(FP2_OPS, self._jac, other._jac)

    def __hash__(self):
        return hash(("G2", self.affine()))

    def __repr__(self):
        aff = self.affine()
        if aff is None:
            return "G2Point(infinity)"
        return f"G2Point(x0={aff[0][0]:#x})"

    def __bool__(self):
        return not self.is_identity()

    # -- serialization -----------------------------------------------------
    def to_bytes(self) -> bytes:
        aff = self.affine()
        if aff is None:
            out = bytearray(ENCODED_SIZE)
            out[0] = _INFINITY_BYTE
            return bytes(out)
        (x0, x1), (y0, y1) = aff
        out = bytearray(
            x1.to_bytes(32, "big") + x0.to_bytes(32, "big"))
        if y0 & 1:
            out[0] |= _SIGN_BIT
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "G2Point":
        if len(data) != ENCODED_SIZE:
            raise SerializationError("G2 encoding must be 64 bytes")
        if data[0] == _INFINITY_BYTE and not any(data[1:]):
            return cls.identity()
        sign = data[0] & _SIGN_BIT
        x1 = int.from_bytes(bytes([data[0] & ~_SIGN_BIT]) + data[1:32], "big")
        x0 = int.from_bytes(data[32:], "big")
        if x0 >= _P or x1 >= _P:
            raise SerializationError("G2 x-coordinate out of range")
        x = (x0, x1)
        y = f2_sqrt(_twist_rhs(x))
        if y is None:
            raise NotOnCurveError("no twist point with the encoded x")
        if (y[0] & 1) != (1 if sign else 0):
            y = f2_neg(y)
        point = cls(x, y)
        if not point.in_subgroup():
            raise NotOnCurveError("decoded G2 point outside the r-subgroup")
        return point
