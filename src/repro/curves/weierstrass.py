"""Generic Jacobian-coordinate arithmetic for curves y^2 = x^3 + b (a = 0).

Both BN254 groups use a zero ``a`` coefficient, so one set of formulas,
parameterized by a :class:`FieldOps` bundle, serves G1 (over F_p) and G2
(over F_p2).  Points are (X, Y, Z) Jacobian triples; Z equal to the field
zero encodes the point at infinity.
"""

from __future__ import annotations

from typing import Callable, NamedTuple


class FieldOps(NamedTuple):
    """The field operations the curve formulas need.

    ``modulus`` is set for prime fields represented by plain ints; the
    MSM fast paths use it to dispatch to the int-specialized formulas
    below (no per-operation lambda indirection).  Extension fields leave
    it None and take the generic path.
    """

    add: Callable
    sub: Callable
    mul: Callable
    sqr: Callable
    neg: Callable
    inv: Callable
    is_zero: Callable
    eq: Callable
    zero: object
    one: object
    modulus: object = None

    def dbl(self, a):
        return self.add(a, a)


def jac_double(ops: FieldOps, point):
    """Double a Jacobian point on y^2 = x^3 + b (standard a = 0 formulas)."""
    x, y, z = point
    if ops.is_zero(z) or ops.is_zero(y):
        return (ops.one, ops.one, ops.zero)
    a = ops.sqr(x)
    b = ops.sqr(y)
    c = ops.sqr(b)
    d = ops.sub(ops.sub(ops.sqr(ops.add(x, b)), a), c)
    d = ops.dbl(d)
    e = ops.add(ops.dbl(a), a)
    f = ops.sqr(e)
    x3 = ops.sub(f, ops.dbl(d))
    eight_c = ops.dbl(ops.dbl(ops.dbl(c)))
    y3 = ops.sub(ops.mul(e, ops.sub(d, x3)), eight_c)
    z3 = ops.dbl(ops.mul(y, z))
    return (x3, y3, z3)


def jac_add(ops: FieldOps, p1, p2):
    """Add two Jacobian points (handles all degenerate cases)."""
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if ops.is_zero(z1):
        return p2
    if ops.is_zero(z2):
        return p1
    z1z1 = ops.sqr(z1)
    z2z2 = ops.sqr(z2)
    u1 = ops.mul(x1, z2z2)
    u2 = ops.mul(x2, z1z1)
    s1 = ops.mul(ops.mul(y1, z2), z2z2)
    s2 = ops.mul(ops.mul(y2, z1), z1z1)
    if ops.eq(u1, u2):
        if ops.eq(s1, s2):
            return jac_double(ops, p1)
        return (ops.one, ops.one, ops.zero)
    h = ops.sub(u2, u1)
    i = ops.sqr(ops.dbl(h))
    j = ops.mul(h, i)
    r = ops.dbl(ops.sub(s2, s1))
    v = ops.mul(u1, i)
    x3 = ops.sub(ops.sub(ops.sqr(r), j), ops.dbl(v))
    y3 = ops.sub(ops.mul(r, ops.sub(v, x3)), ops.dbl(ops.mul(s1, j)))
    z3 = ops.dbl(ops.mul(ops.mul(z1, z2), h))
    return (x3, y3, z3)


def jac_add_affine(ops: FieldOps, p1, aff2):
    """Mixed addition: Jacobian ``p1`` plus an *affine* ``(x2, y2)`` point.

    With Z2 = 1 the two U2/S2 scalings for the second operand vanish
    (7M + 4S instead of 11M + 5S), which is why the MSM tables and
    Pippenger inputs are batch-normalized to affine up front.  Handles
    the degenerate cases (identity accumulator, doubling, inverses).
    """
    x2, y2 = aff2
    x1, y1, z1 = p1
    if ops.is_zero(z1):
        return (x2, y2, ops.one)
    z1z1 = ops.sqr(z1)
    u2 = ops.mul(x2, z1z1)
    s2 = ops.mul(ops.mul(y2, z1), z1z1)
    if ops.eq(u2, x1):
        if ops.eq(s2, y1):
            return jac_double(ops, p1)
        return (ops.one, ops.one, ops.zero)
    h = ops.sub(u2, x1)
    hh = ops.sqr(h)
    i = ops.dbl(ops.dbl(hh))
    j = ops.mul(h, i)
    r = ops.dbl(ops.sub(s2, y1))
    v = ops.mul(x1, i)
    x3 = ops.sub(ops.sub(ops.sqr(r), j), ops.dbl(v))
    y3 = ops.sub(ops.mul(r, ops.sub(v, x3)), ops.dbl(ops.mul(y1, j)))
    z3 = ops.sub(ops.sub(ops.sqr(ops.add(z1, h)), z1z1), hh)
    return (x3, y3, z3)


def jac_double_fp(point, m: int):
    """Int-specialized :func:`jac_double` for prime fields (coordinates
    are plain reduced ints).  Used by the MSM fast paths only — the naive
    reference ladder keeps the generic formulas, so benchmark baselines
    stay seed-equivalent."""
    x, y, z = point
    if z == 0 or y == 0:
        return (1, 1, 0)
    a = x * x % m
    b = y * y % m
    c = b * b % m
    t = x + b
    d = 2 * (t * t - a - c) % m
    e = 3 * a % m
    f = e * e % m
    x3 = (f - 2 * d) % m
    y3 = (e * (d - x3) - 8 * c) % m
    z3 = 2 * y * z % m
    return (x3, y3, z3)


def jac_add_affine_fp(p1, aff2, m: int):
    """Int-specialized :func:`jac_add_affine` for prime fields."""
    x2, y2 = aff2
    x1, y1, z1 = p1
    if z1 == 0:
        return (x2, y2, 1)
    z1z1 = z1 * z1 % m
    u2 = x2 * z1z1 % m
    s2 = y2 * z1 * z1z1 % m
    if u2 == x1:
        if s2 == y1:
            return jac_double_fp(p1, m)
        return (1, 1, 0)
    h = (u2 - x1) % m
    hh = h * h % m
    i = 4 * hh % m
    j = h * i % m
    r = 2 * (s2 - y1) % m
    v = x1 * i % m
    x3 = (r * r - j - 2 * v) % m
    y3 = (r * (v - x3) - 2 * y1 * j) % m
    t = z1 + h
    z3 = (t * t - z1z1 - hh) % m
    return (x3, y3, z3)


def jac_neg(ops: FieldOps, point):
    x, y, z = point
    return (x, ops.neg(y), z)


def jac_scalar_mul(ops: FieldOps, point, scalar: int, order: int):
    """Left-to-right double-and-add; the scalar is reduced modulo ``order``."""
    scalar %= order
    if scalar == 0 or ops.is_zero(point[2]):
        return (ops.one, ops.one, ops.zero)
    result = (ops.one, ops.one, ops.zero)
    for bit in bin(scalar)[2:]:
        result = jac_double(ops, result)
        if bit == "1":
            result = jac_add(ops, result, point)
    return result


def jac_normalize(ops: FieldOps, point):
    """Return the affine (x, y) pair, or None for the point at infinity."""
    x, y, z = point
    if ops.is_zero(z):
        return None
    z_inv = ops.inv(z)
    z_inv2 = ops.sqr(z_inv)
    return (ops.mul(x, z_inv2), ops.mul(ops.mul(y, z_inv), z_inv2))


def jac_batch_normalize(ops: FieldOps, points):
    """Affine ``(x, y)`` for many Jacobian points with ONE field inversion.

    Montgomery's trick over the Z coordinates: prefix products, a single
    ``ops.inv`` of the total, then a backwards sweep peeling one inverse
    per point.  Points at infinity map to None.  An inversion costs tens
    of multiplications, so normalizing n points costs ~1/n inversions
    each — this is what lets MSM tables and Pippenger inputs live in
    affine coordinates cheaply.  Points that are already affine (Z = 1,
    e.g. pre-normalized by a combiner) skip the Montgomery chain, and a
    batch with no dirty point performs no inversion at all.
    """
    zs = []
    positions = []
    out = [None] * len(points)
    one = ops.one
    for index, point in enumerate(points):
        z = point[2]
        if ops.is_zero(z):
            continue
        if z == one or ops.eq(z, one):
            out[index] = (point[0], point[1])
            continue
        zs.append(z)
        positions.append(index)
    if not zs:
        return out
    prefix = []
    acc = ops.one
    for z in zs:
        acc = ops.mul(acc, z)
        prefix.append(acc)
    inv_acc = ops.inv(acc)
    for i in range(len(zs) - 1, -1, -1):
        before = prefix[i - 1] if i else ops.one
        z_inv = ops.mul(before, inv_acc)
        inv_acc = ops.mul(inv_acc, zs[i])
        x, y, _z = points[positions[i]]
        z_inv2 = ops.sqr(z_inv)
        out[positions[i]] = (
            ops.mul(x, z_inv2), ops.mul(ops.mul(y, z_inv), z_inv2))
    return out


def jac_eq(ops: FieldOps, p1, p2) -> bool:
    """Projective equality without normalizing (cross-multiplication)."""
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if ops.is_zero(z1) or ops.is_zero(z2):
        return ops.is_zero(z1) and ops.is_zero(z2)
    z1z1 = ops.sqr(z1)
    z2z2 = ops.sqr(z2)
    if not ops.eq(ops.mul(x1, z2z2), ops.mul(x2, z1z1)):
        return False
    return ops.eq(
        ops.mul(ops.mul(y1, z2), z2z2), ops.mul(ops.mul(y2, z1), z1z1))
