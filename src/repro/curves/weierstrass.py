"""Generic Jacobian-coordinate arithmetic for curves y^2 = x^3 + b (a = 0).

Both BN254 groups use a zero ``a`` coefficient, so one set of formulas,
parameterized by a :class:`FieldOps` bundle, serves G1 (over F_p) and G2
(over F_p2).  Points are (X, Y, Z) Jacobian triples; Z equal to the field
zero encodes the point at infinity.
"""

from __future__ import annotations

from typing import Callable, NamedTuple


class FieldOps(NamedTuple):
    """The field operations the curve formulas need."""

    add: Callable
    sub: Callable
    mul: Callable
    sqr: Callable
    neg: Callable
    inv: Callable
    is_zero: Callable
    eq: Callable
    zero: object
    one: object

    def dbl(self, a):
        return self.add(a, a)


def jac_double(ops: FieldOps, point):
    """Double a Jacobian point on y^2 = x^3 + b (standard a = 0 formulas)."""
    x, y, z = point
    if ops.is_zero(z) or ops.is_zero(y):
        return (ops.one, ops.one, ops.zero)
    a = ops.sqr(x)
    b = ops.sqr(y)
    c = ops.sqr(b)
    d = ops.sub(ops.sub(ops.sqr(ops.add(x, b)), a), c)
    d = ops.dbl(d)
    e = ops.add(ops.dbl(a), a)
    f = ops.sqr(e)
    x3 = ops.sub(f, ops.dbl(d))
    eight_c = ops.dbl(ops.dbl(ops.dbl(c)))
    y3 = ops.sub(ops.mul(e, ops.sub(d, x3)), eight_c)
    z3 = ops.dbl(ops.mul(y, z))
    return (x3, y3, z3)


def jac_add(ops: FieldOps, p1, p2):
    """Add two Jacobian points (handles all degenerate cases)."""
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if ops.is_zero(z1):
        return p2
    if ops.is_zero(z2):
        return p1
    z1z1 = ops.sqr(z1)
    z2z2 = ops.sqr(z2)
    u1 = ops.mul(x1, z2z2)
    u2 = ops.mul(x2, z1z1)
    s1 = ops.mul(ops.mul(y1, z2), z2z2)
    s2 = ops.mul(ops.mul(y2, z1), z1z1)
    if ops.eq(u1, u2):
        if ops.eq(s1, s2):
            return jac_double(ops, p1)
        return (ops.one, ops.one, ops.zero)
    h = ops.sub(u2, u1)
    i = ops.sqr(ops.dbl(h))
    j = ops.mul(h, i)
    r = ops.dbl(ops.sub(s2, s1))
    v = ops.mul(u1, i)
    x3 = ops.sub(ops.sub(ops.sqr(r), j), ops.dbl(v))
    y3 = ops.sub(ops.mul(r, ops.sub(v, x3)), ops.dbl(ops.mul(s1, j)))
    z3 = ops.dbl(ops.mul(ops.mul(z1, z2), h))
    return (x3, y3, z3)


def jac_neg(ops: FieldOps, point):
    x, y, z = point
    return (x, ops.neg(y), z)


def jac_scalar_mul(ops: FieldOps, point, scalar: int, order: int):
    """Left-to-right double-and-add; the scalar is reduced modulo ``order``."""
    scalar %= order
    if scalar == 0 or ops.is_zero(point[2]):
        return (ops.one, ops.one, ops.zero)
    result = (ops.one, ops.one, ops.zero)
    for bit in bin(scalar)[2:]:
        result = jac_double(ops, result)
        if bit == "1":
            result = jac_add(ops, result, point)
    return result


def jac_normalize(ops: FieldOps, point):
    """Return the affine (x, y) pair, or None for the point at infinity."""
    x, y, z = point
    if ops.is_zero(z):
        return None
    z_inv = ops.inv(z)
    z_inv2 = ops.sqr(z_inv)
    return (ops.mul(x, z_inv2), ops.mul(ops.mul(y, z_inv), z_inv2))


def jac_eq(ops: FieldOps, p1, p2) -> bool:
    """Projective equality without normalizing (cross-multiplication)."""
    x1, y1, z1 = p1
    x2, y2, z2 = p2
    if ops.is_zero(z1) or ops.is_zero(z2):
        return ops.is_zero(z1) and ops.is_zero(z2)
    z1z1 = ops.sqr(z1)
    z2z2 = ops.sqr(z2)
    if not ops.eq(ops.mul(x1, z2z2), ops.mul(x2, z1z1)):
        return False
    return ops.eq(
        ops.mul(ops.mul(y1, z2), z2z2), ops.mul(ops.mul(y2, z1), z1z1))
