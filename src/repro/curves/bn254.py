"""BN254 ("alt_bn128") curve constants.

The curve equation over F_p is ``y^2 = x^3 + 3``; the sextic D-type twist
over F_p2 is ``y^2 = x^3 + 3/xi`` with ``xi = 9 + u``.  The generators are
the standard, widely deployed alt_bn128 generators.  Derived constants (the
twist coefficient, the G2 cofactor) are computed rather than hard-coded.
"""

from __future__ import annotations

from repro.math.tower import (
    P, R, BN_X, ATE_LOOP_COUNT, XI, f2_inv, f2_mul_scalar,
)

#: G1 curve coefficient: y^2 = x^3 + B.
B = 3

#: G2 (twist) coefficient: 3 / xi in F_p2.
B2 = f2_mul_scalar(f2_inv(XI), B)

#: G1 generator.
G1_GENERATOR = (1, 2)

#: G2 generator (standard alt_bn128 point, coordinates as a0 + a1*u).
G2_GENERATOR_X = (
    10857046999023057135944570762232829481370756359578518086990519993285655852781,
    11559732032986387107991004021392285783925812861821192530917403151452391805634,
)
G2_GENERATOR_Y = (
    8495653923123431417604973247489272438418190587263600148770280649306958101930,
    4082367875863433681332203403145435568316851327593401208105741076214120093531,
)

#: Cofactors: G1 is the full curve (h = 1); the twist group order is h2 * r.
G1_COFACTOR = 1
G2_COFACTOR = 2 * P - R

__all__ = [
    "P", "R", "B", "B2", "BN_X", "ATE_LOOP_COUNT",
    "G1_GENERATOR", "G2_GENERATOR_X", "G2_GENERATOR_Y",
    "G1_COFACTOR", "G2_COFACTOR",
]
