"""Optimal ate pairing e : G1 x G2 -> GT on BN254, with precomputation.

The Miller loop runs over the twist in affine coordinates (F_p2 inversions
are cheap relative to Python interpretation overhead) and evaluates lines
directly in the sextic representation of F_p12.  Three layers of
optimization serve the paper's verification equations, which pair the same
G2 elements (``g_z``, ``g_r``, the public key, the verification keys) with
fresh G1 points on every call:

* :class:`PreparedG2` caches the Miller-loop **line coefficients** of a
  fixed G2 argument.  The chord/tangent slopes and intercepts depend only
  on Q, so one preparation (one run of the twist point arithmetic,
  including all F_p2 inversions) turns every later pairing against that Q
  into pure F_p12 accumulation.  Preparation costs about as much as the
  line arithmetic it replaces, so it breaks even on the first pairing and
  is pure profit afterwards; every ``G2Point`` memoizes its preparation.
* Lines are **sparse** F_p12 elements (w-coefficients at w^0, w^1, w^3
  only), so the accumulator update uses
  :func:`~repro.math.tower.f12_mul_line` (~13 F_p2 multiplications)
  instead of a full ``f12_mul`` (18).
* ``multi_pairing`` computes a product of pairings with a single shared
  **final exponentiation** — the optimization behind the paper's "product
  of four pairings" verification cost (Section 3.1) — and the final
  exponentiation itself uses the standard BN addition chain (three
  exponentiations by the curve parameter x plus Frobenius maps) instead of
  a blind 2540-bit exponentiation.

On the T2 benchmark these three changes together take Verify from ~70 ms
to under half that; ``tools/bench_snapshot.py`` records the trajectory.

GT elements are wrapped in :class:`GTElement` so the protocol layer can use
``*``, ``**`` and equality without touching tower internals.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.curves import bn254
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.math import tower
from repro.math.tower import (
    ATE_LOOP_COUNT, BN_X, F12_ONE, Fp12Ele, TWIST_FROB_X, TWIST_FROB_X2,
    TWIST_FROB_Y, TWIST_FROB_Y2, cyclotomic_exp, f2_add, f2_conj, f2_eq,
    f2_inv, f2_mul, f2_mul_scalar, f2_neg, f2_sqr, f2_sub, f12_conj,
    f12_cyclotomic_pow, f12_cyclotomic_sqr, f12_eq, f12_frobenius, f12_inv,
    f12_is_one, f12_mul, f12_mul_line, f12_sqr, wvec_to_f12, F2_ZERO,
)

_P = bn254.P
_R = bn254.R

#: Hard part of the final exponentiation: (p^4 - p^2 + 1) / r.
_HARD_EXPONENT = (_P ** 4 - _P ** 2 + 1) // _R

#: Miller loop bits of 6x + 2, most significant first, skipping the leader.
_LOOP_BITS = [int(bit) for bit in bin(ATE_LOOP_COUNT)[3:]]

#: Global Miller-loop counter (used by the T2 operation-count experiment).
PAIRING_COUNTERS = {"miller_loops": 0, "final_exps": 0, "preparations": 0}


# ---------------------------------------------------------------------------
# Line coefficients
# ---------------------------------------------------------------------------
#
# A chord/tangent line through twist points T and Q, evaluated at the G1
# point P via the untwist map (x', y') -> (x' w^2, y' w^3), is the sparse
# F_p12 element
#
#     y_P - lambda * x_P * w + (lambda * x_T - y_T) * w^3.
#
# Only the w^1 coefficient depends on P (by the scalar -x_P), so a line is
# stored as the pair (lambda, lambda * x_T - y_T); a vertical line (T and Q
# share an x-coordinate but are not equal) contributes x_P - x_T * w^2 and
# is stored by its x-coordinate alone.

_LINE = 0
_VERTICAL = 1


def _line_step(t_aff, q_aff):
    """Coefficients of the line through T and Q, plus T + Q.

    Returns ``((tag, a, b), sum_aff)`` where ``sum_aff`` is None when the
    line is vertical (the sum is the point at infinity).
    """
    xt, yt = t_aff
    xq, yq = q_aff
    if f2_eq(xt, xq) and f2_eq(yt, yq):
        # Tangent: lambda = 3 x^2 / (2 y).
        numerator = f2_mul_scalar(f2_sqr(xt), 3)
        denominator = f2_mul_scalar(yt, 2)
    elif f2_eq(xt, xq):
        return (_VERTICAL, xt, None), None
    else:
        numerator = f2_sub(yq, yt)
        denominator = f2_sub(xq, xt)
    slope = f2_mul(numerator, f2_inv(denominator))
    x3 = f2_sub(f2_sub(f2_sqr(slope), xt), xq)
    y3 = f2_sub(f2_mul(slope, f2_sub(xt, x3)), yt)
    intercept = f2_sub(f2_mul(slope, xt), yt)
    return (_LINE, slope, intercept), (x3, y3)


def _frobenius_twist_points(q_aff):
    """Q1 = pi_p(Q) and -Q2 = -pi_{p^2}(Q) for the final two loop lines."""
    xq, yq = q_aff
    q1 = (f2_mul(f2_conj(xq), TWIST_FROB_X),
          f2_mul(f2_conj(yq), TWIST_FROB_Y))
    q2 = (f2_mul(xq, TWIST_FROB_X2), f2_mul(yq, TWIST_FROB_Y2))
    return q1, (q2[0], f2_neg(q2[1]))


class PreparedG2:
    """A fixed G2 argument with all Miller-loop line coefficients cached.

    The coefficient list follows the fixed schedule of ``_LOOP_BITS``: one
    doubling line per bit, one addition line per set bit, then the two
    Frobenius correction lines.  Evaluating a pairing against a prepared
    point replays the schedule with no twist point arithmetic and no F_p2
    inversions.
    """

    __slots__ = ("lines",)

    def __init__(self, lines: Optional[List[tuple]]):
        self.lines = lines   # None encodes the point at infinity

    @property
    def is_identity(self) -> bool:
        return self.lines is None

    @classmethod
    def from_point(cls, q: G2Point) -> "PreparedG2":
        q_aff = q.affine()
        if q_aff is None:
            return cls(None)
        PAIRING_COUNTERS["preparations"] += 1
        lines: List[tuple] = []
        t = q_aff
        for bit in _LOOP_BITS:
            entry, t = _line_step(t, t)
            lines.append(entry)
            if bit:
                entry, t = _line_step(t, q_aff)
                lines.append(entry)
        q1, q2_neg = _frobenius_twist_points(q_aff)
        entry, t = _line_step(t, q1)
        lines.append(entry)
        entry, _t = _line_step(t, q2_neg)
        lines.append(entry)
        return cls(lines)


#: Module-scope preparation cache keyed by the affine coordinates, so that
#: *different instances* of the same G2 point (deserialized verification
#: keys, freshly rebuilt ``ThresholdParams``) share one line-coefficient
#: computation.  Bounded: keys are attacker-influenced in services.
_PREP_CACHE: "OrderedDict[tuple, PreparedG2]" = OrderedDict()
_PREP_CACHE_LIMIT = 512


def prepare_g2(q: Union[G2Point, PreparedG2]) -> PreparedG2:
    """Prepare a G2 point for repeated pairing.

    Memoized twice: per point instance (free lookups on the hot path) and
    in a bounded module-scope cache keyed by the affine coordinates, so
    services that deserialize the same public/verification keys on every
    request never rebuild the Miller-loop line coefficients.
    """
    if isinstance(q, PreparedG2):
        return q
    prep = q._prep
    if prep is None:
        key = q.affine()
        prep = _PREP_CACHE.get(key)
        if prep is not None:
            _PREP_CACHE.move_to_end(key)
        else:
            prep = PreparedG2.from_point(q)
            _PREP_CACHE[key] = prep
            if len(_PREP_CACHE) > _PREP_CACHE_LIMIT:
                _PREP_CACHE.popitem(last=False)
        q._prep = prep
    return prep


# ---------------------------------------------------------------------------
# Miller loop
# ---------------------------------------------------------------------------

def _apply_line(f: Fp12Ele, entry, xp: int, nxp: int, yp: int) -> Fp12Ele:
    tag, a, b = entry
    if tag == _LINE:
        return f12_mul_line(
            f, (yp, 0), (a[0] * nxp % _P, a[1] * nxp % _P), b)
    # Vertical line: x_P - x_T * w^2.
    return f12_mul(f, wvec_to_f12(
        ((xp, 0), F2_ZERO, f2_neg(a), F2_ZERO, F2_ZERO, F2_ZERO)))


def _miller_loop_prepared(p_aff, prepared: PreparedG2) -> Fp12Ele:
    """f_{6x+2, Q}(P) from cached line coefficients."""
    return _miller_loop_prepared_multi([(p_aff, prepared)])


def _miller_loop_prepared_multi(entries) -> Fp12Ele:
    """``prod_i f_{6x+2, Q_i}(P_i)`` with ONE shared squaring chain.

    Bilinearity gives ``(prod f_i)^2 = prod f_i^2``, so a product of k
    Miller loops needs the 64 accumulator squarings only once instead of
    k times — per extra pairing in a product the marginal cost is just
    the sparse line multiplications.  Entries are ``(p_aff, PreparedG2)``
    pairs with neither argument the identity.
    """
    PAIRING_COUNTERS["miller_loops"] += len(entries)
    evaluated = [
        (xp, -xp % _P, yp, prepared.lines)
        for (xp, yp), prepared in entries
    ]
    f = F12_ONE
    index = 0
    for bit in _LOOP_BITS:
        f = f12_sqr(f)
        for xp, nxp, yp, lines in evaluated:
            f = _apply_line(f, lines[index], xp, nxp, yp)
        index += 1
        if bit:
            for xp, nxp, yp, lines in evaluated:
                f = _apply_line(f, lines[index], xp, nxp, yp)
            index += 1
    for offset in (0, 1):
        for xp, nxp, yp, lines in evaluated:
            f = _apply_line(f, lines[index + offset], xp, nxp, yp)
    return f


def _miller_loop_naive(p_aff, q_aff) -> Fp12Ele:
    """Reference Miller loop computing lines inline with full F_p12
    multiplications — the seed implementation, kept as the correctness and
    benchmark baseline for the prepared path."""
    PAIRING_COUNTERS["miller_loops"] += 1
    xp, yp = p_aff

    def line_value(entry):
        tag, a, b = entry
        if tag == _LINE:
            return wvec_to_f12((
                (yp, 0), f2_mul_scalar(a, -xp % _P), F2_ZERO, b,
                F2_ZERO, F2_ZERO))
        return wvec_to_f12((
            (xp, 0), F2_ZERO, f2_neg(a), F2_ZERO, F2_ZERO, F2_ZERO))

    f = F12_ONE
    t = q_aff
    for bit in _LOOP_BITS:
        entry, t = _line_step(t, t)
        f = f12_mul(f12_sqr(f), line_value(entry))
        if bit:
            entry, t = _line_step(t, q_aff)
            f = f12_mul(f, line_value(entry))
    q1, q2_neg = _frobenius_twist_points(q_aff)
    entry, t = _line_step(t, q1)
    f = f12_mul(f, line_value(entry))
    entry, _t = _line_step(t, q2_neg)
    f = f12_mul(f, line_value(entry))
    return f


# ---------------------------------------------------------------------------
# Final exponentiation
# ---------------------------------------------------------------------------

def _easy_part(f: Fp12Ele) -> Fp12Ele:
    """f^((p^6 - 1)(p^2 + 1)); the result lies in the cyclotomic subgroup."""
    f = f12_mul(f12_conj(f), f12_inv(f))
    return f12_mul(f12_frobenius(f, 2), f)


def _hard_part_bn(t1: Fp12Ele) -> Fp12Ele:
    """t1^((p^4 - p^2 + 1)/r) via the standard BN addition chain.

    Expresses the hard exponent in base p with coefficients that are low-
    degree polynomials in the curve parameter x, so the whole exponentiation
    costs three cyclotomic powers by the 63-bit x plus a handful of
    Frobenius maps and multiplications — roughly a quarter of the work of
    exponentiating blindly by the 2540-bit exponent.  Input must be
    cyclotomic (conjugation = inversion), which :func:`_easy_part`
    guarantees.
    """
    fp = f12_frobenius(t1, 1)
    fp2 = f12_frobenius(t1, 2)
    fp3 = f12_frobenius(fp2, 1)
    fu = cyclotomic_exp(t1, BN_X)
    fu2 = cyclotomic_exp(fu, BN_X)
    fu3 = cyclotomic_exp(fu2, BN_X)
    fu2p = f12_frobenius(fu2, 1)
    fu3p = f12_frobenius(fu3, 1)
    y0 = f12_mul(f12_mul(fp, fp2), fp3)
    y1 = f12_conj(t1)
    y2 = f12_frobenius(fu2, 2)
    y3 = f12_conj(f12_frobenius(fu, 1))
    y4 = f12_conj(f12_mul(fu, fu2p))
    y5 = f12_conj(fu2)
    y6 = f12_conj(f12_mul(fu3, fu3p))
    t0 = f12_mul(f12_mul(f12_cyclotomic_sqr(y6), y4), y5)
    acc = f12_mul(f12_mul(y3, y5), t0)
    t0 = f12_mul(t0, y2)
    acc = f12_cyclotomic_sqr(f12_mul(f12_cyclotomic_sqr(acc), t0))
    t0 = f12_mul(acc, y1)
    acc = f12_mul(acc, y0)
    return f12_mul(f12_cyclotomic_sqr(t0), acc)


def final_exponentiation(f: Fp12Ele) -> Fp12Ele:
    """Raise to (p^12 - 1)/r: Frobenius easy part, then the BN hard part."""
    PAIRING_COUNTERS["final_exps"] += 1
    return _hard_part_bn(_easy_part(f))


def final_exponentiation_naive(f: Fp12Ele) -> Fp12Ele:
    """Reference final exponentiation: easy part, then a blind NAF
    exponentiation by (p^4 - p^2 + 1)/r (the seed implementation)."""
    PAIRING_COUNTERS["final_exps"] += 1
    return f12_cyclotomic_pow(_easy_part(f), _HARD_EXPONENT)


# ---------------------------------------------------------------------------
# GT and the public pairing API
# ---------------------------------------------------------------------------

class GTFixedBaseTable:
    """Windowed powers of a fixed GT base (``table[i][d] = base^(d*2^{wi})``).

    A multiplication then costs ~ceil(254/window) F_p12 multiplications
    and **zero** squarings.  The build is ~(2^w - 1) * 254/w products, so
    it amortizes only for bases exponentiated many times (a pairing value
    reused across requests); callers opt in via ``GTElement.precompute``.
    """

    __slots__ = ("window", "tables")

    def __init__(self, value: Fp12Ele, window: int = 4, order: int = _R):
        if window < 1:
            raise ValueError("window must be positive")
        self.window = window
        self.tables: List[list] = []
        base = value
        for _ in range((order.bit_length() + window - 1) // window):
            row = [None, base]
            for _ in range((1 << window) - 2):
                row.append(f12_mul(row[-1], base))
            self.tables.append(row)
            for _ in range(window):
                base = f12_cyclotomic_sqr(base)

    def pow(self, exponent: int) -> Fp12Ele:
        result = None
        mask = (1 << self.window) - 1
        index = 0
        while exponent:
            digit = exponent & mask
            if digit:
                entry = self.tables[index][digit]
                result = entry if result is None else f12_mul(result, entry)
            exponent >>= self.window
            index += 1
        return F12_ONE if result is None else result


class GTElement:
    """An element of GT = the order-r subgroup of F_p12*."""

    __slots__ = ("value", "_table")

    order = _R

    def __init__(self, value: Fp12Ele):
        self.value = value
        self._table = None

    @classmethod
    def one(cls) -> "GTElement":
        return cls(F12_ONE)

    def __mul__(self, other: "GTElement") -> "GTElement":
        return GTElement(f12_mul(self.value, other.value))

    def __truediv__(self, other: "GTElement") -> "GTElement":
        return GTElement(f12_mul(self.value, f12_conj(other.value)))

    def __pow__(self, exponent: int) -> "GTElement":
        # GT elements are cyclotomic, so the compressed-squaring chain
        # with conjugation-as-inversion applies.
        if self._table is not None:
            return GTElement(self._table.pow(exponent % _R))
        return GTElement(cyclotomic_exp(self.value, exponent % _R))

    def precompute(self, window: int = 4) -> "GTElement":
        """Build a fixed-base window table for repeated exponentiation."""
        if self._table is None or self._table.window != window:
            self._table = GTFixedBaseTable(self.value, window)
        return self

    def inverse(self) -> "GTElement":
        # GT elements are cyclotomic, so conjugation inverts them.
        return GTElement(f12_conj(self.value))

    def is_one(self) -> bool:
        return f12_is_one(self.value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return f12_eq(self.value, other.value)

    def __hash__(self):
        normalized = tower.f12_to_wvec(self.value)
        return hash(("GT", tuple(c % _P for pair in normalized for c in pair)))

    def __repr__(self):
        return "GTElement(1)" if self.is_one() else "GTElement(...)"


def gt_multi_exp(elements: Sequence[GTElement],
                 scalars: Sequence[int]) -> GTElement:
    """``prod_i elements[i] ** scalars[i]`` — one GT multi-exponentiation.

    Interleaved w-NAF sharing a single Granger-Scott squaring chain
    across all terms, with negative digits served by conjugation (free
    inversion in the cyclotomic subgroup).  The naive reference is the
    per-element ``**`` fold the generic backend ``multi_exp`` performs.
    """
    from repro.math.msm import wnaf_digits

    if len(elements) != len(scalars):
        raise ValueError("elements and scalars must have equal length")
    live = [
        (element.value, scalar % _R)
        for element, scalar in zip(elements, scalars)
        if scalar % _R != 0 and not f12_is_one(element.value)
    ]
    if not live:
        return GTElement.one()
    if len(live) == 1:
        return GTElement(cyclotomic_exp(live[0][0], live[0][1]))
    tables = []
    digit_rows = []
    for value, scalar in live:
        twice = f12_cyclotomic_sqr(value)
        table = [value]
        for _ in range(3):
            table.append(f12_mul(table[-1], twice))
        tables.append(table)
        digit_rows.append(wnaf_digits(scalar, 4))
    length = max(len(row) for row in digit_rows)
    result = F12_ONE
    started = False
    for bit in range(length - 1, -1, -1):
        if started:
            result = f12_cyclotomic_sqr(result)
        for row, table in zip(digit_rows, tables):
            if bit >= len(row):
                continue
            digit = row[bit]
            if digit > 0:
                result = f12_mul(result, table[digit >> 1])
                started = True
            elif digit < 0:
                result = f12_mul(result, f12_conj(table[(-digit) >> 1]))
                started = True
    return GTElement(result)


#: Either source of a pairing's second argument.
G2Like = Union[G2Point, PreparedG2]


def pairing(p: G1Point, q: G2Like) -> GTElement:
    """The optimal ate pairing e(P, Q)."""
    p_aff = p.affine()
    prepared = prepare_g2(q)
    if p_aff is None or prepared.is_identity:
        return GTElement.one()
    return GTElement(final_exponentiation(
        _miller_loop_prepared(p_aff, prepared)))


def multi_pairing(pairs: Iterable[Tuple[G1Point, G2Like]]) -> GTElement:
    """Product of pairings with one shared Miller-loop squaring chain
    and one shared final exponentiation.

    ``multi_pairing([(P1, Q1), ..., (Pk, Qk)])`` equals
    ``prod_i e(Pi, Qi)`` but interleaves all k Miller loops over a single
    accumulator (one ``f12_sqr`` per loop bit total, instead of one per
    pairing) and exponentiates once at the end.  All of the paper's
    verification equations are products of pairings, so this is the fast
    path used throughout.  The second slot of each pair may be a
    :class:`G2Point` (prepared lazily and memoized) or an explicit
    :class:`PreparedG2`.
    """
    entries = []
    for p, q in pairs:
        p_aff = p.affine()
        prepared = prepare_g2(q)
        if p_aff is None or prepared.is_identity:
            continue
        entries.append((p_aff, prepared))
    if not entries:
        return GTElement.one()
    return GTElement(final_exponentiation(
        _miller_loop_prepared_multi(entries)))


def multi_pairing_naive(
        pairs: Iterable[Tuple[G1Point, G2Point]]) -> GTElement:
    """Seed-equivalent product of pairings (no preparation, no sparse
    multiplication, blind final exponentiation).  Kept as the agreement
    baseline for tests and ``tools/bench_snapshot.py``."""
    accumulator = F12_ONE
    any_term = False
    for p, q in pairs:
        p_aff = p.affine()
        q_aff = q.affine()
        if p_aff is None or q_aff is None:
            continue
        accumulator = f12_mul(accumulator, _miller_loop_naive(p_aff, q_aff))
        any_term = True
    if not any_term:
        return GTElement.one()
    return GTElement(final_exponentiation_naive(accumulator))


def pairing_product_is_one(pairs: Sequence[Tuple[G1Point, G2Like]]) -> bool:
    """Check ``prod_i e(Pi, Qi) == 1`` (the shape of all verify equations)."""
    return multi_pairing(pairs).is_one()


def reset_pairing_counters() -> None:
    PAIRING_COUNTERS["miller_loops"] = 0
    PAIRING_COUNTERS["final_exps"] = 0
    PAIRING_COUNTERS["preparations"] = 0
