"""Optimal ate pairing e : G1 x G2 -> GT on BN254.

The Miller loop runs over the twist in affine coordinates (F_p2 inversions
are cheap relative to Python interpretation overhead) and evaluates lines
directly in the sextic representation of F_p12.  ``multi_pairing`` computes
a product of pairings with a single shared final exponentiation — this is
the optimization behind the paper's "product of four pairings" verification
cost (Section 3.1).

GT elements are wrapped in :class:`GTElement` so the protocol layer can use
``*``, ``**`` and equality without touching tower internals.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.curves import bn254
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.math import tower
from repro.math.tower import (
    ATE_LOOP_COUNT, F12_ONE, Fp12Ele, TWIST_FROB_X, TWIST_FROB_X2,
    TWIST_FROB_Y, TWIST_FROB_Y2, f2_add, f2_conj, f2_eq, f2_inv, f2_mul,
    f2_mul_scalar, f2_neg, f2_sqr, f2_sub, f12_conj, f12_cyclotomic_pow,
    f12_eq, f12_frobenius, f12_inv, f12_is_one, f12_mul, f12_pow, f12_sqr,
    wvec_to_f12, F2_ZERO,
)

_P = bn254.P
_R = bn254.R

#: Hard part of the final exponentiation: (p^4 - p^2 + 1) / r.
_HARD_EXPONENT = (_P ** 4 - _P ** 2 + 1) // _R

#: Miller loop bits of 6x + 2, most significant first, skipping the leader.
_LOOP_BITS = [int(bit) for bit in bin(ATE_LOOP_COUNT)[3:]]

#: Global Miller-loop counter (used by the T2 operation-count experiment).
PAIRING_COUNTERS = {"miller_loops": 0, "final_exps": 0}


def _line_eval(t_aff, q_aff, p_aff) -> Tuple[Fp12Ele, tuple]:
    """Chord/tangent line through twist points T and Q, evaluated at P.

    Returns ``(line_value, T + Q)`` where the line value is the sparse
    F_p12 element ``y_P - lambda * x_P * w + (lambda * x_T - y_T) * w^3``
    coming from the untwist map ``(x', y') -> (x' w^2, y' w^3)``.
    ``t_aff``/``q_aff`` are affine twist points, ``p_aff`` the affine G1
    point.
    """
    xt, yt = t_aff
    xq, yq = q_aff
    xp, yp = p_aff
    if f2_eq(xt, xq) and f2_eq(yt, yq):
        # Tangent: lambda = 3 x^2 / (2 y).
        numerator = f2_mul_scalar(f2_sqr(xt), 3)
        denominator = f2_mul_scalar(yt, 2)
    elif f2_eq(xt, xq):
        # Vertical line: value is x_P - x_T * w^2, sum is infinity.
        line = wvec_to_f12((
            (xp, 0), F2_ZERO, f2_neg(xt), F2_ZERO, F2_ZERO, F2_ZERO))
        return line, None
    else:
        numerator = f2_sub(yq, yt)
        denominator = f2_sub(xq, xt)
    slope = f2_mul(numerator, f2_inv(denominator))
    x3 = f2_sub(f2_sub(f2_sqr(slope), xt), xq)
    y3 = f2_sub(f2_mul(slope, f2_sub(xt, x3)), yt)
    line = wvec_to_f12((
        (yp, 0),
        f2_mul_scalar(slope, -xp % _P),
        F2_ZERO,
        f2_sub(f2_mul(slope, xt), yt),
        F2_ZERO,
        F2_ZERO,
    ))
    return line, (x3, y3)


def _miller_loop(p_aff, q_aff) -> Fp12Ele:
    """f_{6x+2, Q}(P) times the two Frobenius line corrections."""
    PAIRING_COUNTERS["miller_loops"] += 1
    f = F12_ONE
    t = q_aff
    for bit in _LOOP_BITS:
        line, t = _line_eval(t, t, p_aff)
        f = f12_mul(f12_sqr(f), line)
        if bit:
            line, t = _line_eval(t, q_aff, p_aff)
            f = f12_mul(f, line)
    # Q1 = pi_p(Q), Q2 = pi_{p^2}(Q); the loop finishes with the lines
    # through (T, Q1) and (T + Q1, -Q2).
    xq, yq = q_aff
    q1 = (f2_mul(f2_conj(xq), TWIST_FROB_X), f2_mul(f2_conj(yq), TWIST_FROB_Y))
    q2 = (f2_mul(xq, TWIST_FROB_X2), f2_mul(yq, TWIST_FROB_Y2))
    q2_neg = (q2[0], f2_neg(q2[1]))
    line, t = _line_eval(t, q1, p_aff)
    f = f12_mul(f, line)
    line, _t = _line_eval(t, q2_neg, p_aff)
    f = f12_mul(f, line)
    return f


def final_exponentiation(f: Fp12Ele) -> Fp12Ele:
    """Raise to (p^12 - 1)/r: Frobenius easy part, then the hard part."""
    PAIRING_COUNTERS["final_exps"] += 1
    # Easy part: f^(p^6 - 1) then ^(p^2 + 1).
    f = f12_mul(f12_conj(f), f12_inv(f))
    f = f12_mul(f12_frobenius(f, 2), f)
    # Hard part: after the easy part f is cyclotomic, so the NAF
    # exponentiation with conjugation-as-inversion applies.
    return f12_cyclotomic_pow(f, _HARD_EXPONENT)


class GTElement:
    """An element of GT = the order-r subgroup of F_p12*."""

    __slots__ = ("value",)

    order = _R

    def __init__(self, value: Fp12Ele):
        self.value = value

    @classmethod
    def one(cls) -> "GTElement":
        return cls(F12_ONE)

    def __mul__(self, other: "GTElement") -> "GTElement":
        return GTElement(f12_mul(self.value, other.value))

    def __truediv__(self, other: "GTElement") -> "GTElement":
        return GTElement(f12_mul(self.value, f12_inv(other.value)))

    def __pow__(self, exponent: int) -> "GTElement":
        exponent %= _R
        return GTElement(f12_pow(self.value, exponent))

    def inverse(self) -> "GTElement":
        # GT elements are cyclotomic, so conjugation inverts them.
        return GTElement(f12_conj(self.value))

    def is_one(self) -> bool:
        return f12_is_one(self.value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, GTElement):
            return NotImplemented
        return f12_eq(self.value, other.value)

    def __hash__(self):
        normalized = tower.f12_to_wvec(self.value)
        return hash(("GT", tuple(c % _P for pair in normalized for c in pair)))

    def __repr__(self):
        return "GTElement(1)" if self.is_one() else "GTElement(...)"


def pairing(p: G1Point, q: G2Point) -> GTElement:
    """The optimal ate pairing e(P, Q)."""
    p_aff = p.affine()
    q_aff = q.affine()
    if p_aff is None or q_aff is None:
        return GTElement.one()
    return GTElement(final_exponentiation(_miller_loop(p_aff, q_aff)))


def multi_pairing(pairs: Iterable[Tuple[G1Point, G2Point]]) -> GTElement:
    """Product of pairings with one shared final exponentiation.

    ``multi_pairing([(P1, Q1), ..., (Pk, Qk)])`` equals
    ``prod_i e(Pi, Qi)`` but costs k Miller loops + 1 final exponentiation
    instead of k of each.  All of the paper's verification equations are
    products of pairings, so this is the fast path used throughout.
    """
    accumulator = F12_ONE
    any_term = False
    for p, q in pairs:
        p_aff = p.affine()
        q_aff = q.affine()
        if p_aff is None or q_aff is None:
            continue
        accumulator = f12_mul(accumulator, _miller_loop(p_aff, q_aff))
        any_term = True
    if not any_term:
        return GTElement.one()
    return GTElement(final_exponentiation(accumulator))


def pairing_product_is_one(pairs: Sequence[Tuple[G1Point, G2Point]]) -> bool:
    """Check ``prod_i e(Pi, Qi) == 1`` (the shape of all verify equations)."""
    return multi_pairing(pairs).is_one()


def reset_pairing_counters() -> None:
    PAIRING_COUNTERS["miller_loops"] = 0
    PAIRING_COUNTERS["final_exps"] = 0
