"""Fast exponentiation: w-NAF scalar multiplication, multi-scalar
multiplication and fixed-base precomputation tables.

All routines are generic over the :class:`~repro.curves.weierstrass.FieldOps`
bundle, so the same code serves G1 (over F_p) and G2 (over F_p2).  Points are
Jacobian ``(X, Y, Z)`` triples exactly as in :mod:`repro.curves.weierstrass`;
the naive ``jac_scalar_mul`` there remains the correctness reference the
property tests compare against.

Why these three algorithms (T2 on this machine, seed numbers: Share-Sign
8.9 ms, robust Combine 213 ms — both dominated by naive double-and-add):

* **w-NAF single-scalar multiplication** — recoding a 254-bit scalar into
  width-``w`` non-adjacent form leaves ~254/(w+1) nonzero digits instead of
  ~127, so the generic multiply drops from 254 doublings + 127 additions to
  254 doublings + ~51 additions (w = 4) after a 7-addition table setup.
* **Straus (interleaved w-NAF) MSM** — a k-term product of exponentiations
  shares one run of 254 doublings across all terms; Combine's "Lagrange in
  the exponent" and every 2-base multi-exponentiation in the scheme become
  one MSM instead of k independent exponentiations plus k - 1 products.
* **Pippenger (bucket) MSM** — for large k (DKG transcript aggregation at
  big n) the bucket method costs ~k + 2^c additions per 254/c-bit window,
  beating Straus once k exceeds a few dozen terms.
* **Fixed-base windows** — for generators reused across many calls
  (``g_z``/``g_r`` in key generation, DKG commitment checks) a one-off
  table of ``d * 2^{w i} * P`` turns every later multiplication into
  ~254/w additions and **zero** doublings.  The table costs
  ``(2^w - 1) * 254/w`` additions to build, so it amortizes after roughly
  four multiplications at w = 4; callers opt in via
  :class:`FixedBaseTable` (or ``GroupElement.precompute()`` one layer up)
  precisely because the build-up is not free.

The trade-off knob everywhere is the window width: larger ``w`` means more
precomputation and memory for fewer additions per scalar.  Defaults (w = 4
single/fixed-base, c chosen from k for Pippenger) are tuned for 254-bit
scalars in pure Python, where a Jacobian addition costs ~16 field
multiplications and interpreter overhead rewards fewer, fatter operations.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.curves.weierstrass import (
    FieldOps, jac_add, jac_double, jac_neg,
)


def wnaf_digits(scalar: int, width: int = 4) -> List[int]:
    """Width-``w`` non-adjacent form of a non-negative scalar, LSB first.

    Every nonzero digit is odd, lies in ``(-2^{w-1}, 2^{w-1})``, and is
    followed by at least ``width - 1`` zeros; the digits reconstruct the
    scalar as ``sum_i d_i * 2^i``.
    """
    if scalar < 0:
        raise ValueError("wnaf_digits expects a non-negative scalar")
    if width < 2:
        raise ValueError("w-NAF width must be at least 2")
    digits: List[int] = []
    window = 1 << width
    half = window >> 1
    while scalar:
        if scalar & 1:
            digit = scalar % window
            if digit >= half:
                digit -= window
            scalar -= digit
        else:
            digit = 0
        digits.append(digit)
        scalar >>= 1
    return digits


def _odd_multiples(ops: FieldOps, point, count: int) -> list:
    """``[P, 3P, 5P, ..., (2*count - 1)P]`` (count entries)."""
    multiples = [point]
    if count > 1:
        twice = jac_double(ops, point)
        for _ in range(count - 1):
            multiples.append(jac_add(ops, multiples[-1], twice))
    return multiples


def scalar_mul(ops: FieldOps, point, scalar: int, order: int,
               width: int = 4):
    """w-NAF scalar multiplication; drop-in for ``jac_scalar_mul``."""
    infinity = (ops.one, ops.one, ops.zero)
    scalar %= order
    if scalar == 0 or ops.is_zero(point[2]):
        return infinity
    digits = wnaf_digits(scalar, width)
    table = _odd_multiples(ops, point, 1 << (width - 2))
    negatives = [jac_neg(ops, entry) for entry in table]
    result = infinity
    for digit in reversed(digits):
        result = jac_double(ops, result)
        if digit > 0:
            result = jac_add(ops, result, table[digit >> 1])
        elif digit < 0:
            result = jac_add(ops, result, negatives[(-digit) >> 1])
    return result


def multi_scalar_mul(ops: FieldOps, points: Sequence, scalars: Sequence[int],
                     order: int):
    """``sum_i scalars[i] * points[i]`` with shared doublings.

    Dispatches to interleaved-w-NAF Straus for small batches and to the
    Pippenger bucket method for large ones (the crossover in pure Python
    sits around a few dozen terms).
    """
    if len(points) != len(scalars):
        raise ValueError("points and scalars must have equal length")
    live = [
        (point, scalar % order)
        for point, scalar in zip(points, scalars)
        if scalar % order != 0 and not ops.is_zero(point[2])
    ]
    if not live:
        return (ops.one, ops.one, ops.zero)
    if len(live) == 1:
        return scalar_mul(ops, live[0][0], live[0][1], order)
    if len(live) <= 32:
        return _straus(ops, live)
    return _pippenger(ops, live, order.bit_length())


def _straus(ops: FieldOps, live, width: int = 4):
    """Interleaved w-NAF: one shared doubling chain, per-point digit adds."""
    tables = []
    negatives = []
    digit_rows = []
    count = 1 << (width - 2)
    for point, scalar in live:
        table = _odd_multiples(ops, point, count)
        tables.append(table)
        negatives.append([jac_neg(ops, entry) for entry in table])
        digit_rows.append(wnaf_digits(scalar, width))
    length = max(len(row) for row in digit_rows)
    result = (ops.one, ops.one, ops.zero)
    for bit in range(length - 1, -1, -1):
        result = jac_double(ops, result)
        for row, table, negs in zip(digit_rows, tables, negatives):
            if bit >= len(row):
                continue
            digit = row[bit]
            if digit > 0:
                result = jac_add(ops, result, table[digit >> 1])
            elif digit < 0:
                result = jac_add(ops, result, negs[(-digit) >> 1])
    return result


def _pippenger_window(count: int) -> int:
    """Bucket width c minimizing ~(254/c) * (count + 2^c) additions."""
    best_c, best_cost = 1, None
    for c in range(1, 17):
        cost = (254 // c + 1) * (count + (1 << c))
        if best_cost is None or cost < best_cost:
            best_c, best_cost = c, cost
    return best_c


def _pippenger(ops: FieldOps, live, scalar_bits: int):
    """Bucket MSM: per window, drop points into 2^c - 1 buckets and fold
    them with the running-sum trick."""
    infinity = (ops.one, ops.one, ops.zero)
    c = _pippenger_window(len(live))
    mask = (1 << c) - 1
    windows = (scalar_bits + c - 1) // c
    result = infinity
    for w in range(windows - 1, -1, -1):
        if result is not infinity:
            for _ in range(c):
                result = jac_double(ops, result)
        buckets = [None] * (mask + 1)
        shift = w * c
        for point, scalar in live:
            digit = (scalar >> shift) & mask
            if digit == 0:
                continue
            held = buckets[digit]
            buckets[digit] = point if held is None else jac_add(
                ops, held, point)
        running = None
        window_sum = None
        for digit in range(mask, 0, -1):
            held = buckets[digit]
            if held is not None:
                running = held if running is None else jac_add(
                    ops, running, held)
            if running is not None:
                window_sum = running if window_sum is None else jac_add(
                    ops, window_sum, running)
        if window_sum is not None:
            result = window_sum if result is infinity else jac_add(
                ops, result, window_sum)
    return result


class FixedBaseTable:
    """Windowed precomputation for a base point reused across many scalars.

    Stores ``table[i][d] = d * 2^{window * i} * P`` for every window ``i``
    and digit ``d`` in ``[1, 2^window)``; a multiplication then reads one
    entry per window and performs ~ceil(bits/window) - 1 additions, no
    doublings.  See the module docstring for the amortization math.
    """

    __slots__ = ("ops", "order", "window", "tables", "_infinity")

    def __init__(self, ops: FieldOps, point, order: int, window: int = 4):
        if window < 1:
            raise ValueError("window must be positive")
        self.ops = ops
        self.order = order
        self.window = window
        self._infinity = (ops.one, ops.one, ops.zero)
        self.tables: List[list] = []
        bits = order.bit_length()
        base = point
        for _ in range((bits + window - 1) // window):
            row = [None, base]
            for _ in range((1 << window) - 2):
                row.append(jac_add(ops, row[-1], base))
            self.tables.append(row)
            for _ in range(window):
                base = jac_double(ops, base)

    def mul(self, scalar: int):
        """``scalar * P`` from the table (scalar reduced modulo the order)."""
        ops = self.ops
        scalar %= self.order
        result = self._infinity
        mask = (1 << self.window) - 1
        index = 0
        while scalar:
            digit = scalar & mask
            if digit:
                entry = self.tables[index][digit]
                result = entry if result is self._infinity else jac_add(
                    ops, result, entry)
            scalar >>= self.window
            index += 1
        return result
